"""Semantic optimization with inverse relationships and access support relations (EC3).

An object-oriented schema has classes ``M1 -> M2 -> M3`` linked by
many-to-many inverse relationships (``N`` = "next" references, ``P`` =
"previous" references).  The physical schema contains an access support
relation ``ASR1`` that materialises the *backwards* navigation from ``M3`` to
``M1``.  The input query navigates forwards, so it does not map onto the ASR
directly: only after the chase flips navigation directions using the inverse
constraints can the backchase discover the ASR-based plan.

This is the interaction the paper calls "non-trivial use of physical
structures enabled only by semantic constraints".

Run with::

    python examples/oo_navigation_asr.py
"""

from repro import CBOptimizer, execute
from repro.workloads.ec3 import build_ec3


def main():
    workload = build_ec3(classes=3, asrs=1)
    query = workload.query

    print("Navigation query (forward, along the N references):")
    print(query)
    print()

    optimizer = CBOptimizer(workload.catalog)

    # Phase 1+2 in one go: chase with inverse + ASR constraints, backchase.
    result = optimizer.optimize(query, strategy="fb")
    print(f"{result.plan_count} plans generated in {result.total_time:.3f}s:")
    for number, plan in enumerate(result.plans, start=1):
        uses_asr = "ASR1" in plan.collections_used()
        print(f"--- plan {number}{' (uses the ASR)' if uses_asr else ''}:")
        print(plan.query)
    print()

    # The OCS strategy stratifies the inverse constraints per relationship.
    ocs = optimizer.optimize(query, strategy="ocs")
    print(
        f"OCS used {ocs.stratum_count} constraint strata and generated "
        f"{ocs.plan_count} plans in {ocs.total_time:.3f}s"
    )
    print()

    # Execute everything on a small synthetic instance to confirm equivalence.
    database = workload.database(size=120, seed=1)
    reference = {tuple(sorted(r.items())) for r in execute(query, database)}
    for number, plan in enumerate(result.plans, start=1):
        rows = {tuple(sorted(r.items())) for r in execute(plan.query, database)}
        print(f"plan {number} returns the same answer: {rows == reference}")


if __name__ == "__main__":
    main()
