"""Quickstart: optimize a query with the Chase & Backchase (C&B) optimizer.

The scenario is Example 2.1 of "A Chase Too Far?": a selection on relation
``R`` that cannot use the composite index ``I(A, B, C)`` directly, plus a
referential integrity constraint from ``R.A`` into ``S.A``.  The C&B
optimizer chases the query with the constraints describing the index and the
foreign key, then backchases the universal plan into every minimal
alternative plan.

Run with::

    python examples/quickstart.py
"""

from repro import Catalog, CBOptimizer, CostModel, PCQuery


def build_catalog():
    """Declare the logical schema, the physical schema and the constraints."""
    catalog = Catalog()
    catalog.add_relation("R", ["A", "B", "C", "E"])
    catalog.add_relation("S", ["A"])
    # Semantic constraint: every R.A value appears in S.A (foreign key).
    catalog.add_foreign_key("R", ["A"], "S", ["A"])
    # Physical structure: a composite index on R(A, B, C).
    catalog.add_primary_index("I", "R", ["A", "B", "C"])
    return catalog


def main():
    catalog = build_catalog()
    query = PCQuery.parse(
        """
        select struct(A: r.A, E: r.E)
        from R r
        where r.B = 1 and r.C = 2
        """
    )

    optimizer = CBOptimizer(catalog)

    print("Input query:")
    print(query)
    print()

    chase_result = optimizer.universal_plan(query)
    print(f"Universal plan (after {chase_result.applied} chase steps):")
    print(chase_result.query)
    print()

    result = optimizer.optimize(query, strategy="fb")
    print(f"{result.plan_count} plans generated in {result.total_time:.3f}s:")
    for number, plan in enumerate(result.plans, start=1):
        print(f"--- plan {number}: {plan.describe(catalog)}")
        print(plan.query)
    print()

    best = result.best_plan(CostModel(catalog))
    print("Best plan according to the cost model:")
    print(best.query)


if __name__ == "__main__":
    main()
