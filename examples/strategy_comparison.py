"""Comparing the FB, OQF and OCS backchase strategies on a chain-of-stars query.

This example builds an EC2 instance (2 stars, 4 corners per star, 2 views per
star), runs the three strategies of the paper, and prints the number of plans,
the optimization time and the time per plan for each -- the quantities behind
Figures 6-7.  It then picks the best plan with the cost model and shows the
fragment decomposition OQF used.

Run with::

    python examples/strategy_comparison.py
"""

from repro import CBOptimizer, CostModel
from repro.chase.stratify import decompose_query, stratify_constraints
from repro.workloads.ec2 import build_ec2


def main():
    workload = build_ec2(stars=2, corners=4, views=2)
    catalog = workload.catalog
    query = workload.query
    print(f"Query: {query.size()} bindings, {len(catalog.constraints())} constraints")
    print()

    optimizer = CBOptimizer(catalog, timeout=60)
    results = {}
    for strategy in ("fb", "oqf", "ocs"):
        results[strategy] = optimizer.optimize(query, strategy=strategy)
        result = results[strategy]
        flag = " (timed out)" if result.timed_out else ""
        print(
            f"{strategy.upper():4s}  plans={result.plan_count:3d}  "
            f"time={result.total_time:7.2f}s  time/plan={result.time_per_plan():6.3f}s  "
            f"subqueries explored={result.subqueries_explored}{flag}"
        )
    print()

    decomposition = decompose_query(query, catalog.skeletons())
    print(f"OQF decomposed the query into {decomposition.fragment_count} fragments:")
    for fragment in decomposition.fragments:
        skeletons = ", ".join(s.name for s in fragment.skeletons) or "no skeletons"
        print(f"  fragment {fragment.index}: {sorted(fragment.variables)} ({skeletons})")
    print()

    strata = stratify_constraints(catalog.constraints())
    print(f"OCS partitioned the constraints into {len(strata)} strata:")
    for number, stratum in enumerate(strata, start=1):
        print(f"  stratum {number}: {[dep.name for dep in stratum]}")
    print()

    cost_model = CostModel(catalog)
    best = results["oqf"].best_plan(cost_model)
    print("Best OQF plan by the cost model:")
    print(f"  {best.describe(catalog)}  (estimated cost {best.cost:,.0f})")


if __name__ == "__main__":
    main()
