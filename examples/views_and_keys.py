"""Rewriting with materialized views enabled by a key constraint (Example 2.2).

Two "conceptual relations" have been normalised into a hub relation and two
corner relations each; materialized views ``V1`` and ``V2`` pre-join every
hub with its corners.  Replacing the *second* star by its view is always
correct, but replacing the *first* star is correct only because ``K`` is a
key of ``R1`` -- without the key constraint the view does not retain the
foreign key ``F`` needed to join the two stars.

This example runs the optimizer twice (with and without the key constraint)
and then executes the generated plans on synthetic data to show that the
view-based plans return the same answer and run faster.

Run with::

    python examples/views_and_keys.py
"""

import random

from repro import Catalog, CBOptimizer, Database, PCQuery
from repro.engine.executor import execute_timed


def build_catalog(with_key):
    catalog = Catalog()
    for star in (1, 2):
        catalog.add_relation(f"R{star}", ["K", "F", "A1", "A2"], key=["K"])
        if with_key:
            catalog.add_key(f"R{star}", ["K"])
        for corner in (1, 2):
            catalog.add_relation(f"S{star}{corner}", ["A", "B"])
        catalog.add_materialized_view(
            f"V{star}",
            PCQuery.parse(
                f"""
                select struct(K: r.K, B1: s1.B, B2: s2.B)
                from R{star} r, S{star}1 s1, S{star}2 s2
                where r.A1 = s1.A and r.A2 = s2.A
                """
            ),
        )
    return catalog


QUERY = PCQuery.parse(
    """
    select struct(B11: s11.B, B12: s12.B, B21: s21.B, B22: s22.B)
    from R1 r1, S11 s11, S12 s12, R2 r2, S21 s21, S22 s22
    where r1.F = r2.K and
          r1.A1 = s11.A and r1.A2 = s12.A and
          r2.A1 = s21.A and r2.A2 = s22.A
    """
)


def populate(catalog, size=4000, seed=0):
    """Synthetic data with selective joins (a small fraction of rows match)."""
    rng = random.Random(seed)
    database = Database(catalog)
    for star in (1, 2):
        for corner in (1, 2):
            database.add_table(
                f"S{star}{corner}",
                [{"A": star * 100000 + corner * 10000 + i, "B": rng.randrange(10)} for i in range(size)],
            )
        rows = []
        for key in range(size):
            rows.append(
                {
                    "K": key,
                    "F": rng.randrange(size) if rng.random() < 0.02 else -key - 1,
                    "A1": star * 100000 + 10000 + rng.randrange(size) if rng.random() < 0.05 else -key - 1,
                    "A2": star * 100000 + 20000 + rng.randrange(size) if rng.random() < 0.05 else -key - 1,
                }
            )
        database.add_table(f"R{star}", rows)
    database.materialize_physical(catalog)
    return database


def show_plans(label, with_key):
    catalog = build_catalog(with_key)
    result = CBOptimizer(catalog).optimize(QUERY, strategy="fb")
    print(f"{label}: {result.plan_count} plans")
    for plan in result.plans:
        print(f"  - {plan.describe(catalog)}")
    print()
    return catalog, result


def main():
    show_plans("Without the key constraint on R1.K", with_key=False)
    catalog, result = show_plans("With the key constraint on R1.K", with_key=True)

    database = populate(catalog)
    print("Executing every plan on a populated database:")
    reference, original_time = execute_timed(QUERY, database)
    for plan in result.plans:
        rows, elapsed = execute_timed(plan.query, database)
        same = {tuple(sorted(r.items())) for r in rows} == {tuple(sorted(r.items())) for r in reference}
        print(
            f"  {plan.describe(catalog):55s} {elapsed * 1000:8.1f} ms  "
            f"(same answer: {same})"
        )
    print(f"  original query executed in {original_time * 1000:.1f} ms")


if __name__ == "__main__":
    main()
