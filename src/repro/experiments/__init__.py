"""Experiment harness reproducing every table and figure of Section 5.

* :mod:`repro.experiments.harness` -- measurement helpers shared by the
  figures (chase timing, per-strategy optimization runs, plan execution).
* :mod:`repro.experiments.figures` -- one driver per table/figure of the
  paper; each returns structured rows and can render itself as text.
* :mod:`repro.experiments.reporting` -- plain-text table and series rendering.
"""

from repro.experiments.figures import (
    figure5_ec1,
    figure5_ec2,
    figure5_ec3,
    figure6_ec1,
    figure6_ec3,
    figure7_ec2,
    figure8_granularity,
    figure9_plan_detail,
    figure10_time_reduction,
    plans_table_ec2,
)
from repro.experiments.reporting import render_series, render_table

__all__ = [
    "figure10_time_reduction",
    "figure5_ec1",
    "figure5_ec2",
    "figure5_ec3",
    "figure6_ec1",
    "figure6_ec3",
    "figure7_ec2",
    "figure8_granularity",
    "figure9_plan_detail",
    "plans_table_ec2",
    "render_series",
    "render_table",
]
