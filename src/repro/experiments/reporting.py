"""Plain-text rendering of experiment results (tables and series).

The experiment drivers return structured data; these helpers turn them into
the fixed-width tables the benchmarks print, mirroring the rows/series the
paper reports.
"""

from __future__ import annotations


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers, rows, title=None):
    """Render ``rows`` (iterables of cells) under ``headers`` as aligned text."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(series, x_label="x", y_label="y", title=None):
    """Render named series of ``(x, y)`` points as a compact table.

    ``series`` maps a series name to its list of points.
    """
    headers = [x_label] + list(series)
    xs = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in xs:
        row = [x]
        for points in series.values():
            lookup = {px: py for px, py in points}
            row.append(lookup.get(x, ""))
        rows.append(row)
    text = render_table(headers, rows, title=title)
    if y_label:
        text += f"\n(values: {y_label})"
    return text


__all__ = ["render_series", "render_table"]
