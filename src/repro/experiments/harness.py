"""Measurement helpers shared by the experiment drivers.

Every quantity the paper's evaluation reports is produced by one of the
helpers below:

* chase time as a function of query size and number of constraints
  (Section 5.2),
* optimization time per generated plan for a strategy (Section 5.3),
* end-to-end processing time of the generated plans on a populated database
  (Section 5.4), including the ``Redux`` / ``ReduxFirst`` indices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chase.backchase import FullBackchase, ParallelBackchase, resolve_worker_count
from repro.chase.chase import chase
from repro.engine.executor import execute_timed


@dataclass
class ChaseMeasurement:
    """Outcome of one chase-feasibility measurement (Figure 5).

    Besides the paper's axes (time, sizes), the engine's work counters are
    recorded so the benchmark suite can track the perf trajectory across PRs
    (closure queries is the machine-independent proxy for chase effort).
    """

    params: dict
    query_size: int
    constraint_count: int
    chase_time: float
    universal_plan_size: int
    closure_queries: int = 0
    candidates_tried: int = 0
    deps_checked: int = 0
    deps_skipped: int = 0


def measure_chase(workload, **chase_kwargs):
    """Chase the workload's query with all constraints and record the cost."""
    constraints = workload.catalog.constraints()
    result = chase(workload.query, constraints, **chase_kwargs)
    return ChaseMeasurement(
        params=dict(workload.params),
        query_size=workload.query.size(),
        constraint_count=len(constraints),
        chase_time=result.elapsed,
        universal_plan_size=result.query.size(),
        closure_queries=result.counters.closure_queries,
        candidates_tried=result.counters.candidates_tried,
        deps_checked=result.counters.deps_checked,
        deps_skipped=result.counters.deps_skipped,
    )


@dataclass
class StrategyMeasurement:
    """Outcome of one optimizer run under a given strategy (Figures 6-7)."""

    params: dict
    strategy: str
    plan_count: int
    optimization_time: float
    time_per_plan: float
    subqueries_explored: int
    timed_out: bool
    result: object = field(repr=False, default=None)
    closure_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executor: str = "serial"
    workers: int = 1


def measure_strategy(workload, strategy, timeout=None, workers=1, executor="serial"):
    """Optimize the workload's query under ``strategy`` and record the cost."""
    optimizer = workload.optimizer(timeout=timeout, workers=workers, executor=executor)
    result = optimizer.optimize(workload.query, strategy=strategy)
    return StrategyMeasurement(
        params=dict(workload.params),
        strategy=strategy,
        plan_count=result.plan_count,
        optimization_time=result.total_time,
        time_per_plan=result.time_per_plan(),
        subqueries_explored=result.subqueries_explored,
        timed_out=result.timed_out,
        result=result,
        closure_queries=result.closure_queries,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        executor=result.executor,
        workers=result.workers,
    )


@dataclass
class ParallelBackchaseMeasurement:
    """One point of the parallel-backchase scaling experiment.

    ``speedup`` is serial wall-clock divided by this run's wall-clock on the
    *same* universal plan; ``plans_match_serial`` asserts the engines'
    signature-identical plan sets (the correctness half of the experiment).
    """

    params: dict
    executor: str
    workers: int
    backchase_time: float
    serial_time: float
    speedup: float
    plan_count: int
    plans_match_serial: bool
    waves: int = 0
    timed_out: bool = False
    serial_timed_out: bool = False


def measure_parallel_scaling(workload, worker_counts=(1, 2, 4), executor="threads", timeout=None):
    """Backchase one universal plan serially, then at each worker count.

    The chase runs once; the serial :class:`FullBackchase` provides both the
    baseline wall-clock and the reference plan signatures that every
    parallel run is compared against.
    """
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query
    serial = FullBackchase(workload.query, constraints, timeout=timeout).run(universal)
    serial_signatures = {plan.signature() for plan in serial.plans}
    measurements = []
    for workers in worker_counts:
        engine = ParallelBackchase(
            workload.query,
            constraints,
            timeout=timeout,
            executor=executor,
            workers=workers,
        )
        result = engine.run(universal)
        signatures = {plan.signature() for plan in result.plans}
        measurements.append(
            ParallelBackchaseMeasurement(
                params=dict(workload.params),
                executor=executor,
                workers=result.workers,
                backchase_time=result.elapsed,
                serial_time=serial.elapsed,
                speedup=serial.elapsed / result.elapsed if result.elapsed > 0 else float("inf"),
                plan_count=result.plan_count,
                plans_match_serial=signatures == serial_signatures,
                waves=result.waves,
                timed_out=result.timed_out,
                serial_timed_out=serial.timed_out,
            )
        )
    return measurements


@dataclass
class ServiceThroughputMeasurement:
    """Warm sharded service vs. cold per-call optimization (the PR 4 experiment).

    ``cold_seconds`` runs every request through a *fresh*
    :class:`~repro.chase.optimizer.CBOptimizer` sequentially (per-call pools,
    per-call caches — the library-call baseline); ``warm_seconds`` runs the
    same request list through a long-lived
    :class:`~repro.service.OptimizerService`.  ``plans_match`` is the
    correctness half: every service response's plan set must be
    signature-identical to its cold twin.  ``cache_hit_rate`` is measured
    *across* requests (the warm caches are exactly what the cold baseline
    lacks).
    """

    request_count: int
    distinct_configs: int
    shards: int
    executor: str
    workers: int
    cold_seconds: float
    warm_seconds: float
    cold_qps: float
    warm_qps: float
    speedup: float
    cache_hit_rate: float
    cache_evictions: int
    waves: int
    cross_request_waves: int
    cold_p50: float
    cold_p95: float
    warm_p50: float
    warm_p95: float
    plans_match: bool
    errors: int = 0


def default_service_mix():
    """The mixed EC1/EC2/EC3 request mix the serving benchmarks use.

    Seven distinct (workload, strategy) configurations — small enough that a
    single cold call stays sub-second, varied enough that routing spreads
    them over shards and every strategy's stage pipeline is exercised.
    """
    from repro.workloads import build_ec1, build_ec2, build_ec3

    return [
        (build_ec1(2, 1), "fb"),
        (build_ec1(3, 0), "ocs"),
        (build_ec2(1, 3, 1), "fb"),
        (build_ec2(1, 3, 2), "oqf"),
        (build_ec2(2, 2, 1), "oqf"),
        (build_ec3(3, 0), "fb"),
        (build_ec3(3, 1), "ocs"),
    ]


def measure_service_throughput(
    mix=None,
    repeats=8,
    shards=2,
    executor="threads",
    workers=2,
    max_inflight=4,
    timeout=None,
):
    """Measure the warm service against the cold per-call baseline.

    The request list interleaves ``repeats`` rounds of the configuration
    ``mix`` (round-robin, so concurrently in-flight requests come from
    different catalogs and the cross-query batching actually mixes queries).
    """
    from repro.service import OptimizerService

    mix = mix if mix is not None else default_service_mix()
    requests = [config for _ in range(repeats) for config in mix]

    cold_latencies = []
    cold_signatures = []
    cold_start = time.perf_counter()
    for workload, strategy in requests:
        call_start = time.perf_counter()
        result = workload.optimizer(timeout=timeout).optimize(workload.query, strategy=strategy)
        cold_latencies.append(time.perf_counter() - call_start)
        cold_signatures.append({plan.signature() for plan in result.plans})
    cold_seconds = time.perf_counter() - cold_start

    with OptimizerService(
        shards=shards,
        executor=executor,
        workers=workers,
        max_inflight=max_inflight,
        default_timeout=timeout,
    ) as service:
        warm_start = time.perf_counter()
        futures = [
            service.submit(workload.query, strategy=strategy, catalog=workload.catalog)
            for workload, strategy in requests
        ]
        responses = [future.result() for future in futures]
        warm_seconds = time.perf_counter() - warm_start
        stats = service.stats()

    plans_match = all(
        response.ok
        and {plan.signature() for plan in response.result.plans} == cold_signatures[index]
        for index, response in enumerate(responses)
    )
    from repro.service.metrics import percentile

    return ServiceThroughputMeasurement(
        request_count=len(requests),
        distinct_configs=len(mix),
        shards=len(stats.shards),
        executor=executor,
        workers=1 if executor == "serial" else resolve_worker_count(workers),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold_qps=len(requests) / cold_seconds if cold_seconds > 0 else float("inf"),
        warm_qps=len(requests) / warm_seconds if warm_seconds > 0 else float("inf"),
        speedup=cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        cache_hit_rate=stats.cache_hit_rate,
        cache_evictions=stats.cache_evictions,
        waves=stats.waves,
        cross_request_waves=stats.cross_request_waves,
        cold_p50=percentile(cold_latencies, 0.50),
        cold_p95=percentile(cold_latencies, 0.95),
        warm_p50=stats.p50_latency,
        warm_p95=stats.p95_latency,
        plans_match=plans_match,
        errors=stats.errors,
    )


@dataclass
class StageBreakdownMeasurement:
    """Per-stage latency breakdown of traced service requests (PR 9).

    Every request runs through a traced
    :class:`~repro.service.OptimizerService` on the **serial** executor, so
    each span tree's stage seconds are disjoint wall-clock slices of its
    request: ``sum(stages) <= duration`` holds per trace, and
    ``accounted_fraction`` (billed seconds / total traced wall seconds) says
    how much of the pipeline the six stages explain — the remainder is
    framework overhead (routing, future plumbing, metrics).
    """

    request_count: int
    distinct_configs: int
    shards: int
    traced: int
    stage_seconds: dict
    stage_counts: dict
    total_duration: float
    accounted_seconds: float
    accounted_fraction: float
    bounded: bool
    errors: int = 0


def measure_stage_breakdown(mix=None, repeats=4, shards=1, timeout=None):
    """Trace ``repeats`` rounds of the mixed workload and aggregate stages.

    Serial executor on purpose (see
    :class:`StageBreakdownMeasurement`): with pooled executors a stage's
    workers run concurrently and the trace accumulates CPU-seconds, which
    can exceed the request's wall clock — fine for attribution, wrong for a
    breakdown that should sum to (at most) the latency.
    """
    from repro.service import OptimizerService, Tracer

    mix = mix if mix is not None else default_service_mix()
    requests = [config for _ in range(repeats) for config in mix]
    tracer = Tracer(ring_size=len(requests))
    stage_seconds = {}
    stage_counts = {}
    total_duration = 0.0
    traced = 0
    bounded = True
    with OptimizerService(
        shards=shards, executor="serial", default_timeout=timeout, tracer=tracer
    ) as service:
        futures = [
            service.submit(workload.query, strategy=strategy, catalog=workload.catalog)
            for workload, strategy in requests
        ]
        responses = [future.result() for future in futures]
        stats = service.stats()
    for response in responses:
        if response.trace is None:
            continue
        traced += 1
        record = response.trace.as_dict()
        total_duration += record["duration_s"]
        billed = 0.0
        for span in record["stages"]:
            stage_seconds[span["stage"]] = (
                stage_seconds.get(span["stage"], 0.0) + span["seconds"]
            )
            stage_counts[span["stage"]] = (
                stage_counts.get(span["stage"], 0) + span["count"]
            )
            billed += span["seconds"]
        if billed > record["duration_s"]:
            bounded = False
    accounted = sum(stage_seconds.values())
    return StageBreakdownMeasurement(
        request_count=len(requests),
        distinct_configs=len(mix),
        shards=len(stats.shards),
        traced=traced,
        stage_seconds=stage_seconds,
        stage_counts=stage_counts,
        total_duration=total_duration,
        accounted_seconds=accounted,
        accounted_fraction=accounted / total_duration if total_duration > 0 else 0.0,
        bounded=bounded,
        errors=stats.errors,
    )


@dataclass
class WarmRestartMeasurement:
    """Cache-persistence experiment: a restarted service vs. a cold start.

    Three lives of the same mixed workload:

    * **cold** — a fresh :class:`~repro.service.OptimizerService` with empty
      caches runs the full request list (its later rounds warm up in
      process, which is where the within-life ``memo_hit_rate_cold`` and
      ``cache_hit_rate_cold`` come from);
    * **snapshot** — the cold service's sessions (chase-cache registries +
      containment memos) are pickled with ``save_caches``;
    * **restarted** — a brand-new service loads the snapshot
      (``load_caches``) and replays the same request list.  Every chase is a
      cache hit and every containment verdict a memo hit, so
      ``speedup = cold_seconds / restart_seconds`` measures exactly what
      cache persistence buys a redeployed server.

    ``plans_match`` asserts the restarted plan sets are signature-identical
    to the cold ones (persistence must never change a plan).
    """

    request_count: int
    distinct_configs: int
    shards: int
    executor: str
    workers: int
    cold_seconds: float
    restart_seconds: float
    speedup: float
    cache_hit_rate_cold: float
    memo_hit_rate_cold: float
    cache_hit_rate_restart: float
    memo_hit_rate_restart: float
    memo_hits_cold: int
    memo_hits_restart: int
    sessions_saved: int
    snapshot_bytes: int
    plans_match: bool
    errors: int = 0


def measure_warm_restart(
    mix=None,
    repeats=8,
    shards=2,
    executor="threads",
    workers=2,
    max_inflight=4,
    timeout=None,
    snapshot_path=None,
):
    """Measure what cache persistence buys a restarted optimizer service.

    Runs the interleaved mixed request list (as
    :func:`measure_service_throughput`) through a cold service, snapshots its
    warm state, loads the snapshot into a *new* service, and replays the same
    list.  ``snapshot_path=None`` uses a temporary file (removed afterwards).
    """
    import os
    import tempfile

    from repro.service import OptimizerService

    mix = mix if mix is not None else default_service_mix()
    requests = [config for _ in range(repeats) for config in mix]
    service_kwargs = dict(
        shards=shards,
        executor=executor,
        workers=workers,
        max_inflight=max_inflight,
        default_timeout=timeout,
    )

    cleanup = snapshot_path is None
    if snapshot_path is None:
        handle = tempfile.NamedTemporaryFile(prefix="repro-warm-", suffix=".pkl", delete=False)
        handle.close()
        snapshot_path = handle.name

    def run_life(service):
        start = time.perf_counter()
        futures = [
            service.submit(workload.query, strategy=strategy, catalog=workload.catalog)
            for workload, strategy in requests
        ]
        responses = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        signatures = [
            {plan.signature() for plan in response.result.plans} if response.ok else None
            for response in responses
        ]
        return elapsed, signatures, service.stats()

    try:
        with OptimizerService(**service_kwargs) as cold_service:
            cold_seconds, cold_signatures, cold_stats = run_life(cold_service)
            sessions_saved = cold_service.save_caches(snapshot_path)
        snapshot_bytes = os.path.getsize(snapshot_path)

        # Both lives run in one process, but a genuinely redeployed server
        # starts with the module-level congruence caches empty — clear them
        # so the restarted life is served only by what the snapshot actually
        # persisted (chase fixpoints, containment memos, and the restriction
        # tables riding on the pickled universal plans).
        from repro.cq.query import _shared_congruence, _shared_saturated_congruence

        _shared_congruence.cache_clear()
        _shared_saturated_congruence.cache_clear()

        with OptimizerService(**service_kwargs) as restarted_service:
            loaded = restarted_service.load_caches(snapshot_path)
            assert loaded == sessions_saved
            restart_seconds, restart_signatures, restart_stats = run_life(restarted_service)
    finally:
        if cleanup and os.path.exists(snapshot_path):
            os.unlink(snapshot_path)

    plans_match = all(
        cold is not None and cold == restarted
        for cold, restarted in zip(cold_signatures, restart_signatures)
    )
    return WarmRestartMeasurement(
        request_count=len(requests),
        distinct_configs=len(mix),
        shards=shards,
        executor=executor,
        workers=1 if executor == "serial" else resolve_worker_count(workers),
        cold_seconds=cold_seconds,
        restart_seconds=restart_seconds,
        speedup=cold_seconds / restart_seconds if restart_seconds > 0 else float("inf"),
        cache_hit_rate_cold=cold_stats.cache_hit_rate,
        memo_hit_rate_cold=cold_stats.memo_hit_rate,
        cache_hit_rate_restart=restart_stats.cache_hit_rate,
        memo_hit_rate_restart=restart_stats.memo_hit_rate,
        memo_hits_cold=cold_stats.memo_hits,
        memo_hits_restart=restart_stats.memo_hits,
        sessions_saved=sessions_saved,
        snapshot_bytes=snapshot_bytes,
        plans_match=plans_match,
        errors=cold_stats.errors + restart_stats.errors,
    )


@dataclass
class ExecutionMeasurement:
    """Execution of every generated plan on a populated database (Figure 9)."""

    params: dict
    optimization_time: float
    plan_rows: list
    original_execution_time: float
    best_execution_time: float

    @property
    def redux(self):
        """Time reduction with the full optimization cost charged (Section 5.4)."""
        ext = self.original_execution_time
        if ext <= 0:
            return 0.0
        return (ext - (self.best_execution_time + self.optimization_time)) / ext

    @property
    def redux_first(self):
        """Time reduction assuming the best plan is produced first."""
        ext = self.original_execution_time
        if ext <= 0:
            return 0.0
        per_plan = self.optimization_time / max(1, len(self.plan_rows))
        return (ext - (self.best_execution_time + per_plan)) / ext


def measure_execution(workload, strategy="oqf", size=1000, seed=0, timeout=None):
    """Optimize, execute every plan, and compute the Section 5.4 indices.

    The original query is always among the generated plans, so its execution
    time (``ExT``) is the maximum of a plan that scans only logical
    collections; ``ExTBest`` is the fastest plan overall.
    """
    optimizer = workload.optimizer(timeout=timeout)
    result = optimizer.optimize(workload.query, strategy=strategy)
    database = workload.database(size=size, seed=seed)
    catalog = workload.catalog

    reference_rows, original_time = execute_timed(workload.query, database)
    plan_rows = []
    for plan in result.plans:
        rows, elapsed = execute_timed(plan.query, database)
        plan_rows.append(
            {
                "plan": plan,
                "execution_time": elapsed,
                "row_count": len(rows),
                "views_used": plan.physical_structures_used(catalog),
                "relations_used": plan.logical_collections_used(catalog),
                "matches_original": _same_bag(rows, reference_rows),
            }
        )
    plan_rows.sort(key=lambda entry: entry["execution_time"])
    best_time = plan_rows[0]["execution_time"] if plan_rows else original_time
    return ExecutionMeasurement(
        params=dict(workload.params),
        optimization_time=result.total_time,
        plan_rows=plan_rows,
        original_execution_time=original_time,
        best_execution_time=best_time,
    )


def _same_bag(left, right):
    """Compare two bags of output rows irrespective of order."""

    def canonical(rows):
        return sorted(tuple(sorted(row.items())) for row in rows)

    return canonical(left) == canonical(right)


@dataclass
class CrashRecoveryMeasurement:
    """Fault-tolerance experiment: crash restart, graceful restart, retries.

    Three service lives plus a socket phase:

    * **warming** — a fresh service runs the mixed request list; a
      *periodic* snapshot is taken mid-life (after the first
      ``sessions_periodic`` catalogs warmed, simulating the background
      :class:`~repro.service.snapshots.SnapshotManager` loop firing between
      requests) and a *graceful* snapshot at drain time;
    * **crash restart** — a new service recovers from the periodic snapshot
      (what a ``kill -9`` leaves behind) and replays the full list: warm for
      every session the snapshot caught, cold for the tail it missed;
    * **graceful restart** — a new service loads the drain-time snapshot and
      replays fully warm.

    The socket phase runs the same records twice through the TCP front end —
    once clean, once under deterministic injected read/write faults with a
    retrying client — and reports the p50/p95 latency overhead that retries
    cost.  ``plans_match`` / ``retry_plans_match`` assert the differential:
    neither crashes nor retries may change a single plan digest.
    """

    request_count: int
    distinct_configs: int
    shards: int
    executor: str
    workers: int
    warm_seconds: float
    warm_cache_misses: int
    sessions_periodic: int
    sessions_graceful: int
    crash_load_seconds: float
    crash_replay_seconds: float
    crash_cache_hit_rate: float
    crash_memo_hit_rate: float
    crash_cache_misses: int
    graceful_load_seconds: float
    graceful_replay_seconds: float
    graceful_cache_hit_rate: float
    graceful_memo_hit_rate: float
    graceful_cache_misses: int
    plans_match: bool
    retry_requests: int
    retry_replays: int
    faults_injected: int
    retry_clean_p50: float
    retry_clean_p95: float
    retry_faulty_p50: float
    retry_faulty_p95: float
    retry_plans_match: bool
    errors: int = 0

    @property
    def retry_overhead_p50(self):
        return self.retry_faulty_p50 - self.retry_clean_p50

    @property
    def retry_overhead_p95(self):
        return self.retry_faulty_p95 - self.retry_clean_p95


def measure_crash_recovery(
    mix=None,
    repeats=6,
    shards=2,
    executor="threads",
    workers=2,
    max_inflight=4,
    timeout=None,
    retry_rounds=2,
    fault_seed=11,
):
    """Measure crash-restart vs. graceful-restart recovery and retry cost.

    See :class:`CrashRecoveryMeasurement` for the protocol.  All fault
    schedules are deterministic (seeded), so the plan-digest differentials
    are hard assertions, not luck.
    """
    import os
    import tempfile

    from repro.service import FaultInjector, OptimizerClient, OptimizerServer, OptimizerService
    from repro.service.metrics import percentile
    from repro.service.protocol import plan_digest

    mix = mix if mix is not None else default_service_mix()
    requests = [config for _ in range(repeats) for config in mix]
    service_kwargs = dict(
        shards=shards,
        executor=executor,
        workers=workers,
        max_inflight=max_inflight,
        default_timeout=timeout,
    )
    # The "periodic" snapshot fires mid-warm-up: only the catalogs of the
    # first part of round 1 made it in — exactly what a kill -9 between
    # background snapshots leaves behind.
    periodic_cut = max(1, (len(mix) + 1) // 2)

    def run_requests(service, configs):
        futures = [
            service.submit(workload.query, strategy=strategy, catalog=workload.catalog)
            for workload, strategy in configs
        ]
        responses = [future.result() for future in futures]
        for response in responses:
            response.raise_for_error()
        return [plan_digest(response.result.plans) for response in responses]

    def clear_process_caches():
        # Both lives run in one process; a truly redeployed server starts with
        # the module-level congruence caches empty, so recovery must be
        # served only by what the snapshot persisted.
        from repro.cq.query import _shared_congruence, _shared_saturated_congruence

        _shared_congruence.cache_clear()
        _shared_saturated_congruence.cache_clear()

    handles = [
        tempfile.NamedTemporaryFile(prefix=f"repro-{kind}-", suffix=".snap", delete=False)
        for kind in ("periodic", "graceful")
    ]
    for handle in handles:
        handle.close()
    periodic_path, graceful_path = (handle.name for handle in handles)
    try:
        with OptimizerService(**service_kwargs) as warming:
            warm_start = time.perf_counter()
            baseline = run_requests(warming, requests[:periodic_cut])
            sessions_periodic = warming.save_caches(periodic_path)
            baseline += run_requests(warming, requests[periodic_cut:])
            warm_seconds = time.perf_counter() - warm_start
            sessions_graceful = warming.save_caches(graceful_path)
            warming_stats = warming.stats()

        def restart(path):
            clear_process_caches()
            with OptimizerService(**service_kwargs) as restarted:
                load_start = time.perf_counter()
                restored, error = restarted.recover_caches(path)
                load_seconds = time.perf_counter() - load_start
                assert error is None, f"recovery failed: {error}"
                replay_start = time.perf_counter()
                digests = run_requests(restarted, requests)
                replay_seconds = time.perf_counter() - replay_start
                stats = restarted.stats()
            return load_seconds, replay_seconds, digests, stats

        crash_load, crash_replay, crash_digests, crash_stats = restart(periodic_path)
        graceful_load, graceful_replay, graceful_digests, graceful_stats = restart(
            graceful_path
        )
    finally:
        for path in (periodic_path, graceful_path):
            if os.path.exists(path):
                os.unlink(path)

    plans_match = baseline == crash_digests == graceful_digests

    # Socket phase: the same records clean vs. under injected faults with a
    # retrying client — the latency delta is the price of resilience.
    records = [
        {"workload": workload.name.lower(), "params": workload.params, "strategy": strategy}
        for workload, strategy in mix
    ] * retry_rounds

    def run_socket(faults):
        latencies, digests, replays = [], [], 0
        with OptimizerServer(fault_injector=faults, **service_kwargs) as server:
            with OptimizerClient(
                port=server.port, retries=8, backoff_base=0.01, backoff_seed=0
            ) as client:
                for record in records:
                    start = time.perf_counter()
                    response = client.request(dict(record))
                    latencies.append(time.perf_counter() - start)
                    assert response["status"] == "ok", response
                    digests.append(response["plan_digests"])
                replays = client.replays
        return latencies, digests, replays

    clean_latencies, clean_digests, _ = run_socket(None)
    faults = (
        FaultInjector(seed=fault_seed)
        .rule("server.write", probability=0.3, times=3)
        .rule("server.read", probability=0.3, times=2, after=1)
    )
    faulty_latencies, faulty_digests, retry_replays = run_socket(faults)

    return CrashRecoveryMeasurement(
        request_count=len(requests),
        distinct_configs=len(mix),
        shards=shards,
        executor=executor,
        workers=1 if executor == "serial" else resolve_worker_count(workers),
        warm_seconds=warm_seconds,
        warm_cache_misses=warming_stats.cache_misses,
        sessions_periodic=sessions_periodic,
        sessions_graceful=sessions_graceful,
        crash_load_seconds=crash_load,
        crash_replay_seconds=crash_replay,
        crash_cache_hit_rate=crash_stats.cache_hit_rate,
        crash_memo_hit_rate=crash_stats.memo_hit_rate,
        crash_cache_misses=crash_stats.cache_misses,
        graceful_load_seconds=graceful_load,
        graceful_replay_seconds=graceful_replay,
        graceful_cache_hit_rate=graceful_stats.cache_hit_rate,
        graceful_memo_hit_rate=graceful_stats.memo_hit_rate,
        graceful_cache_misses=graceful_stats.cache_misses,
        plans_match=plans_match,
        retry_requests=len(records),
        retry_replays=retry_replays,
        faults_injected=faults.total_injected(),
        retry_clean_p50=percentile(clean_latencies, 0.50),
        retry_clean_p95=percentile(clean_latencies, 0.95),
        retry_faulty_p50=percentile(faulty_latencies, 0.50),
        retry_faulty_p95=percentile(faulty_latencies, 0.95),
        retry_plans_match=clean_digests == faulty_digests,
        errors=warming_stats.errors + crash_stats.errors + graceful_stats.errors,
    )


__all__ = [
    "ChaseMeasurement",
    "CrashRecoveryMeasurement",
    "ExecutionMeasurement",
    "ParallelBackchaseMeasurement",
    "ServiceThroughputMeasurement",
    "StageBreakdownMeasurement",
    "StrategyMeasurement",
    "WarmRestartMeasurement",
    "default_service_mix",
    "measure_chase",
    "measure_crash_recovery",
    "measure_execution",
    "measure_parallel_scaling",
    "measure_service_throughput",
    "measure_stage_breakdown",
    "measure_strategy",
    "measure_warm_restart",
]
