"""Drivers for every table and figure of the paper's evaluation (Section 5).

Each ``figureN_*`` / ``plans_table_*`` function runs the corresponding
experiment at a configurable (laptop-friendly) scale and returns a result
object with the measured rows and a ``render()`` method that prints the same
rows/series the paper reports.  The pytest-benchmark targets in
``benchmarks/`` call these drivers with their default parameters.

Absolute times are not expected to match the 1999 prototype; the *shapes*
are: chase time stays small and grows smoothly (Figure 5), FB's time per plan
explodes while OQF and OCS stay flat or grow much more slowly (Figures 6-7),
optimization time drops as strata shrink (Figure 8), and plans that use more
materialized views execute faster, yielding large positive Redux values
(Figures 9-10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.stratify import stratify_constraints
from repro.experiments.harness import (
    measure_chase,
    measure_crash_recovery,
    measure_execution,
    measure_parallel_scaling,
    measure_service_throughput,
    measure_stage_breakdown,
    measure_strategy,
    measure_warm_restart,
)
from repro.experiments.reporting import render_table
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3

#: Default timeout (seconds) applied to a single backchase run, mirroring the
#: two-minute timeout used in the paper's experiments.
DEFAULT_TIMEOUT = 120.0


@dataclass
class ExperimentResult:
    """A generic experiment result: labelled rows plus a rendering recipe."""

    name: str
    headers: list
    rows: list = field(default_factory=list)
    notes: str = ""

    def render(self):
        text = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text


# ---------------------------------------------------------------------- #
# Figure 5: feasibility of the chase
# ---------------------------------------------------------------------- #
def figure5_ec1(settings=((5, 4), (7, 7), (10, 9))):
    """Chase time for EC1 as the number of indexes grows (Figure 5, left).

    ``settings`` is a sequence of ``(relations, secondary_indexes)`` pairs;
    the number of indexes is ``relations + secondary_indexes``.
    """
    result = ExperimentResult(
        "Figure 5 (EC1): time to chase vs #indexes",
        [
            "#indexes",
            "#constraints",
            "query size",
            "chase time (s)",
            "universal plan size",
            "closure queries",
        ],
    )
    for relations, secondary in settings:
        workload = build_ec1(relations, secondary)
        measurement = measure_chase(workload)
        result.rows.append(
            (
                relations + secondary,
                measurement.constraint_count,
                measurement.query_size,
                measurement.chase_time,
                measurement.universal_plan_size,
                measurement.closure_queries,
            )
        )
    return result


def figure5_ec2(stars=3, corner_range=(3, 4, 5, 6, 7), views_options=(2, 3)):
    """Chase time for EC2 as query size grows, one series per constraint count."""
    series = {}
    for views in views_options:
        label = f"{stars * views} views + {stars} keys = {stars * (1 + 2 * views)} constraints"
        points = []
        for corners in corner_range:
            if views > corners - 1:
                continue
            workload = build_ec2(stars, corners, views)
            measurement = measure_chase(workload)
            points.append((measurement.query_size, measurement.chase_time))
        series[label] = points
    result = ExperimentResult(
        "Figure 5 (EC2): time to chase vs query size",
        ["query size"] + list(series),
    )
    result.rows = _series_rows(series)
    return result


def figure5_ec3(class_counts=(2, 4, 6, 8, 10)):
    """Chase time for EC3 as the number of classes grows (Figure 5, right)."""
    result = ExperimentResult(
        "Figure 5 (EC3): time to chase vs #classes",
        ["#classes", "#constraints", "chase time (s)", "universal plan size", "closure queries"],
    )
    for classes in class_counts:
        asrs = max((classes - 1) // 2, 0)
        workload = build_ec3(classes, asrs)
        measurement = measure_chase(workload)
        result.rows.append(
            (
                classes,
                measurement.constraint_count,
                measurement.chase_time,
                measurement.universal_plan_size,
                measurement.closure_queries,
            )
        )
    return result


# ---------------------------------------------------------------------- #
# Section 5.3.1: number of generated plans (EC2 table)
# ---------------------------------------------------------------------- #
#: The parameter rows of the table in Section 5.3.1 together with the plan
#: counts the paper reports for FB/OQF and for OCS.
PLANS_TABLE_ROWS = (
    (1, 3, 1, 2, 2),
    (1, 3, 2, 4, 3),
    (1, 4, 3, 7, 5),
    (1, 5, 1, 2, 2),
    (1, 5, 2, 4, 3),
    (1, 5, 3, 7, 5),
    (1, 5, 4, 13, 8),
    (2, 5, 1, 4, 4),
    (3, 5, 1, 8, 8),
)


def plans_table_ec2(rows=PLANS_TABLE_ROWS, timeout=DEFAULT_TIMEOUT):
    """Number of plans generated by FB/OQF/OCS on EC2 (the Section 5.3.1 table)."""
    result = ExperimentResult(
        "Number of plans in EC2 (Section 5.3.1)",
        ["s", "c", "v", "FB", "OQF", "OCS", "paper FB/OQF", "paper OCS"],
        notes="s = stars, c = corners per star, v = views per star",
    )
    for stars, corners, views, paper_complete, paper_ocs in rows:
        workload = build_ec2(stars, corners, views)
        counts = {}
        for strategy in ("fb", "oqf", "ocs"):
            counts[strategy] = measure_strategy(workload, strategy, timeout=timeout).plan_count
        result.rows.append(
            (
                stars,
                corners,
                views,
                counts["fb"],
                counts["oqf"],
                counts["ocs"],
                paper_complete,
                paper_ocs,
            )
        )
    return result


# ---------------------------------------------------------------------- #
# Figures 6 and 7: optimization time per generated plan
# ---------------------------------------------------------------------- #
def figure6_ec1(settings=((3, 0), (3, 1), (3, 2), (4, 0), (4, 1)), timeout=60.0):
    """Time per plan for FB/OQF/OCS on EC1 (Figure 6, right)."""
    result = ExperimentResult(
        "Figure 6 (EC1): time per plan, [#relations, #secondary indexes]",
        ["[n, j]", "FB tpp (s)", "OQF tpp (s)", "OCS tpp (s)", "FB timed out"],
    )
    for relations, secondary in settings:
        workload = build_ec1(relations, secondary)
        measurements = {
            strategy: measure_strategy(workload, strategy, timeout=timeout)
            for strategy in ("fb", "oqf", "ocs")
        }
        result.rows.append(
            (
                f"[{relations},{secondary}]",
                measurements["fb"].time_per_plan,
                measurements["oqf"].time_per_plan,
                measurements["ocs"].time_per_plan,
                measurements["fb"].timed_out,
            )
        )
    return result


def figure6_ec3(class_counts=(2, 3, 4, 5), timeout=60.0, asrs=0):
    """Time per plan for FB(=OQF) vs OCS on EC3 (Figure 6, left)."""
    result = ExperimentResult(
        "Figure 6 (EC3): time per plan vs #classes traversed",
        ["#classes", "FB(=OQF) tpp (s)", "OCS tpp (s)", "FB plans", "OCS plans", "FB timed out"],
    )
    for classes in class_counts:
        workload = build_ec3(classes, min(asrs, max((classes - 1) // 2, 0)))
        fb = measure_strategy(workload, "fb", timeout=timeout)
        ocs = measure_strategy(workload, "ocs", timeout=timeout)
        result.rows.append(
            (classes, fb.time_per_plan, ocs.time_per_plan, fb.plan_count, ocs.plan_count, fb.timed_out)
        )
    return result


def figure7_ec2(points=((1, 1, 3), (1, 1, 5), (2, 1, 3), (1, 2, 3), (2, 2, 3), (1, 3, 3)), timeout=60.0):
    """Time per plan for FB/OQF/OCS on EC2 (Figure 7).

    ``points`` are ``(views per star, stars, corners per star)`` triples,
    following the paper's ``[#views per star, #stars, size of star]`` axis.
    """
    result = ExperimentResult(
        "Figure 7 (EC2): time per plan, [#views per star, #stars, star size]",
        [
            "[v, s, c]",
            "FB tpp (s)",
            "OQF tpp (s)",
            "OCS tpp (s)",
            "FB timed out",
            "FB queries",
            "OQF queries",
        ],
    )
    for views, stars, corners in points:
        workload = build_ec2(stars, corners, views)
        measurements = {
            strategy: measure_strategy(workload, strategy, timeout=timeout)
            for strategy in ("fb", "oqf", "ocs")
        }
        result.rows.append(
            (
                f"[{views},{stars},{corners}]",
                measurements["fb"].time_per_plan,
                measurements["oqf"].time_per_plan,
                measurements["ocs"].time_per_plan,
                measurements["fb"].timed_out,
                measurements["fb"].closure_queries,
                measurements["oqf"].closure_queries,
            )
        )
    return result


# ---------------------------------------------------------------------- #
# Figure 8: effect of stratification granularity
# ---------------------------------------------------------------------- #
def figure8_granularity(workloads=None, timeout=120.0):
    """Optimization time as a function of stratum size (Figure 8).

    For each workload the base strata are computed by Algorithm C.1; they are
    then merged into coarser groups of ``g`` base strata and the whole OCS
    pipeline is re-run, so ``g = 1`` is OCS proper and ``g = #strata`` is a
    single chase/backchase with every constraint (FB-like).  Times are
    normalised to the ``g = 1`` run of the same workload, as in the paper.
    """
    if workloads is None:
        workloads = [
            ("EC3 with 5 classes", build_ec3(5)),
            ("EC3 with 4 classes", build_ec3(4)),
            ("EC2 [3,3,1]", build_ec2(3, 3, 1)),
        ]
    series = {}
    for label, workload in workloads:
        base_strata = stratify_constraints(workload.catalog.constraints())
        optimizer = workload.optimizer(timeout=timeout)
        points = []
        baseline = None
        for group_size in range(1, len(base_strata) + 1):
            grouped = _group_strata(base_strata, group_size)
            run = optimizer.optimize_with_strata(workload.query, grouped)
            elapsed = run.total_time
            if baseline is None:
                baseline = elapsed if elapsed > 0 else 1e-9
            points.append((group_size, elapsed / baseline))
        series[label] = points
    result = ExperimentResult(
        "Figure 8: effect of stratification granularity (normalised time)",
        ["stratum size"] + list(series),
    )
    result.rows = _series_rows(series)
    return result


def _group_strata(strata, group_size):
    """Merge consecutive base strata into groups of ``group_size``."""
    grouped = []
    for start in range(0, len(strata), group_size):
        merged = []
        seen = set()
        for stratum in strata[start : start + group_size]:
            for dependency in stratum:
                if dependency.name not in seen:
                    seen.add(dependency.name)
                    merged.append(dependency)
        grouped.append(merged)
    return grouped


# ---------------------------------------------------------------------- #
# Parallel backchase scaling (post-paper: the PR 2 experiment)
# ---------------------------------------------------------------------- #
def parallel_backchase_scaling(
    stars=2,
    corners=4,
    views=2,
    worker_counts=(1, 2, 4, 8),
    executor="processes",
    timeout=DEFAULT_TIMEOUT,
    workers=None,
):
    """Wave-parallel backchase vs. the sequential engine on one EC2 instance.

    The chase runs once; the sequential :class:`FullBackchase` sets the
    baseline, then the wave engine runs at each worker count on the same
    universal plan.  Every row asserts the two engines' plan sets are
    signature-identical; the speedup column tracks the wall-clock win (bounded
    by the machine's usable cores — the ``serial`` executor and 1-worker rows
    quantify the wave engine's own overhead).

    ``workers`` (the CLI's ``--workers`` flag) overrides ``worker_counts``
    with the single count requested.
    """
    if workers is not None:
        worker_counts = (workers,)
    workload = build_ec2(stars, corners, views)
    measurements = measure_parallel_scaling(
        workload, worker_counts=worker_counts, executor=executor, timeout=timeout
    )
    serial_time = measurements[0].serial_time if measurements else 0.0
    result = ExperimentResult(
        f"Parallel backchase scaling on EC2 [{stars} stars, {corners} corners/star, {views} views/star]",
        ["workers", "executor", "backchase time (s)", "speedup vs serial", "plans", "waves", "matches serial"],
        notes=f"sequential FullBackchase baseline: {serial_time:.3f}s",
    )
    for measurement in measurements:
        result.rows.append(
            (
                measurement.workers,
                measurement.executor,
                measurement.backchase_time,
                round(measurement.speedup, 3),
                measurement.plan_count,
                measurement.waves,
                measurement.plans_match_serial,
            )
        )
    result.measurements = measurements
    return result


# ---------------------------------------------------------------------- #
# Service throughput (post-paper: the PR 4 experiment)
# ---------------------------------------------------------------------- #
def service_throughput(
    repeats=8,
    shards=2,
    executor="threads",
    workers=2,
    timeout=DEFAULT_TIMEOUT,
):
    """Warm sharded serving vs. cold per-call optimization on a mixed workload.

    Runs ``repeats`` interleaved rounds of the mixed EC1/EC2/EC3 request mix
    (:func:`~repro.experiments.harness.default_service_mix`) twice: cold —
    a fresh :class:`~repro.chase.optimizer.CBOptimizer` per request — and
    warm, through a long-lived :class:`~repro.service.OptimizerService`.
    Every warm response is asserted signature-identical to its cold twin;
    the table reports throughput, the cross-request cache-hit rate, and the
    latency percentiles.
    """
    measurement = measure_service_throughput(
        repeats=repeats, shards=shards, executor=executor, workers=workers, timeout=timeout
    )
    result = ExperimentResult(
        f"Optimizer service throughput [{measurement.request_count} requests, "
        f"{measurement.distinct_configs} configs, {measurement.shards} shards, "
        f"{measurement.executor} x{measurement.workers}]",
        [
            "mode",
            "total (s)",
            "queries/s",
            "p50 (s)",
            "p95 (s)",
            "cache hit rate",
            "plans match",
        ],
        notes=(
            f"warm speedup {measurement.speedup:.2f}x; "
            f"{measurement.waves} waves ({measurement.cross_request_waves} cross-request); "
            f"{measurement.cache_evictions} evictions"
        ),
    )
    result.rows.append(
        ("cold per-call", round(measurement.cold_seconds, 3), round(measurement.cold_qps, 2),
         round(measurement.cold_p50, 4), round(measurement.cold_p95, 4), "-", True)
    )
    result.rows.append(
        ("warm service", round(measurement.warm_seconds, 3), round(measurement.warm_qps, 2),
         round(measurement.warm_p50, 4), round(measurement.warm_p95, 4),
         round(measurement.cache_hit_rate, 3), measurement.plans_match)
    )
    result.measurement = measurement
    return result


# ---------------------------------------------------------------------- #
# Stage breakdown (post-paper: the PR 9 observability experiment)
# ---------------------------------------------------------------------- #
def stage_breakdown(repeats=4, shards=1, timeout=DEFAULT_TIMEOUT):
    """Where traced requests spend their time, stage by stage.

    Runs ``repeats`` rounds of the mixed EC1/EC2/EC3 request mix through a
    traced :class:`~repro.service.OptimizerService` on the serial executor
    and aggregates every span tree: per stage, the total billed wall
    seconds, the span count and the share of the accounted time.  The
    ``bounded`` note asserts the tracing invariant — per request,
    ``sum(stages) <= duration``.
    """
    measurement = measure_stage_breakdown(repeats=repeats, shards=shards, timeout=timeout)
    result = ExperimentResult(
        f"Request stage breakdown [{measurement.request_count} requests, "
        f"{measurement.distinct_configs} configs, {measurement.shards} shard(s), serial]",
        ["stage", "total (s)", "spans", "share of accounted"],
        notes=(
            f"{measurement.traced}/{measurement.request_count} traced; "
            f"stages account for {measurement.accounted_fraction:.1%} of "
            f"{measurement.total_duration:.3f}s total; "
            f"bounded (sum <= duration per request): {measurement.bounded}"
        ),
    )
    accounted = measurement.accounted_seconds or 1.0
    for stage, seconds in sorted(
        measurement.stage_seconds.items(), key=lambda item: -item[1]
    ):
        result.rows.append(
            (
                stage,
                round(seconds, 4),
                measurement.stage_counts[stage],
                round(seconds / accounted, 3),
            )
        )
    result.measurement = measurement
    return result


# ---------------------------------------------------------------------- #
# Warm restart (post-paper: the PR 5 cache-persistence experiment)
# ---------------------------------------------------------------------- #
def warm_restart(
    repeats=8,
    shards=2,
    executor="threads",
    workers=2,
    timeout=DEFAULT_TIMEOUT,
    snapshot=None,
):
    """Cold service vs. a restarted service loading a cache snapshot.

    The cold life runs the mixed request mix from empty caches and saves its
    warm sessions (chase fixpoints + containment-memo verdicts) with
    ``save_caches``; a brand-new service loads the snapshot and replays the
    same requests.  The table reports both lives' wall clock and hit rates;
    the speedup row is what persistence buys a redeployed server.
    """
    measurement = measure_warm_restart(
        repeats=repeats,
        shards=shards,
        executor=executor,
        workers=workers,
        timeout=timeout,
        snapshot_path=snapshot,
    )
    result = ExperimentResult(
        f"Warm restart from cache snapshot [{measurement.request_count} requests, "
        f"{measurement.distinct_configs} configs, {measurement.shards} shards, "
        f"{measurement.executor} x{measurement.workers}]",
        [
            "life",
            "total (s)",
            "queries/s",
            "cache hit rate",
            "memo hit rate",
            "plans match",
        ],
        notes=(
            f"restart speedup {measurement.speedup:.2f}x; "
            f"{measurement.sessions_saved} sessions, "
            f"{measurement.snapshot_bytes / 1024:.0f} KiB snapshot"
        ),
    )
    result.rows.append(
        (
            "cold start",
            round(measurement.cold_seconds, 3),
            round(measurement.request_count / measurement.cold_seconds, 2)
            if measurement.cold_seconds > 0
            else float("inf"),
            round(measurement.cache_hit_rate_cold, 3),
            round(measurement.memo_hit_rate_cold, 3),
            True,
        )
    )
    result.rows.append(
        (
            "restarted (snapshot)",
            round(measurement.restart_seconds, 3),
            round(measurement.request_count / measurement.restart_seconds, 2)
            if measurement.restart_seconds > 0
            else float("inf"),
            round(measurement.cache_hit_rate_restart, 3),
            round(measurement.memo_hit_rate_restart, 3),
            measurement.plans_match,
        )
    )
    result.measurement = measurement
    return result


def crash_recovery(
    repeats=6,
    shards=2,
    executor="threads",
    workers=2,
    timeout=DEFAULT_TIMEOUT,
):
    """Crash restart vs. graceful restart, and what client retries cost.

    Three lives of the service run the mixed request list: a warming life
    (with a mid-life "periodic" snapshot and a drain-time "graceful" one), a
    crash-restart life recovering from the periodic snapshot — warm only for
    the sessions the last background snapshot caught — and a graceful-restart
    life replaying fully warm.  A final socket phase runs the records twice
    through the TCP front end, clean and under deterministic injected
    read/write faults with a retrying client, and reports the p50/p95 latency
    overhead retries cost.  Both differentials (crash and retry) must leave
    every plan digest unchanged.
    """
    measurement = measure_crash_recovery(
        repeats=repeats,
        shards=shards,
        executor=executor,
        workers=workers,
        timeout=timeout,
    )
    result = ExperimentResult(
        f"Crash recovery and retry overhead [{measurement.request_count} requests, "
        f"{measurement.distinct_configs} configs, {measurement.shards} shards, "
        f"{measurement.executor} x{measurement.workers}]",
        [
            "life",
            "load (s)",
            "replay (s)",
            "cache hit rate",
            "memo hit rate",
            "cache misses",
            "plans match",
        ],
        notes=(
            f"periodic snapshot caught {measurement.sessions_periodic}/"
            f"{measurement.sessions_graceful} sessions; "
            f"{measurement.faults_injected} faults injected, "
            f"{measurement.retry_replays} replays over "
            f"{measurement.retry_requests} socket requests; "
            f"retry overhead p50 {measurement.retry_overhead_p50 * 1000:+.1f} ms, "
            f"p95 {measurement.retry_overhead_p95 * 1000:+.1f} ms "
            f"(digests identical: {measurement.retry_plans_match})"
        ),
    )
    result.rows.append(
        (
            "warming (cold)",
            0.0,
            round(measurement.warm_seconds, 3),
            0.0,
            0.0,
            "-",
            True,
        )
    )
    result.rows.append(
        (
            "crash restart (periodic snapshot)",
            round(measurement.crash_load_seconds, 3),
            round(measurement.crash_replay_seconds, 3),
            round(measurement.crash_cache_hit_rate, 3),
            round(measurement.crash_memo_hit_rate, 3),
            measurement.crash_cache_misses,
            measurement.plans_match,
        )
    )
    result.rows.append(
        (
            "graceful restart (drain snapshot)",
            round(measurement.graceful_load_seconds, 3),
            round(measurement.graceful_replay_seconds, 3),
            round(measurement.graceful_cache_hit_rate, 3),
            round(measurement.graceful_memo_hit_rate, 3),
            measurement.graceful_cache_misses,
            measurement.plans_match,
        )
    )
    result.measurement = measurement
    return result


# ---------------------------------------------------------------------- #
# Figure 9: plan detail for one EC2 instance
# ---------------------------------------------------------------------- #
def figure9_plan_detail(stars=3, corners=2, views=1, size=5000, seed=0, timeout=DEFAULT_TIMEOUT):
    """Execute every generated plan for one EC2 instance (Figure 9).

    The paper's instance uses 3 stars of 2 corners with one view per star,
    which yields 8 plans; each row reports the plan's execution time, the
    views it uses and the corner relations it still scans.
    """
    workload = build_ec2(stars, corners, views)
    measurement = measure_execution(workload, strategy="oqf", size=size, seed=seed, timeout=timeout)
    result = ExperimentResult(
        f"Figure 9: plans for EC2 [{stars} stars, {corners} corners/star, {views} view/star]",
        ["plan #", "execution time (s)", "views used", "corner relations used", "matches original"],
        notes=(
            f"{len(measurement.plan_rows)} plans generated; "
            f"optimization time {measurement.optimization_time:.2f}s; "
            f"original query execution time {measurement.original_execution_time:.3f}s"
        ),
    )
    for number, entry in enumerate(measurement.plan_rows, start=1):
        corners_used = [name for name in entry["relations_used"] if name.startswith("S")]
        result.rows.append(
            (
                number,
                entry["execution_time"],
                ", ".join(entry["views_used"]) or "-",
                ", ".join(corners_used) or "-",
                entry["matches_original"],
            )
        )
    result.measurement = measurement
    return result


# ---------------------------------------------------------------------- #
# Figure 10: end-to-end time reduction
# ---------------------------------------------------------------------- #
def figure10_time_reduction(
    points=((2, 2, 1), (2, 3, 1), (3, 2, 1), (2, 3, 2), (3, 3, 1)),
    size=10000,
    seed=0,
    timeout=DEFAULT_TIMEOUT,
):
    """Redux and ReduxFirst over an EC2 parameter sweep (Figure 10).

    ``points`` are ``(stars, corners per star, views per star)`` triples, the
    paper's ``[#stars, #corner relations per star, #views per star]`` axis.
    """
    result = ExperimentResult(
        "Figure 10: time reduction [#stars, #corners/star, #views/star]",
        ["[s, c, v]", "OptT (s)", "ExT (s)", "ExTBest (s)", "#plans", "Redux", "ReduxFirst"],
        notes="Redux = (ExT - (ExTBest + OptT)) / ExT; ReduxFirst charges only OptT / #plans",
    )
    measurements = []
    for stars, corners, views in points:
        workload = build_ec2(stars, corners, views)
        measurement = measure_execution(workload, strategy="oqf", size=size, seed=seed, timeout=timeout)
        measurements.append(measurement)
        result.rows.append(
            (
                f"[{stars},{corners},{views}]",
                measurement.optimization_time,
                measurement.original_execution_time,
                measurement.best_execution_time,
                len(measurement.plan_rows),
                round(measurement.redux, 3),
                round(measurement.redux_first, 3),
            )
        )
    result.measurements = measurements
    return result


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _series_rows(series):
    xs = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in sorted(xs):
        row = [x]
        for points in series.values():
            lookup = dict(points)
            row.append(lookup.get(x, ""))
        rows.append(row)
    return rows


__all__ = [
    "DEFAULT_TIMEOUT",
    "ExperimentResult",
    "PLANS_TABLE_ROWS",
    "figure10_time_reduction",
    "figure5_ec1",
    "figure5_ec2",
    "figure5_ec3",
    "figure6_ec1",
    "figure6_ec3",
    "figure7_ec2",
    "figure8_granularity",
    "figure9_plan_detail",
    "parallel_backchase_scaling",
    "plans_table_ec2",
    "service_throughput",
    "stage_breakdown",
    "warm_restart",
]
