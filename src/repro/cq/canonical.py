"""Canonical database view of a query (the DB(Q) of the prototype architecture).

Section 4 of the paper describes compiling queries and constraints into a
*canonical database*: a congruence-closure based representation over which
chasing reduces to a form of query evaluation.  In this reproduction the
:class:`~repro.cq.query.PCQuery` plus its (saturated) congruence closure play
that role; this module exposes the combination as an explicit object mainly
for inspection, debugging and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Var


@dataclass
class CanonicalDatabase:
    """A query together with the congruence closure of its where clause."""

    query: object
    closure: object

    @classmethod
    def of(cls, query, saturated=True):
        """Build the canonical database of ``query``."""
        closure = query.saturated_congruence() if saturated else query.congruence()
        return cls(query, closure)

    def equal(self, left, right):
        """Decide whether an equality follows from the query's where clause."""
        return self.closure.equal(left, right)

    def node_count(self):
        """Number of distinct nodes (equivalence classes)."""
        return len(self.closure.classes())

    def classes(self):
        """Return the partition of interned paths into equivalence classes."""
        return self.closure.classes()

    def class_of(self, path):
        """Return every known path equal to ``path``."""
        return self.closure.equivalent_terms(path)

    def variables_equal_to(self, path):
        """Return the query variables provably equal to ``path``."""
        return [
            term.name
            for term in self.closure.equivalent_terms(path)
            if isinstance(term, Var) and term.name in self.query.variable_set
        ]


__all__ = ["CanonicalDatabase"]
