"""Congruence closure over path terms.

The chase needs to decide, many times per step, whether an equality between
two paths follows from the where clause of a query.  Following the paper
(Section 3.1 and the architecture of Section 4), queries are compiled into a
canonical database on which equality reasoning is done by congruence closure,
a variation of Nelson & Oppen's fast union-find based decision procedure.

Terms are path expressions (:mod:`repro.lang.ast`).  Constants, variables and
schema references are leaves; ``Attr``, ``Lookup`` and ``Dom`` are function
applications whose congruence is propagated: if ``r`` and ``r'`` are equal
then ``r.K`` and ``r'.K`` are equal as well (once both terms are known).

Beyond the decision procedure itself, the closure maintains the bookkeeping
the indexed hot paths of the engine rely on:

* per-class member lists, so :meth:`representative`, :meth:`equivalent_terms`
  and :meth:`classes` are proportional to the class (or partition) size
  instead of scanning every interned term;
* a *generation* counter bumped on every union, so external candidate
  indexes keyed by class representatives (:class:`repro.cq.homomorphism.
  BindingIndex`, the chase's trigger index) can detect that class structure
  changed and rebuild lazily;
* a union event log (:meth:`unions_since`), so the incremental chase can
  compute which equivalence classes an applied step actually disturbed.
"""

from __future__ import annotations

from repro.lang.ast import Attr, Const, Dom, Lookup, Path


class CongruenceClosure:
    """Incremental congruence closure over path terms.

    The structure is mutable: terms are interned with :meth:`add_term`,
    equalities are asserted with :meth:`merge`, and queries are answered with
    :meth:`equal`.  Asking about a term that was never interned simply interns
    it on the fly (its signature is computed with respect to the current
    classes, so congruent existing terms are detected).
    """

    def __init__(self, equalities=None):
        # term id -> Path
        self._terms = []
        # Path -> term id (structural interning)
        self._ids = {}
        # union-find parent / rank
        self._parent = []
        self._rank = []
        # class representative id -> list of term ids that use it as a child
        self._uses = {}
        # signature (op key, child representative ids) -> term id
        self._signatures = {}
        # class root id -> list of member term ids (unsorted; merged on union)
        self._members = {}
        # class root id -> smallest member term id (deterministic representative)
        self._min_member = {}
        # bumped on every union; external indexes use it to detect staleness
        self._generation = 0
        # (surviving root, absorbed root) of each union, in order; the
        # incremental chase and the candidate indexes read a suffix of this
        # log to find the classes a merge cascade disturbed
        self._union_log = []
        # slot owned by repro.cq.homomorphism: the shared candidate index for
        # the query this closure was built from (None until first search)
        self.binding_index = None
        if equalities:
            for equality in equalities:
                self.merge(equality.left, equality.right)

    # ------------------------------------------------------------------ #
    # interning and union-find
    # ------------------------------------------------------------------ #
    def add_term(self, path):
        """Intern ``path`` (and its sub-paths) and return its term id."""
        if not isinstance(path, Path):
            raise TypeError(f"not a path expression: {path!r}")
        existing = self._ids.get(path)
        if existing is not None:
            return existing
        children = _child_paths(path)
        child_ids = [self.add_term(child) for child in children]
        term_id = len(self._terms)
        self._terms.append(path)
        self._ids[path] = term_id
        self._parent.append(term_id)
        self._rank.append(0)
        self._members[term_id] = [term_id]
        self._min_member[term_id] = term_id
        if child_ids:
            signature = self._signature_of(path, child_ids)
            congruent = self._signatures.get(signature)
            for child_id in child_ids:
                self._uses.setdefault(self._find(child_id), []).append(term_id)
            if congruent is not None:
                self._union(term_id, congruent)
            else:
                self._signatures[signature] = term_id
        return term_id

    def _find(self, term_id):
        root = term_id
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term_id] != root:
            self._parent[term_id], term_id = root, self._parent[term_id]
        return root

    def _signature_of(self, path, child_ids):
        key = _op_key(path)
        return (key, tuple(self._find(child) for child in child_ids))

    def _union(self, a, b):
        """Merge the classes of term ids ``a`` and ``b`` and propagate congruence."""
        worklist = [(a, b)]
        while worklist:
            left, right = worklist.pop()
            left_root = self._find(left)
            right_root = self._find(right)
            if left_root == right_root:
                continue
            if self._rank[left_root] < self._rank[right_root]:
                left_root, right_root = right_root, left_root
            if self._rank[left_root] == self._rank[right_root]:
                self._rank[left_root] += 1
            # right_root is absorbed into left_root
            self._parent[right_root] = left_root
            self._generation += 1
            self._union_log.append((left_root, right_root))
            self._members[left_root].extend(self._members.pop(right_root))
            right_min = self._min_member.pop(right_root)
            if right_min < self._min_member[left_root]:
                self._min_member[left_root] = right_min
            absorbed_uses = self._uses.pop(right_root, [])
            surviving_uses = self._uses.setdefault(left_root, [])
            for user in absorbed_uses:
                path = self._terms[user]
                child_ids = [self._ids[child] for child in _child_paths(path)]
                signature = self._signature_of(path, child_ids)
                congruent = self._signatures.get(signature)
                if congruent is not None and self._find(congruent) != self._find(user):
                    worklist.append((congruent, user))
                else:
                    self._signatures[signature] = user
                surviving_uses.append(user)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def merge(self, left, right):
        """Assert that two paths are equal."""
        self._union(self.add_term(left), self.add_term(right))

    def add_equalities(self, equalities):
        """Assert a collection of :class:`~repro.lang.ast.Eq` conditions."""
        for equality in equalities:
            self.merge(equality.left, equality.right)

    def equal(self, left, right):
        """Return ``True`` when ``left = right`` follows from the asserted facts."""
        if left == right:
            return True
        # Intern both sides before comparing roots: interning the second term
        # can trigger a congruence union that changes the first term's root.
        left_id = self.add_term(left)
        right_id = self.add_term(right)
        return self._find(left_id) == self._find(right_id)

    def root_of(self, path):
        """Intern ``path`` and return its current class root id.

        The root id is only stable until the next union (watch
        :attr:`generation`); it is the key the candidate indexes bucket by.
        """
        return self._find(self.add_term(path))

    @property
    def generation(self):
        """Monotone counter of unions; any change invalidates root-keyed indexes."""
        return self._generation

    def snapshot(self):
        """Return an opaque staleness token (the current generation)."""
        return self._generation

    @property
    def union_count(self):
        """Total number of unions performed (length of the union log)."""
        return len(self._union_log)

    def unions_since(self, mark):
        """Return the current roots of the classes merged since ``mark``.

        ``mark`` is a previous :attr:`union_count` value.  Roots are
        deduplicated and resolved to their *current* representative, so a
        cascade of unions collapsing into one class reports a single root.
        """
        roots = {self._find(surviving) for surviving, _ in self._union_log[mark:]}
        return list(roots)

    def union_pairs_since(self, mark):
        """Return the raw ``(surviving, absorbed)`` root pairs since ``mark``.

        Processing the pairs in order lets an index repair its root-keyed
        buckets with dictionary moves only: entries keyed by an absorbed root
        belong to the surviving root, and cascaded absorptions of a surviving
        root appear as later pairs.
        """
        return self._union_log[mark:]

    def class_terms(self, root_id):
        """Return the member terms of the class with root ``root_id``."""
        return [self._terms[term_id] for term_id in self._members[self._find(root_id)]]

    def representative(self, path):
        """Return a canonical path representing the class of ``path``.

        The representative is deterministic (smallest interned term id in the
        class), so callers can use it as a dictionary key.
        """
        root = self._find(self.add_term(path))
        return self._terms[self._min_member[root]]

    def equivalent_terms(self, path):
        """Return every interned term in the same class as ``path``."""
        root = self._find(self.add_term(path))
        return [self._terms[term_id] for term_id in sorted(self._members[root])]

    def classes(self):
        """Return the partition of interned terms into equivalence classes.

        Classes are ordered by their smallest member term id and members are
        listed in interning order, matching the historical full-scan output.
        """
        roots = sorted(self._members, key=self._min_member.__getitem__)
        return [
            [self._terms[term_id] for term_id in sorted(self._members[root])]
            for root in roots
        ]

    def terms(self):
        """Return every interned term."""
        return list(self._terms)

    def has_term(self, path):
        """Return ``True`` when ``path`` is already interned (without interning it)."""
        return path in self._ids

    def __len__(self):
        return len(self._terms)


def _child_paths(path):
    """Return the immediate sub-paths of ``path`` (empty for leaves)."""
    if isinstance(path, Attr):
        return (path.base,)
    if isinstance(path, Lookup):
        return (path.dictionary, path.key)
    if isinstance(path, Dom):
        return (path.base,)
    return ()


def _op_key(path):
    """Return the function symbol of a non-leaf term."""
    if isinstance(path, Attr):
        return ("attr", path.name)
    if isinstance(path, Lookup):
        return ("lookup",)
    if isinstance(path, Dom):
        return ("dom",)
    if isinstance(path, Const):
        return ("const", path.value)
    raise TypeError(f"leaf term has no signature: {path!r}")
