"""Containment mappings, equivalence and (unconstrained) minimality.

For path-conjunctive queries without constraints, containment is decided by
containment mappings exactly as for relational conjunctive queries:
``Q1 is contained in Q2`` iff there is a homomorphism from ``Q2`` into ``Q1``
that also maps the output of ``Q2`` onto the output of ``Q1`` (modulo the
equalities of ``Q1``'s where clause).

Equivalence *under constraints* is the job of the chase
(:mod:`repro.chase.implication`); this module provides the constraint-free
primitives it builds on.
"""

from __future__ import annotations

from repro.lang.ast import substitute
from repro.cq.homomorphism import find_homomorphisms
from repro.trace import traced_stage


def outputs_match(source, target, mapping, target_closure=None):
    """Check that ``mapping`` sends the output of ``source`` onto that of ``target``.

    Both queries must expose the same set of output labels; for each label the
    image of the source path must equal the target path modulo the target's
    where clause.
    """
    closure = target_closure if target_closure is not None else target.congruence()
    source_fields = dict(source.output)
    target_fields = dict(target.output)
    if set(source_fields) != set(target_fields):
        return False
    for label, source_path in source_fields.items():
        image = substitute(source_path, mapping)
        if not closure.equal(image, target_fields[label]):
            return False
    return True


def find_containment_mapping(source, target):
    """Return a containment mapping from ``source`` into ``target``, or ``None``.

    A containment mapping is an (output-preserving) homomorphism; its
    existence proves ``target ⊆ source``.
    """
    closure = target.congruence()
    for mapping in find_homomorphisms(
        source.bindings, source.conditions, target, target_closure=closure
    ):
        if outputs_match(source, target, mapping, target_closure=closure):
            return mapping
    return None


@traced_stage("containment")
def has_containment_mapping(source, target, stats=None):
    """Return ``True`` when a containment mapping ``source`` → ``target`` exists.

    The boolean twin of :func:`find_containment_mapping`, with an optional
    :class:`~repro.cq.homomorphism.SearchStats` accumulator.  This is the
    single search the backchase equivalence test and the containment memo
    (:mod:`repro.cq.memo`) both bottom out in, so the memoised verdict is by
    construction the fresh verdict.
    """
    closure = target.congruence()
    for mapping in find_homomorphisms(
        source.bindings, source.conditions, target, target_closure=closure, stats=stats
    ):
        if outputs_match(source, target, mapping, target_closure=closure):
            return True
    return False


def is_contained_in(query, other):
    """Return ``True`` when ``query ⊆ other`` (no constraints)."""
    return find_containment_mapping(other, query) is not None


def is_equivalent(query, other):
    """Return ``True`` when the two queries are equivalent (no constraints)."""
    return is_contained_in(query, other) and is_contained_in(other, query)


def is_minimal(query):
    """Return ``True`` when no strict subquery of ``query`` is equivalent to it.

    This is plain tableau-style minimality (no constraints): for every
    binding, dropping it either loses the output or breaks equivalence.
    """
    variables = query.variable_set
    for var in variables:
        subquery = query.restrict_to(variables - {var})
        if subquery is None:
            continue
        if is_equivalent(subquery, query):
            return False
    return True


def minimize(query):
    """Return some minimal query equivalent to ``query`` (no constraints).

    Greedily removes bindings while equivalence is preserved; the result is a
    minimal equivalent subquery (unique up to isomorphism for conjunctive
    queries).
    """
    current = query
    changed = True
    while changed:
        changed = False
        for var in current.variables:
            subquery = current.restrict_to(current.variable_set - {var})
            if subquery is None:
                continue
            if is_equivalent(subquery, query):
                current = subquery
                changed = True
                break
    return current


__all__ = [
    "find_containment_mapping",
    "has_containment_mapping",
    "is_contained_in",
    "is_equivalent",
    "is_minimal",
    "minimize",
    "outputs_match",
]
