"""Memoised containment verdicts keyed by canonical query-pair signatures.

The backchase decides equivalence of a candidate subquery with the original
query through containment-mapping searches
(:func:`~repro.cq.containment.has_containment_mapping`).  Within one run each
lattice node is checked at most once, but a *serving* workload repeats whole
runs: the second request for a catalog re-derives exactly the containment
verdicts the first one already searched for.  PR 4's warm chase caches
removed the repeated chases; this module removes the repeated containment
searches.

:class:`ContainmentMemo` memoises the boolean verdict of
``has_containment_mapping(source, target)`` keyed by the pair of the two
queries' canonical signatures (:meth:`~repro.cq.query.PCQuery.signature` —
order-insensitive over bindings, normalised conditions and outputs, so any
two structurally identical queries share a key).  A verdict depends on
nothing but the two queries, so the memo is sound across requests, catalogs
and constraint sets; it is LRU-bounded like
:class:`~repro.chase.implication.ChaseCache`, thread-safe, picklable (for
the service's cache-persistence snapshots) and mergeable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.cq.containment import has_containment_mapping
from repro.trace import traced_stage


class ContainmentMemo:
    """LRU-bounded memo of containment-mapping verdicts.

    Parameters
    ----------
    max_entries:
        LRU bound (``None`` = unbounded, the single-call default).  Set it
        for long-lived deployments — the optimizer service bounds every
        session memo with its ``max_memo_entries`` knob.

    Attributes
    ----------
    hits / misses:
        Verdicts answered from the memo vs. computed by a fresh search.
    evictions:
        Entries dropped by the LRU bound (0 when unbounded).
    """

    def __init__(self, max_entries=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries!r}")
        self.max_entries = max_entries
        self._verdicts = OrderedDict()  # guarded-by: _lock
        #: Insertion log backing :meth:`snapshot` / :meth:`export_since` —
        #: same delta-export protocol as :class:`~repro.chase.implication.
        #: ChaseCache` (the fleet sync ships memo deltas, not whole memos).
        self._log = []  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def __getstate__(self):
        # Copy the verdict table under the lock: the memo is pickled live by
        # concurrent snapshots, and pickling an OrderedDict another thread is
        # inserting into raises "mutated during iteration".
        with self._lock:
            state = self.__dict__.copy()
            state["_verdicts"] = OrderedDict(self._verdicts)
            state["_log"] = list(self._log)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Memos pickled before the delta log existed (pre-fleet snapshots)
        # rebuild it from the live verdicts, so a marker-0 export still ships
        # everything the restored memo knows.
        self.__dict__.setdefault("_log", list(self._verdicts))
        self._lock = threading.Lock()

    @staticmethod
    def key(source, target):
        """The canonical pair signature a verdict is memoised under."""
        return (source.signature(), target.signature())

    @traced_stage("containment")
    def check(self, source, target, stats=None):
        """Return whether a containment mapping ``source`` → ``target`` exists.

        A hit returns the memoised verdict without searching (``stats`` is
        not touched — skipping the search effort is the point); a miss runs
        :func:`~repro.cq.containment.has_containment_mapping` and stores the
        verdict.  Thread-safe: lookup and store are taken under a lock, the
        search itself is not (two threads missing on the same pair may both
        search — idempotent, just duplicated work).
        """
        key = self.key(source, target)
        with self._lock:
            cached = self._verdicts.get(key)
            if cached is not None:
                self.hits += 1
                if self.max_entries is not None:
                    self._verdicts.move_to_end(key)
                return cached
        verdict = has_containment_mapping(source, target, stats=stats)
        with self._lock:
            self.misses += 1
            self._store(key, verdict)
        return verdict

    def lookup(self, source, target):
        """Return the memoised verdict for the pair, or ``None`` (no search)."""
        key = self.key(source, target)
        with self._lock:
            cached = self._verdicts.get(key)
            if cached is not None and self.max_entries is not None:
                self._verdicts.move_to_end(key)
            return cached

    def _store(self, key, verdict):  # holds: _lock
        if key not in self._verdicts:
            self._verdicts[key] = verdict
            self._log.append(key)
            while self.max_entries is not None and len(self._verdicts) > self.max_entries:
                self._verdicts.popitem(last=False)
                self.evictions += 1
            self._compact_log()
        elif self.max_entries is not None:
            self._verdicts.move_to_end(key)

    def _compact_log(self):  # holds: _lock
        # Mirrors ChaseCache._compact_log: under eviction churn the log is
        # rewritten to the live keys; a stale marker then under-reports,
        # which only costs the receiving replica a re-search (merges are
        # idempotent — verdicts are pure functions of the query pair).
        if self.max_entries is not None and len(self._log) > 4 * self.max_entries + 16:
            self._log = list(self._verdicts)

    def snapshot(self):
        """Return an opaque marker for :meth:`export_since`."""
        with self._lock:
            return len(self._log)

    def export_since(self, marker=0):
        """Return the verdicts stored after ``marker`` as ``[(key, verdict)]``.

        The fleet sync ships these between replicas; verdicts evicted since
        they were logged are skipped, and after a log compaction a stale
        marker may under-report — callers treat the export as best-effort
        warm-up, never ground truth.
        """
        with self._lock:
            return [
                (key, self._verdicts[key])
                for key in self._log[marker:]
                if key in self._verdicts
            ]

    def merge_exported(self, entries):
        """Fold a peer's :meth:`export_since` payload into this memo.

        Idempotent (a verdict already present is left alone); accounting is
        *not* transferred — hit/miss counters describe this process's
        traffic, and exchanged verdicts show up as future hits instead.
        """
        with self._lock:
            for key, verdict in entries:
                self._store(key, verdict)

    def merge(self, other):
        """Fold another memo's verdicts and accounting into this one."""
        with other._lock:
            entries = list(other._verdicts.items())
            hits, misses = other.hits, other.misses
        with self._lock:
            for key, verdict in entries:
                self._store(key, verdict)
            self.hits += hits
            self.misses += misses

    def reset_counters(self):
        """Zero the accounting (verdicts stay).  Used when a persisted memo
        is loaded into a fresh process, so stats describe the new life."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self):
        # Takes the lock: a bare len() can observe the OrderedDict mid-insert
        # from a concurrent _store.  Lock-held internals (and stats()) use
        # len(self._verdicts) directly, so this never self-deadlocks.
        with self._lock:
            return len(self._verdicts)

    @property
    def hit_rate(self):
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self):
        """Accounting snapshot (the service's shard stats aggregate these)."""
        with self._lock:
            return {
                "entries": len(self._verdicts),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


__all__ = ["ContainmentMemo"]
