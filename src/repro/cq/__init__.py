"""Path-conjunctive query core: internal form and reasoning primitives.

* :mod:`repro.cq.query` -- the internal path-conjunctive query representation
  used by the chase and backchase.
* :mod:`repro.cq.congruence` -- congruence closure over path terms, the fast
  equality-reasoning engine behind homomorphism checks and subquery
  restriction.
* :mod:`repro.cq.homomorphism` -- homomorphism search with the incremental
  equality pruning described in Section 3.1 of the paper.
* :mod:`repro.cq.containment` -- containment mappings, equivalence and
  minimality checks.
* :mod:`repro.cq.memo` -- memoised containment verdicts keyed by canonical
  query-pair signatures (the serving layer's cross-request reuse).
"""

from repro.cq.congruence import CongruenceClosure
from repro.cq.containment import (
    find_containment_mapping,
    has_containment_mapping,
    is_contained_in,
    is_equivalent,
    is_minimal,
)
from repro.cq.homomorphism import count_homomorphisms, find_homomorphism, find_homomorphisms
from repro.cq.memo import ContainmentMemo
from repro.cq.query import PCQuery

__all__ = [
    "CongruenceClosure",
    "ContainmentMemo",
    "PCQuery",
    "count_homomorphisms",
    "find_containment_mapping",
    "find_homomorphism",
    "find_homomorphisms",
    "has_containment_mapping",
    "is_contained_in",
    "is_equivalent",
    "is_minimal",
]
