"""The internal path-conjunctive query representation.

A :class:`PCQuery` is the canonical, immutable form on which the chase and
backchase operate.  It has the same three components as the surface
select-from-where form (output, bindings, conditions) but adds the reasoning
helpers the optimizer needs: congruence closure construction, variable
renaming, and restriction to a subset of bindings (the "subquery" notion of
the backchase and the "query fragment" notion of OQF).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.errors import QueryError
from repro.lang.ast import (
    Attr,
    Binding,
    Dom,
    Eq,
    Lookup,
    SelectFromWhere,
    Var,
    path_variables,
    schema_names,
    subpaths,
    substitute,
)
from repro.cq.congruence import CongruenceClosure
from repro.trace import traced_stage


@dataclass(frozen=True)
class PCQuery:
    """A path-conjunctive query: struct output, range bindings, equalities.

    Attributes
    ----------
    output:
        Tuple of ``(label, path)`` pairs.
    bindings:
        Tuple of :class:`~repro.lang.ast.Binding`; ranges may reference
        variables bound earlier in the tuple (dependent joins / navigation).
    conditions:
        Tuple of :class:`~repro.lang.ast.Eq`.
    """

    output: tuple
    bindings: tuple
    conditions: tuple

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, output, bindings, conditions=()):
        """Build a query from any iterables, normalising to tuples."""
        return cls(
            tuple((label, path) for label, path in output),
            tuple(bindings),
            tuple(conditions),
        )

    @classmethod
    def from_sfw(cls, sfw):
        """Convert a parsed :class:`~repro.lang.ast.SelectFromWhere`."""
        return cls(tuple(sfw.output), tuple(sfw.bindings), tuple(sfw.conditions))

    @classmethod
    def parse(cls, source):
        """Parse the OQL-like concrete syntax directly into a ``PCQuery``."""
        from repro.lang.parser import parse_query

        return cls.from_sfw(parse_query(source))

    def to_sfw(self):
        """Return the surface :class:`~repro.lang.ast.SelectFromWhere` form."""
        return SelectFromWhere(self.output, self.bindings, self.conditions)

    def __str__(self):
        from repro.lang.pretty import format_query

        return format_query(self)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self):
        """Return the tuple of bound variable names, in binding order."""
        return tuple(binding.var for binding in self.bindings)

    @property
    def variable_set(self):
        """Return the set of bound variable names."""
        return frozenset(binding.var for binding in self.bindings)

    def binding_for(self, var):
        """Return the binding of variable ``var``.

        Raises
        ------
        QueryError
            If ``var`` is not bound by this query.
        """
        for binding in self.bindings:
            if binding.var == var:
                return binding
        raise QueryError(f"variable {var!r} is not bound in this query")

    @property
    def output_labels(self):
        """Return the output labels, in order."""
        return tuple(label for label, _ in self.output)

    def output_path(self, label):
        """Return the path of output field ``label``."""
        for field_label, path in self.output:
            if field_label == label:
                return path
        raise QueryError(f"no output field labelled {label!r}")

    def collections_used(self):
        """Return the set of schema collection names scanned by this query."""
        names = set()
        for binding in self.bindings:
            names |= schema_names(binding.range)
        return names

    def size(self):
        """Return the number of bindings (the query size measure of the paper)."""
        return len(self.bindings)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self):
        """Check well-formedness; raise :class:`QueryError` on violations.

        * bound variable names are unique,
        * each range references only variables bound earlier,
        * conditions and outputs reference only bound variables.
        """
        seen = set()
        for binding in self.bindings:
            if binding.var in seen:
                raise QueryError(f"variable {binding.var!r} bound twice")
            unknown = path_variables(binding.range) - seen
            if unknown:
                raise QueryError(
                    f"range of {binding.var!r} references unbound variables {sorted(unknown)}"
                )
            seen.add(binding.var)
        for condition in self.conditions:
            unknown = (path_variables(condition.left) | path_variables(condition.right)) - seen
            if unknown:
                raise QueryError(f"condition {condition} references unbound variables {sorted(unknown)}")
        for label, path in self.output:
            unknown = path_variables(path) - seen
            if unknown:
                raise QueryError(f"output {label!r} references unbound variables {sorted(unknown)}")
        return self

    # ------------------------------------------------------------------ #
    # equality reasoning
    # ------------------------------------------------------------------ #
    def congruence(self):
        """Return a congruence closure of the where clause.

        All range paths, condition sides and output paths (plus their
        sub-paths) are interned so that callers can ask about any path that
        occurs in the query.  The result is cached per query value; callers
        must not assert new equalities on the shared instance (build a private
        :class:`CongruenceClosure` for that).
        """
        return _shared_congruence(self)

    def private_congruence(self, extra_equalities=()):
        """Return a fresh congruence closure, optionally with extra equalities."""
        closure = CongruenceClosure()
        for path in self.all_paths():
            closure.add_term(path)
        closure.add_equalities(self.conditions)
        closure.add_equalities(extra_equalities)
        return closure

    def saturated_congruence(self):
        """Return a congruence closure saturated with derived attribute paths.

        The plain closure only knows about paths that literally occur in the
        query, which makes the restriction of a subquery lossy: from
        ``t = r and r.N = x`` it cannot recover ``t.N = x`` once ``r`` is
        dropped, because ``t.N`` was never interned.  Saturation interns, for
        every variable congruent to the base of an interned attribute or
        lookup path, the corresponding derived path, so the projection keeps
        every equality the paper's canonical-database representation would
        keep.  Used by :meth:`restrict_to`; cached per query value.
        """
        return _shared_saturated_congruence(self)

    def all_paths(self):
        """Return every path occurring in the query (ranges, conditions, outputs)."""
        paths = []
        for binding in self.bindings:
            paths.append(Var(binding.var))
            paths.append(binding.range)
        for condition in self.conditions:
            paths.append(condition.left)
            paths.append(condition.right)
        for _, path in self.output:
            paths.append(path)
        return paths

    def implies_equality(self, left, right):
        """Return ``True`` when ``left = right`` follows from the where clause."""
        return self.congruence().equal(left, right)

    # ------------------------------------------------------------------ #
    # rewriting
    # ------------------------------------------------------------------ #
    def rename_variables(self, mapping):
        """Return the query with variables renamed according to ``mapping``.

        ``mapping`` maps old names to new names; unmapped names are kept.
        """
        path_mapping = {old: Var(new) for old, new in mapping.items()}
        bindings = tuple(
            Binding(mapping.get(binding.var, binding.var), substitute(binding.range, path_mapping))
            for binding in self.bindings
        )
        conditions = tuple(condition.substitute(path_mapping) for condition in self.conditions)
        output = tuple((label, substitute(path, path_mapping)) for label, path in self.output)
        return PCQuery(output, bindings, conditions)

    def freshen(self, taken, prefix=""):
        """Rename variables that collide with names in ``taken``.

        Returns the renamed query together with the mapping that was applied.
        """
        mapping = {}
        used = set(taken) | set(self.variables)
        for var in self.variables:
            if var in taken:
                fresh = fresh_name(f"{prefix}{var}", used)
                mapping[var] = fresh
                used.add(fresh)
        if not mapping:
            return self, {}
        return self.rename_variables(mapping), mapping

    def add(self, bindings=(), conditions=()):
        """Return the query extended with extra bindings and conditions."""
        return PCQuery(
            self.output,
            self.bindings + tuple(bindings),
            self.conditions + tuple(conditions),
        )

    def with_output(self, output):
        """Return the query with a different output clause."""
        return PCQuery(tuple(output), self.bindings, self.conditions)

    def with_conditions(self, conditions):
        """Return the query with a different where clause."""
        return PCQuery(self.output, self.bindings, tuple(conditions))

    # ------------------------------------------------------------------ #
    # restriction (subqueries and fragments)
    # ------------------------------------------------------------------ #
    @traced_stage("restrict")
    def restrict_to(self, keep_vars, extra_output=()):
        """Return the subquery induced by the bindings in ``keep_vars``.

        This implements the subquery notion of the backchase (and, with
        ``extra_output``, the fragment notion of Appendix B): the conditions
        are all equalities over surviving paths that follow from the closure
        of the where clause, and every output path is rewritten to an equal
        path over the surviving variables.

        Parameters
        ----------
        keep_vars:
            The set of binding variables to keep.
        extra_output:
            Extra ``(label, path)`` pairs that must also be preserved (used
            for fragment link paths).

        Returns
        -------
        PCQuery or None
            ``None`` when some output (or extra output) path cannot be
            rewritten over the surviving variables.
        """
        keep = frozenset(keep_vars)
        unknown = keep - self.variable_set
        if unknown:
            raise QueryError(f"cannot restrict to unbound variables {sorted(unknown)}")
        # Restrictions are memoised per *instance*: the backchase restricts
        # the same universal plan to thousands of variable subsets, and a
        # warm optimizer-service request repeats the very same restrictions
        # (the universal plan object is shared through the chase cache) —
        # profiling shows restriction construction dominating fully-warm
        # requests once chase and containment results are cached.  Storing
        # the table on the instance keeps its lifetime tied to the query
        # (evicted together with the chase-cache entry that holds it, so
        # the service's LRU bounds stay meaningful) and lets cache
        # persistence carry the restrictions across restarts for free.
        key = (keep, tuple(extra_output))
        table = self.__dict__.get("_restrictions")
        if table is None:
            table = {}
            object.__setattr__(self, "_restrictions", table)
        if key in table:
            return table[key]
        result = _build_restriction(self, keep, key[1])
        table[key] = result
        return result

    def __getstate__(self):
        # Copy the instance dict so pickling never iterates a restriction
        # table a concurrent request is still filling (snapshots are taken
        # at drain time, but a stray in-flight request must not corrupt
        # them), and so the memo travels with persisted universal plans.
        state = dict(self.__dict__)
        table = state.get("_restrictions")
        if table is not None:
            state["_restrictions"] = dict(table)
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # memoisation keys
    # ------------------------------------------------------------------ #
    def signature(self):
        """A hashable, order-insensitive key for caching chase results."""
        return (
            frozenset(self.bindings),
            frozenset(condition.normalized() for condition in self.conditions),
            frozenset(self.output),
        )


def fresh_name(base, taken):
    """Return a variable name based on ``base`` that does not occur in ``taken``."""
    if base not in taken:
        return base
    counter = 1
    while f"{base}_{counter}" in taken:
        counter += 1
    return f"{base}_{counter}"


def _rewrite_over(path, keep_vars, closure):
    """Rewrite ``path`` into an equal path using only variables in ``keep_vars``.

    Returns ``None`` when no equal surviving path exists.  The search first
    looks for an interned term in the same congruence class (this is how an
    output such as ``s11.B`` is redirected to a view field ``v1.B1``); when
    none survives, it falls back to rewriting the path structurally -- e.g.
    ``r.E`` survives the removal of ``r`` when some surviving ``t`` satisfies
    ``t = r``, by rebuilding the path as ``t.E``.
    """
    if path_variables(path) <= keep_vars:
        return path
    candidates = [
        term
        for term in closure.equivalent_terms(path)
        if path_variables(term) <= keep_vars
    ]
    if candidates:
        return min(candidates, key=lambda term: (len(str(term)), str(term)))
    if isinstance(path, Attr):
        base = _rewrite_over(path.base, keep_vars, closure)
        if base is not None:
            return Attr(base, path.name)
    elif isinstance(path, Lookup):
        dictionary = _rewrite_over(path.dictionary, keep_vars, closure)
        key = _rewrite_over(path.key, keep_vars, closure)
        if dictionary is not None and key is not None:
            return Lookup(dictionary, key)
    elif isinstance(path, Dom):
        base = _rewrite_over(path.base, keep_vars, closure)
        if base is not None:
            return Dom(base)
    return None


def _restricted_conditions(closure, keep_vars):
    """Project the closure of the where clause onto the surviving variables.

    For every congruence class, the surviving member terms are chained with
    equalities; this retains equalities that were only derivable through a
    removed variable (e.g. ``x = z`` from ``x = y and y = z`` when ``y`` is
    dropped).  Redundant equalities (those already implied by the ones kept
    so far, e.g. ``M[x] = M[y]`` next to ``x = y``) are filtered out so the
    resulting subquery stays readable and cheap to execute.
    """
    candidates = []
    for cls in closure.classes():
        survivors = [term for term in cls if path_variables(term) <= keep_vars]
        survivors = _dedupe(survivors)
        if len(survivors) < 2:
            continue
        survivors.sort(key=lambda term: (_composite_rank(term), len(str(term)), str(term)))
        anchor = survivors[0]
        for other in survivors[1:]:
            candidates.append(Eq(anchor, other).normalized())
    candidates = sorted(set(candidates), key=lambda eq: (_composite_rank(eq.left) + _composite_rank(eq.right), str(eq)))
    kept = []
    checker = CongruenceClosure()
    for condition in candidates:
        if checker.equal(condition.left, condition.right):
            continue
        checker.merge(condition.left, condition.right)
        kept.append(condition)
    return tuple(sorted(kept, key=str))


def _composite_rank(path):
    """Order paths so that variables and attributes are preferred as anchors."""
    if isinstance(path, Var):
        return 0
    if isinstance(path, (Attr,)):
        return 1
    return 2


def _dedupe(paths):
    seen = set()
    result = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            result.append(path)
    return result


def _build_restriction(query, keep, extra_output):
    """The uncached body of :meth:`PCQuery.restrict_to` (see its memo note)."""
    closure = query.saturated_congruence()
    bindings = tuple(binding for binding in query.bindings if binding.var in keep)
    for binding in bindings:
        if not path_variables(binding.range) <= keep:
            # A surviving binding navigates through a removed variable, so
            # the candidate is not a well-formed subquery.  (The backchase
            # only removes bindings; it never rewrites the ranges of the
            # remaining ones.)
            return None
    conditions = _restricted_conditions(closure, keep)
    output = []
    for label, path in tuple(query.output) + tuple(extra_output):
        rewritten = _rewrite_over(path, keep, closure)
        if rewritten is None:
            return None
        output.append((label, rewritten))
    return PCQuery(tuple(output), bindings, conditions)


@functools.lru_cache(maxsize=4096)
def _shared_congruence(query):
    closure = CongruenceClosure()
    for path in query.all_paths():
        for sub in subpaths(path):
            closure.add_term(sub)
    closure.add_equalities(query.conditions)
    return closure


@functools.lru_cache(maxsize=2048)
def _shared_saturated_congruence(query):
    closure = query.private_congruence()
    variables = [Var(var) for var in query.variables]
    for var in variables:
        closure.add_term(var)
    changed = True
    passes = 0
    while changed and passes < 5:
        changed = False
        passes += 1
        for term in list(closure.terms()):
            if isinstance(term, Attr):
                for var in variables:
                    derived = Attr(var, term.name)
                    if not closure.has_term(derived) and closure.equal(term.base, var):
                        closure.add_term(derived)
                        changed = True
            elif isinstance(term, Lookup):
                for var in variables:
                    derived = Lookup(term.dictionary, var)
                    if not closure.has_term(derived) and closure.equal(term.key, var):
                        closure.add_term(derived)
                        changed = True
    return closure


def query_from_text(source):
    """Convenience wrapper: parse and validate a query from concrete syntax."""
    return PCQuery.parse(source).validate()


__all__ = ["PCQuery", "fresh_name", "query_from_text"]
