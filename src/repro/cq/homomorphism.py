"""Homomorphism search with incremental equality pruning and indexed lookup.

A homomorphism from a source (a query, or the universal part of a
dependency) into a target query is a mapping from source variables to target
variables such that

1. the image of every source range equals the range of the target variable
   it is mapped to (equality modulo the target's where clause), and
2. the image of every source equality follows from the target's where clause.

Finding one is NP-complete in the number of source variables, which stays
small in practice (constraints have at most a handful of universally
quantified variables).  Following Section 3.1 of the paper, the search is a
backtracking enumeration that prunes a partial variable mapping as soon as a
fully-instantiated source condition fails in the target's congruence closure,
rather than building complete mappings and checking them in one step.

Candidate lookup is *indexed*: instead of scanning every target binding and
asking the closure whether its range equals the image of the source range
(one closure query per target binding per search node), a
:class:`BindingIndex` buckets the target bindings by the congruence root of
their range.  Matching a source binding is then one ``root_of`` query plus a
dictionary probe, and only bindings that actually match are enumerated.  The
closure is mutable (searches intern image terms, which can merge classes), so
the index stores the closure generation it was built at and rebuilds itself
lazily when the class structure changed — see
:attr:`repro.cq.congruence.CongruenceClosure.generation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Var, path_variables, substitute


@dataclass
class SearchStats:
    """Effort counters for one or more homomorphism searches.

    Attributes
    ----------
    closure_queries:
        Congruence-closure queries issued (``equal`` and ``root_of`` calls).
    candidates_tried:
        Target bindings considered as the image of a source binding.
    conditions_checked:
        Source conditions verified against the target closure.
    chunk_policy:
        How the searches were split across workers, when they were (set by
        the wave-parallel backchase: ``"inline"``, ``"size-ordered"``, ...).
        Empty for plain sequential searches.
    """

    closure_queries: int = 0
    candidates_tried: int = 0
    conditions_checked: int = 0
    chunk_policy: str = ""

    def add(self, other):
        """Accumulate another stats object into this one."""
        self.closure_queries += other.closure_queries
        self.candidates_tried += other.candidates_tried
        self.conditions_checked += other.conditions_checked
        if other.chunk_policy and not self.chunk_policy:
            self.chunk_policy = other.chunk_policy


class BindingIndex:
    """Candidate index over a target query's bindings.

    Buckets the target bindings by the congruence root of their range, so the
    search finds every binding whose range equals a given path (modulo the
    target's where clause) with a single ``root_of`` query instead of a scan.
    A by-name map answers the pre-assigned-variable lookup of
    ``_range_matches`` in O(1).

    The index tracks the closure generation it was built at; any union in the
    closure (searches intern new terms, the chase asserts new equalities)
    invalidates the root keys and triggers a lazy rebuild, which only re-finds
    the root of each binding range (the ranges themselves are already
    interned, so a rebuild can never cause further unions).
    """

    def __init__(self, bindings, closure):
        self.bindings = list(bindings)
        self.closure = closure
        self._by_var = {binding.var: binding for binding in self.bindings}
        self._positions = {binding.var: i for i, binding in enumerate(self.bindings)}
        self._by_range_root = {}
        self._generation = None
        self._union_mark = 0

    def covers(self, bindings):
        """Return ``True`` when the index is built over exactly ``bindings``."""
        return len(self.bindings) == len(bindings) and all(
            mine == theirs for mine, theirs in zip(self.bindings, bindings)
        )

    def _rebuild(self, stats=None):
        by_root = {}
        for binding in self.bindings:
            if stats is not None:
                stats.closure_queries += 1
            root = self.closure.root_of(binding.range)
            by_root.setdefault(root, []).append(binding)
        self._by_range_root = by_root
        self._generation = self.closure.generation
        self._union_mark = self.closure.union_count

    def _sync(self, stats=None):
        """Repair the buckets after closure unions, with dictionary moves only.

        Entries keyed by an absorbed root belong to the surviving root of the
        same union; replaying the union log in order also covers cascaded
        absorptions.  Merged buckets are re-sorted by binding position so the
        candidate enumeration order stays identical to a scan of the target
        bindings (the chase relies on this for deterministic step order).
        """
        if self._generation == self.closure.generation:
            return
        if self._generation is None:
            self._rebuild(stats)
            return
        merged_keys = []
        for surviving, absorbed in self.closure.union_pairs_since(self._union_mark):
            moved = self._by_range_root.pop(absorbed, None)
            if moved is not None:
                self._by_range_root.setdefault(surviving, []).extend(moved)
                merged_keys.append(surviving)
        for key in merged_keys:
            bucket = self._by_range_root.get(key)
            if bucket is not None and len(bucket) > 1:
                bucket.sort(key=lambda binding: self._positions[binding.var])
        self._generation = self.closure.generation
        self._union_mark = self.closure.union_count

    def add_binding(self, binding, stats=None):
        """Register a binding appended to the target (incremental chase)."""
        self.bindings.append(binding)
        self._by_var[binding.var] = binding
        self._positions[binding.var] = len(self.bindings) - 1
        if self._generation is None:
            return
        if stats is not None:
            stats.closure_queries += 1
        root = self.closure.root_of(binding.range)
        self._sync(stats)
        self._by_range_root.setdefault(root, []).append(binding)

    def candidates(self, image_range, stats=None):
        """Return the target bindings whose range equals ``image_range``.

        The result is a snapshot: the live buckets may be repaired by a later
        ``_sync`` while a caller is still iterating (the backtracking search
        holds suspended generators), so the mutable list is never exposed.
        """
        if stats is not None:
            stats.closure_queries += 1
        root = self.closure.root_of(image_range)
        self._sync(stats)
        return tuple(self._by_range_root.get(root, ()))

    def binding_named(self, name):
        """Return the target binding of variable ``name`` (or ``None``)."""
        return self._by_var.get(name)


def _index_for(target, closure):
    """Return the candidate index for ``target`` cached on ``closure``.

    Each closure serves one target query (the shared per-query closure, or a
    chase's evolving closure which manages its index explicitly), so a single
    cached slot suffices; it is re-validated against the binding tuple in
    case two structurally-equal queries share the closure.

    The index is built eagerly and uncounted here, mirroring the shared
    congruence closure itself: both are process-wide caches whose one-time
    construction is amortised over every later search, so charging it to
    whichever caller happens to arrive first would make the per-search
    counters depend on cache warm-up order.  (The incremental chase owns its
    index and *does* charge its build and maintenance to its own counters.)
    """
    index = closure.binding_index
    if index is None or not index.covers(target.bindings):
        index = BindingIndex(target.bindings, closure)
        index._rebuild()
        closure.binding_index = index
    return index


def find_homomorphisms(
    source_bindings,
    source_conditions,
    target,
    target_closure=None,
    initial=None,
    injective=False,
    prune_early=True,
    target_index=None,
    stats=None,
    use_index=True,
):
    """Yield every homomorphism from the source into ``target``.

    Parameters
    ----------
    source_bindings:
        Iterable of :class:`~repro.lang.ast.Binding` -- the source prefix, in
        an order where ranges only reference earlier variables.
    source_conditions:
        Iterable of :class:`~repro.lang.ast.Eq` -- the source conditions.
    target:
        The target :class:`~repro.cq.query.PCQuery`.
    target_closure:
        Optional pre-built congruence closure of the target (defaults to the
        target's shared closure).
    initial:
        Optional partial mapping ``{source var name: Path}`` to extend.
    injective:
        When ``True``, two distinct source variables may not map to the same
        target variable (used by the OCS interaction test).
    prune_early:
        When ``True`` (the default), source conditions are checked as soon as
        all their variables are mapped; disabling this reproduces the naive
        generate-and-test search for the ablation benchmark.
    target_index:
        Optional pre-built :class:`BindingIndex` over the target (the
        incremental chase maintains one across steps).
    stats:
        Optional :class:`SearchStats` accumulating search effort.
    use_index:
        When ``False``, candidate lookup scans every target binding with one
        closure query each (the pre-index behaviour, kept for the ablation
        benchmark).

    Yields
    ------
    dict
        Mappings from source variable names to :class:`~repro.lang.ast.Var`
        paths over the target.
    """
    bindings = list(source_bindings)
    conditions = list(source_conditions)
    closure = target_closure if target_closure is not None else target.congruence()
    mapping = dict(initial) if initial else {}

    # Conditions indexed by the position of the last source binding they need,
    # so each is checked exactly once, as early as possible.
    condition_schedule = _schedule_conditions(bindings, conditions, mapping)

    target_bindings = list(target.bindings)
    if use_index:
        index = target_index if target_index is not None else _index_for(target, closure)
    else:
        index = None

    # Multiset of target variable names already used as images, so the
    # injective check is a set probe instead of a scan over the mapping.
    used_names = {}
    for value in mapping.values():
        if isinstance(value, Var):
            used_names[value.name] = used_names.get(value.name, 0) + 1

    def candidate_bindings(image_range):
        if index is not None:
            return index.candidates(image_range, stats)
        matches = []
        for target_binding in target_bindings:
            if stats is not None:
                stats.closure_queries += 1
            if closure.equal(image_range, target_binding.range):
                matches.append(target_binding)
        return matches

    def extend(position):
        if position == len(bindings):
            yield dict(mapping)
            return
        source_binding = bindings[position]
        if source_binding.var in mapping:
            # Pre-assigned by the initial mapping: only verify the range.
            image_range = substitute(source_binding.range, mapping)
            assigned = mapping[source_binding.var]
            if _range_matches(assigned, image_range, index, target_bindings, closure, stats):
                if _conditions_hold(condition_schedule[position], mapping, closure, prune_early, stats):
                    yield from extend(position + 1)
            return
        image_range = substitute(source_binding.range, mapping)
        for target_binding in candidate_bindings(image_range):
            if injective and used_names.get(target_binding.var):
                continue
            if stats is not None:
                stats.candidates_tried += 1
            mapping[source_binding.var] = Var(target_binding.var)
            used_names[target_binding.var] = used_names.get(target_binding.var, 0) + 1
            if _conditions_hold(condition_schedule[position], mapping, closure, prune_early, stats):
                yield from extend(position + 1)
            del mapping[source_binding.var]
            remaining = used_names[target_binding.var] - 1
            if remaining:
                used_names[target_binding.var] = remaining
            else:
                del used_names[target_binding.var]

    # With no source bindings the search never visits a position, so the
    # conditions whose variables are all pre-assigned (schedule slot 0) are
    # checked here; otherwise an invalid initial mapping would be yielded.
    if not bindings:
        for condition in condition_schedule.preassigned():
            if stats is not None:
                stats.closure_queries += 1
                stats.conditions_checked += 1
            image = condition.substitute(mapping)
            if not closure.equal(image.left, image.right):
                return
        yield dict(mapping)
        return

    # When pruning is disabled all conditions are checked at the end.
    if not prune_early:
        final_conditions = conditions

        def check_all(candidate):
            for condition in final_conditions:
                if stats is not None:
                    stats.closure_queries += 1
                    stats.conditions_checked += 1
                image = condition.substitute(candidate)
                if not closure.equal(image.left, image.right):
                    return False
            return True

        for candidate in extend(0):
            if check_all(candidate):
                yield candidate
        return

    yield from extend(0)


def find_homomorphism(source_bindings, source_conditions, target, **kwargs):
    """Return the first homomorphism found, or ``None``."""
    for mapping in find_homomorphisms(source_bindings, source_conditions, target, **kwargs):
        return mapping
    return None


def count_homomorphisms(source_bindings, source_conditions, target, **kwargs):
    """Return the number of homomorphisms (useful in tests and benchmarks)."""
    return sum(1 for _ in find_homomorphisms(source_bindings, source_conditions, target, **kwargs))


def query_homomorphisms(source, target, **kwargs):
    """Yield homomorphisms from query ``source`` into query ``target``.

    Output clauses are ignored, exactly as in the paper's definition; use
    :mod:`repro.cq.containment` for output-preserving (containment) mappings.
    """
    yield from find_homomorphisms(source.bindings, source.conditions, target, **kwargs)


def _schedule_conditions(bindings, conditions, initial_mapping):
    """Assign each condition to the earliest binding position where it is checkable."""
    positions = {binding.var: index for index, binding in enumerate(bindings)}
    schedule = [[] for _ in range(len(bindings) + 1)]
    pre_assigned = set(initial_mapping or ())
    for condition in conditions:
        variables = path_variables(condition.left) | path_variables(condition.right)
        needed = [positions[var] for var in variables if var in positions and var not in pre_assigned]
        slot = (max(needed) + 1) if needed else 0
        schedule[min(slot, len(bindings))].append(condition)
    # Conditions whose variables are all pre-assigned (or constant) are checked
    # before the search starts, via slot 0 of the first extension call; to keep
    # the generator simple they are attached to position 0's check as well.
    return _CumulativeSchedule(schedule)


class _CumulativeSchedule:
    """Lookup of the conditions to (re)check right after assigning position ``i``.

    Position ``i`` in the schedule list holds the conditions that become fully
    instantiated once binding ``i - 1`` is assigned; the conditions at slot 0
    are checkable immediately and are validated when the first binding is
    processed.
    """

    def __init__(self, slots):
        self._slots = slots

    def __getitem__(self, position):
        checks = list(self._slots[position + 1]) if position + 1 < len(self._slots) else []
        if position == 0:
            checks = list(self._slots[0]) + checks
        return checks

    def preassigned(self):
        """The conditions checkable before any binding is assigned (slot 0)."""
        return list(self._slots[0])


def _conditions_hold(conditions, mapping, closure, prune_early, stats=None):
    if not prune_early:
        return True
    for condition in conditions:
        if stats is not None:
            stats.closure_queries += 1
            stats.conditions_checked += 1
        image = condition.substitute(mapping)
        if not closure.equal(image.left, image.right):
            return False
    return True


def _range_matches(assigned, image_range, index, target_bindings, closure, stats=None):
    """Check that a pre-assigned variable maps onto a binding with the right range."""
    if not isinstance(assigned, Var):
        return False
    if index is not None:
        target_binding = index.binding_named(assigned.name)
    else:
        target_binding = None
        for candidate in target_bindings:
            if candidate.var == assigned.name:
                target_binding = candidate
                break
    if target_binding is None:
        return False
    if stats is not None:
        stats.closure_queries += 1
    return closure.equal(image_range, target_binding.range)


__all__ = [
    "BindingIndex",
    "SearchStats",
    "count_homomorphisms",
    "find_homomorphism",
    "find_homomorphisms",
    "query_homomorphisms",
]
