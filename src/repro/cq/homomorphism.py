"""Homomorphism search with incremental equality pruning.

A homomorphism from a source (a query, or the universal part of a
dependency) into a target query is a mapping from source variables to target
variables such that

1. the image of every source range equals the range of the target variable
   it is mapped to (equality modulo the target's where clause), and
2. the image of every source equality follows from the target's where clause.

Finding one is NP-complete in the number of source variables, which stays
small in practice (constraints have at most a handful of universally
quantified variables).  Following Section 3.1 of the paper, the search is a
backtracking enumeration that prunes a partial variable mapping as soon as a
fully-instantiated source condition fails in the target's congruence closure,
rather than building complete mappings and checking them in one step.
"""

from __future__ import annotations

from repro.lang.ast import Var, path_variables, substitute


def find_homomorphisms(
    source_bindings,
    source_conditions,
    target,
    target_closure=None,
    initial=None,
    injective=False,
    prune_early=True,
):
    """Yield every homomorphism from the source into ``target``.

    Parameters
    ----------
    source_bindings:
        Iterable of :class:`~repro.lang.ast.Binding` -- the source prefix, in
        an order where ranges only reference earlier variables.
    source_conditions:
        Iterable of :class:`~repro.lang.ast.Eq` -- the source conditions.
    target:
        The target :class:`~repro.cq.query.PCQuery`.
    target_closure:
        Optional pre-built congruence closure of the target (defaults to the
        target's shared closure).
    initial:
        Optional partial mapping ``{source var name: Path}`` to extend.
    injective:
        When ``True``, two distinct source variables may not map to the same
        target variable (used by the OCS interaction test).
    prune_early:
        When ``True`` (the default), source conditions are checked as soon as
        all their variables are mapped; disabling this reproduces the naive
        generate-and-test search for the ablation benchmark.

    Yields
    ------
    dict
        Mappings from source variable names to :class:`~repro.lang.ast.Var`
        paths over the target.
    """
    bindings = list(source_bindings)
    conditions = list(source_conditions)
    closure = target_closure if target_closure is not None else target.congruence()
    mapping = dict(initial) if initial else {}

    # Conditions indexed by the position of the last source binding they need,
    # so each is checked exactly once, as early as possible.
    condition_schedule = _schedule_conditions(bindings, conditions, mapping)

    target_bindings = list(target.bindings)

    def extend(position):
        if position == len(bindings):
            yield dict(mapping)
            return
        source_binding = bindings[position]
        if source_binding.var in mapping:
            # Pre-assigned by the initial mapping: only verify the range.
            image_range = substitute(source_binding.range, mapping)
            assigned = mapping[source_binding.var]
            if _range_matches(assigned, image_range, target_bindings, closure):
                if _conditions_hold(condition_schedule[position], mapping, closure, prune_early):
                    yield from extend(position + 1)
            return
        image_range = substitute(source_binding.range, mapping)
        for target_binding in target_bindings:
            if injective and any(
                value == Var(target_binding.var) for value in mapping.values()
            ):
                continue
            if not closure.equal(image_range, target_binding.range):
                continue
            mapping[source_binding.var] = Var(target_binding.var)
            if _conditions_hold(condition_schedule[position], mapping, closure, prune_early):
                yield from extend(position + 1)
            del mapping[source_binding.var]

    # When pruning is disabled all conditions are checked at the end.
    if not prune_early:
        final_conditions = conditions

        def check_all(candidate):
            for condition in final_conditions:
                image = condition.substitute(candidate)
                if not closure.equal(image.left, image.right):
                    return False
            return True

        for candidate in extend(0):
            if check_all(candidate):
                yield candidate
        return

    yield from extend(0)


def find_homomorphism(source_bindings, source_conditions, target, **kwargs):
    """Return the first homomorphism found, or ``None``."""
    for mapping in find_homomorphisms(source_bindings, source_conditions, target, **kwargs):
        return mapping
    return None


def count_homomorphisms(source_bindings, source_conditions, target, **kwargs):
    """Return the number of homomorphisms (useful in tests and benchmarks)."""
    return sum(1 for _ in find_homomorphisms(source_bindings, source_conditions, target, **kwargs))


def query_homomorphisms(source, target, **kwargs):
    """Yield homomorphisms from query ``source`` into query ``target``.

    Output clauses are ignored, exactly as in the paper's definition; use
    :mod:`repro.cq.containment` for output-preserving (containment) mappings.
    """
    yield from find_homomorphisms(source.bindings, source.conditions, target, **kwargs)


def _schedule_conditions(bindings, conditions, initial_mapping):
    """Assign each condition to the earliest binding position where it is checkable."""
    positions = {binding.var: index for index, binding in enumerate(bindings)}
    schedule = [[] for _ in range(len(bindings) + 1)]
    pre_assigned = set(initial_mapping or ())
    for condition in conditions:
        variables = path_variables(condition.left) | path_variables(condition.right)
        needed = [positions[var] for var in variables if var in positions and var not in pre_assigned]
        slot = (max(needed) + 1) if needed else 0
        schedule[min(slot, len(bindings))].append(condition)
    # Conditions whose variables are all pre-assigned (or constant) are checked
    # before the search starts, via slot 0 of the first extension call; to keep
    # the generator simple they are attached to position 0's check as well.
    return _CumulativeSchedule(schedule)


class _CumulativeSchedule:
    """Lookup of the conditions to (re)check right after assigning position ``i``.

    Position ``i`` in the schedule list holds the conditions that become fully
    instantiated once binding ``i - 1`` is assigned; the conditions at slot 0
    are checkable immediately and are validated when the first binding is
    processed.
    """

    def __init__(self, slots):
        self._slots = slots

    def __getitem__(self, position):
        checks = list(self._slots[position + 1]) if position + 1 < len(self._slots) else []
        if position == 0:
            checks = list(self._slots[0]) + checks
        return checks


def _conditions_hold(conditions, mapping, closure, prune_early):
    if not prune_early:
        return True
    for condition in conditions:
        image = condition.substitute(mapping)
        if not closure.equal(image.left, image.right):
            return False
    return True


def _range_matches(assigned, image_range, target_bindings, closure):
    """Check that a pre-assigned variable maps onto a binding with the right range."""
    if not isinstance(assigned, Var):
        return False
    for target_binding in target_bindings:
        if target_binding.var == assigned.name:
            return closure.equal(image_range, target_binding.range)
    return False


__all__ = [
    "count_homomorphisms",
    "find_homomorphism",
    "find_homomorphisms",
    "query_homomorphisms",
]
