"""Phase 1 of the whole-program analysis: the :class:`ProjectModel`.

PR 7's checkers were per-file passes that shared only a bag of bare names.
This module builds the cross-module view the project-scope rules need:

* a **module graph** — every analyzed file gets a dotted module name
  (derived from ``__init__.py`` packaging, so ``src/repro/service/shard.py``
  is ``repro.service.shard``) and its imports are resolved back to analyzed
  modules where possible;
* a **symbol table** with import/alias resolution — ``from repro.chase
  import chase as _chase`` maps the local name ``_chase`` to the original
  ``chase``, which is how the deadline rule stops being alias-blind;
* an approximate **call graph** — each function's call sites are resolved
  to project functions with an explicit confidence: *exact* (self-methods,
  locals, import aliases, attributes whose class is inferable from
  ``self.x = ClassName(...)``) or *unique-bare* (one project-wide match on
  an uncommon name).  Names on the :data:`AMBIGUOUS_NAMES` blocklist never
  resolve by bare name, so ``.close()``/``.get()`` cannot fabricate edges.

Checkers consume the model through small query methods
(:meth:`ProjectModel.callees`, :meth:`ProjectModel.reaches_deadline`,
:meth:`ProjectModel.class_locks`, ...); nothing here emits findings.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.source import call_name, is_self_attribute

#: Call/method names too common to resolve by bare name across the project:
#: a bare-name edge through any of these would mostly be a stdlib call.
AMBIGUOUS_NAMES = frozenset(
    {
        "acquire", "add", "all", "any", "append", "appendleft", "cancel",
        "clear", "close", "compile", "copy", "count", "debug", "decode",
        "discard", "done", "dump", "dumps", "encode", "endswith", "error",
        "exception", "exists", "extend", "filter", "flush", "format",
        "fullmatch", "get", "group", "index", "info", "insert", "is_set",
        "items", "join", "keys", "kill", "len", "load", "loads", "lower",
        "lstrip", "main", "map", "match", "max", "min", "mkdir", "monotonic",
        "name", "next", "open", "pop", "popleft", "print", "put", "read",
        "readline", "recv", "release", "remove", "replace", "result",
        "reverse", "rsplit", "rstrip", "run", "search", "send", "sendall",
        "set", "setdefault", "shutdown", "sleep", "sort", "sorted", "split",
        "start", "startswith", "stat", "stop", "strip", "submit", "sum",
        "terminate", "time", "update", "upper", "values", "wait", "warning",
        "write",
    }
)

LOCK_FACTORIES = {"Lock": "Lock", "RLock": "RLock"}


def module_name_for(path):
    """Dotted module name for a file, honouring ``__init__.py`` packaging.

    ``src/repro/service/shard.py`` → ``repro.service.shard``; a loose file
    (fixture corpora have no ``__init__.py``) is just its stem.
    """
    path = Path(str(path))
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


class FunctionInfo:
    """One function/method plus its place in the project."""

    __slots__ = (
        "module", "node", "name", "qualname", "classdef", "class_name",
        "accepts_deadline", "calls",
    )

    def __init__(self, module, node, qualname, classdef):
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.classdef = classdef
        self.class_name = classdef.name if classdef is not None else None
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        self.accepts_deadline = "deadline" in names
        self.calls = []  # CallSite list, filled by ProjectModel

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class CallSite:
    """One call expression resolved against the project."""

    __slots__ = ("node", "targets", "confident")

    def __init__(self, node, targets, confident):
        self.node = node
        self.targets = tuple(targets)
        self.confident = confident


def own_nodes(node):
    """Nodes lexically inside ``node``, excluding nested defs/classes/lambdas.

    Code in a nested ``def`` (or lambda) runs later, on someone else's
    stack; its calls and lock acquisitions belong to the nested function,
    not to the enclosing one.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


class ProjectModel:
    """Cross-module facts shared by all checkers for one analysis run."""

    def __init__(self, modules):
        self.modules = list(modules)
        self.by_path = {m.path: m for m in self.modules}
        self.names = {id(m): module_name_for(m.path) for m in self.modules}
        self.by_name = {self.names[id(m)]: m for m in self.modules}

        #: module -> {local alias: (source module name, original name | None)}
        #: ``None`` original means the alias binds the module itself.
        self.imports = {id(m): self._scan_imports(m) for m in self.modules}

        #: (module name, class name) -> ClassDef
        self.classes = {}
        for module in self.modules:
            for classdef in module.classes():
                self.classes[(self.names[id(module)], classdef.name)] = (
                    module,
                    classdef,
                )

        self.functions = []
        self._info_by_node = {}
        self._bare_functions = {}  # bare name -> [FunctionInfo]
        for module in self.modules:
            self._scan_functions(module)

        #: bare names of functions/methods that accept a ``deadline`` param
        #: (the PR 7 per-file contract; the interprocedural rule goes
        #: through :meth:`reaches_deadline` instead).
        self.deadline_callables = {
            info.name for info in self.functions if info.accepts_deadline
        }

        #: (module name, class name) -> {attr: ClassDef key} inferred from
        #: ``self.x = ClassName(...)`` assignments.
        self._attr_types = {}
        #: (module name, class name) -> {attr: "Lock" | "RLock"}
        self._class_locks = {}
        for key, (module, classdef) in self.classes.items():
            self._scan_class(key, module, classdef)

        for info in self.functions:
            info.calls = self._resolve_calls(info)

        self._reaches_deadline = {}

    # ------------------------------------------------------------------ #
    # symbol table
    # ------------------------------------------------------------------ #
    @staticmethod
    def _scan_imports(module):
        table = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    source = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = (source, None)
            elif isinstance(node, ast.ImportFrom):
                source = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (source, alias.name)
        return table

    def module_name(self, module):
        return self.names[id(module)]

    def resolve_module(self, name, importer=None):
        """Analyzed module for a dotted import name (suffix match allowed)."""
        if name.startswith("."):
            if importer is None:
                return None
            base = self.module_name(importer).split(".")
            level = len(name) - len(name.lstrip("."))
            base = base[:-level] if level <= len(base) else []
            name = ".".join(base + ([name.lstrip(".")] if name.lstrip(".") else []))
        if name in self.by_name:
            return self.by_name[name]
        suffix = "." + name
        matches = [m for n, m in self.by_name.items() if n.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def alias_target(self, module, name):
        """Original bare name behind an import alias, or None.

        ``from repro.chase import chase as _chase`` → ``alias_target(m,
        "_chase") == "chase"`` — the hook the deadline rule uses to stop
        being alias-blind.
        """
        entry = self.imports[id(module)].get(name)
        if entry is None:
            return None
        return entry[1]

    # ------------------------------------------------------------------ #
    # functions & classes
    # ------------------------------------------------------------------ #
    def _scan_functions(self, module):
        modname = self.names[id(module)]
        for func in module.functions():
            chain, node = [func.name], func
            while True:
                parent = module.parent(node)
                if parent is None or isinstance(parent, ast.Module):
                    break
                if isinstance(
                    parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    chain.append(parent.name)
                node = parent
            # the *immediate* enclosing class only counts when the def is a
            # direct child of the class body (a real method).
            direct_parent = module.parent(func)
            classdef = direct_parent if isinstance(direct_parent, ast.ClassDef) else None
            qual = ".".join(reversed(chain))
            info = FunctionInfo(module, func, f"{modname}:{qual}", classdef)
            self.functions.append(info)
            self._info_by_node[func] = info
            self._bare_functions.setdefault(func.name, []).append(info)

    def info_for(self, node):
        return self._info_by_node.get(node)

    def functions_of(self, module):
        return [info for info in self.functions if info.module is module]

    def methods_of(self, classdef):
        return {
            info.name: info
            for info in self.functions
            if info.classdef is classdef
        }

    def resolve_class(self, module, name):
        """(module, ClassDef) for a class name visible in ``module``."""
        key = (self.module_name(module), name)
        if key in self.classes:
            return self.classes[key]
        entry = self.imports[id(module)].get(name)
        if entry is not None and entry[1] is not None:
            source = self.resolve_module(entry[0], importer=module)
            if source is not None:
                key = (self.module_name(source), entry[1])
                if key in self.classes:
                    return self.classes[key]
        return None

    def _scan_class(self, key, module, classdef):
        from repro.analysis.checker import class_nodes

        locks, attr_types = {}, {}
        for node in class_nodes(classdef):
            if not isinstance(node, ast.Assign):
                continue
            name = call_name(node.value)
            for target in node.targets:
                if not is_self_attribute(target):
                    continue
                if name in LOCK_FACTORIES:
                    locks[target.attr] = LOCK_FACTORIES[name]
                elif name is not None:
                    resolved = self.resolve_class(module, name)
                    if resolved is not None:
                        attr_types[target.attr] = (
                            self.module_name(resolved[0]),
                            resolved[1].name,
                        )
        self._class_locks[key] = locks
        self._attr_types[key] = attr_types

    def class_locks(self, module, classdef):
        """``{attr: "Lock" | "RLock"}`` for locks the class owns."""
        return self._class_locks.get(
            (self.module_name(module), classdef.name), {}
        )

    def module_locks(self, module):
        """Module-level ``name = threading.Lock()`` bindings."""
        locks = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                name = call_name(node.value)
                if name in LOCK_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            locks[target.id] = LOCK_FACTORIES[name]
        return locks

    def lock_id(self, module, classdef, attr):
        """Stable display id for a lock: ``Class.attr`` qualified by module."""
        if classdef is not None:
            return f"{self.module_name(module)}:{classdef.name}.{attr}"
        return f"{self.module_name(module)}:{attr}"

    # ------------------------------------------------------------------ #
    # call graph
    # ------------------------------------------------------------------ #
    def _resolve_calls(self, info):
        sites = []
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                targets, confident = self._resolve_call(info, node)
                sites.append(CallSite(node, targets, confident))
        return sites

    def _resolve_call(self, info, call):
        func = call.func
        module = info.module
        # f(...) — local/module function, import alias, else unique bare.
        if isinstance(func, ast.Name):
            name = func.id
            local = self._local_function(module, name)
            if local is not None:
                return [local], True
            original = self.alias_target(module, name)
            if original is not None:
                entry = self.imports[id(module)][name]
                source = self.resolve_module(entry[0], importer=module)
                if source is not None:
                    target = self._local_function(source, original)
                    if target is not None:
                        return [target], True
                return self._bare(original)
            return self._bare(name)
        if not isinstance(func, ast.Attribute):
            return [], False
        attr = func.attr
        # self.m(...) — method on the enclosing class.
        if is_self_attribute(func) and info.classdef is not None:
            method = self.methods_of(info.classdef).get(attr)
            if method is not None:
                return [method], True
            return self._bare(attr)
        # mod.f(...) — imported module attribute.
        if isinstance(func.value, ast.Name):
            entry = self.imports[id(module)].get(func.value.id)
            if entry is not None and entry[1] is None:
                source = self.resolve_module(entry[0], importer=module)
                if source is not None:
                    target = self._local_function(source, attr)
                    if target is not None:
                        return [target], True
        # self.x.m(...) — inferred attribute type from self.x = ClassName().
        if is_self_attribute(func.value) and info.classdef is not None:
            key = (self.module_name(module), info.classdef.name)
            typed = self._attr_types.get(key, {}).get(func.value.attr)
            if typed is not None and typed in self.classes:
                _, target_class = self.classes[typed]
                method = self.methods_of(target_class).get(attr)
                if method is not None:
                    return [method], True
        return self._bare(attr)

    def _local_function(self, module, name):
        for info in self.functions:
            if (
                info.module is module
                and info.name == name
                and info.classdef is None
            ):
                return info
        return None

    def _bare(self, name):
        """Unique project-wide bare-name match, gated by the blocklist."""
        if name in AMBIGUOUS_NAMES or name.startswith("__"):
            return [], False
        matches = self._bare_functions.get(name, [])
        if len(matches) == 1:
            return matches, True
        return matches, False

    def callees(self, info, confident_only=True):
        """Resolved (call node, FunctionInfo) pairs for a function."""
        pairs = []
        for site in info.calls:
            if confident_only and not site.confident:
                continue
            for target in site.targets:
                pairs.append((site.node, target))
        return pairs

    def reaches_deadline(self, info):
        """True when ``info`` (transitively) calls a deadline-accepting
        function along confidently-resolved edges."""
        cached = self._reaches_deadline.get(info)
        if cached is not None:
            return cached
        self._reaches_deadline[info] = False  # cycle guard
        result = False
        for _node, target in self.callees(info):
            if target.accepts_deadline or self.reaches_deadline(target):
                result = True
                break
        self._reaches_deadline[info] = result
        return result


#: Back-compat name: PR 7 checkers take ``(module, project)``.
Project = ProjectModel

__all__ = [
    "AMBIGUOUS_NAMES",
    "CallSite",
    "FunctionInfo",
    "Project",
    "ProjectModel",
    "module_name_for",
    "own_nodes",
]
