"""Checker base class plus shared class-structure helpers.

A checker is a small object with a ``rule`` id and a ``scope``:

* ``scope = "module"`` (the PR 7 contract, unchanged): ``check(module,
  project)`` runs once per file and may consult the shared
  :class:`~repro.analysis.project.ProjectModel` for cross-module facts;
* ``scope = "project"``: ``check_project(project)`` runs once per analysis
  over the whole-program model — the home of the lock-ordering,
  resource-lifecycle, metrics- and protocol-conformance families.

Both yield :class:`~repro.analysis.findings.Finding`s; the runner applies
suppressions by mapping each finding back to its module.
"""

from __future__ import annotations

import ast

from repro.analysis.project import Project, ProjectModel  # noqa: F401 - re-export


def class_nodes(classdef):
    """Every node inside ``classdef``, without descending into nested classes."""
    stack = list(classdef.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.ClassDef):
                stack.append(child)


def guarded_attributes(module, classdef):
    """``{attr: (lock, value_node)}`` from ``# guarded-by:`` annotations.

    Covers both ``self.x = ...  # guarded-by: _lock`` in methods and
    class-level / dataclass field declarations annotated the same way.
    """
    guarded = {}

    def record(target, lock, value, node):
        from repro.analysis.source import is_self_attribute

        if is_self_attribute(target):
            guarded[target.attr] = (lock, value)
        elif isinstance(target, ast.Name) and module.parent(node) is classdef:
            guarded[target.id] = (lock, value)

    for node in class_nodes(classdef):
        if isinstance(node, ast.Assign):
            lock = module.guarded_by(node)
            if lock is None:
                continue
            for target in node.targets:
                record(target, lock, node.value, node)
        elif isinstance(node, ast.AnnAssign):
            lock = module.guarded_by(node)
            if lock is None:
                continue
            record(node.target, lock, node.value, node)
    return guarded


class Checker:
    """Base class: subclasses set ``rule``/``description`` and implement
    :meth:`check` (``scope = "module"``) or :meth:`check_project`
    (``scope = "project"``)."""

    rule = ""
    description = ""
    scope = "module"

    def check(self, module, project):
        raise NotImplementedError

    def check_project(self, project):
        raise NotImplementedError

    @staticmethod
    def walk_functions(node):
        """Functions defined anywhere under ``node`` (including nested)."""
        return [
            n
            for n in ast.walk(node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


__all__ = [
    "Checker",
    "Project",
    "ProjectModel",
    "class_nodes",
    "guarded_attributes",
]
