"""Checker base class and the project-wide view checkers share.

A checker is a small object with a ``rule`` id and a ``check(module,
project)`` method yielding :class:`~repro.analysis.findings.Finding`s.
Most checkers are purely local to one module; the deadline checker also
consults :class:`Project` for the cross-module map of deadline-accepting
callables.
"""

from __future__ import annotations

import ast


class Project:
    """Cross-module facts shared by all checkers for one analysis run."""

    def __init__(self, modules):
        self.modules = list(modules)
        #: bare names of functions/methods that accept a ``deadline`` param.
        self.deadline_callables = set()
        for module in self.modules:
            for func in module.functions():
                args = func.args
                names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
                if "deadline" in names:
                    self.deadline_callables.add(func.name)


def class_nodes(classdef):
    """Every node inside ``classdef``, without descending into nested classes."""
    stack = list(classdef.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.ClassDef):
                stack.append(child)


def guarded_attributes(module, classdef):
    """``{attr: (lock, value_node)}`` from ``# guarded-by:`` annotations.

    Covers both ``self.x = ...  # guarded-by: _lock`` in methods and
    class-level / dataclass field declarations annotated the same way.
    """
    guarded = {}

    def record(target, lock, value, node):
        from repro.analysis.source import is_self_attribute

        if is_self_attribute(target):
            guarded[target.attr] = (lock, value)
        elif isinstance(target, ast.Name) and module.parent(node) is classdef:
            guarded[target.id] = (lock, value)

    for node in class_nodes(classdef):
        if isinstance(node, ast.Assign):
            lock = module.guarded_by(node)
            if lock is None:
                continue
            for target in node.targets:
                record(target, lock, node.value, node)
        elif isinstance(node, ast.AnnAssign):
            lock = module.guarded_by(node)
            if lock is None:
                continue
            record(node.target, lock, node.value, node)
    return guarded


class Checker:
    """Base class: subclasses set ``rule``/``description`` and implement check."""

    rule = ""
    description = ""

    def check(self, module, project):
        raise NotImplementedError

    @staticmethod
    def walk_functions(node):
        """Functions defined anywhere under ``node`` (including nested)."""
        return [
            n
            for n in ast.walk(node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


__all__ = ["Checker", "Project", "class_nodes", "guarded_attributes"]
