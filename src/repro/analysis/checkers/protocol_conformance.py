"""protocol-conformance: record fields must come from the protocol codec.

The JSONL protocol lives in one module (``service/protocol.py``) precisely
so server, client and CLI cannot drift — but nothing stopped a handler
from inventing ``{"pong": True}`` inline, a field no codec declares and no
other peer knows to read.  This rule closes that hole statically.

Scope: consumer modules named ``server``/``client``/``cli`` that either sit
next to a ``protocol`` module or import one.  The protocol module's
*declared vocabulary* is every string field it constructs or reads (dict
literal keys, ``record["k"] = ...`` stores, ``.update(k=...)`` kwargs,
``.get("k")``/``.setdefault("k")`` probes).  In a consumer, every *record
construction* — a dict literal handed to ``send``/``emit``/``dumps``/
``request``/``submit``, a dict assigned to a record-ish variable
(``record``/``response``/``request``/``reply``/``probe``), or a subscript
store/``setdefault`` on one — must use only declared field names.  Only
top-level keys are checked; nested payloads belong to the codec helper
that built them.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker
from repro.analysis.source import call_name

CONSUMER_STEMS = {"server", "client", "cli"}
SINK_CALLS = {"send", "emit", "dumps", "request", "submit", "write"}
RECORD_NAMES = {"record", "response", "request", "reply", "probe"}


def _string_keys(dict_node):
    return [
        (key, key.value)
        for key in dict_node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _declared_fields(protocol_module):
    declared = set()
    for node in ast.walk(protocol_module.tree):
        if isinstance(node, ast.Dict):
            declared.update(value for _node, value in _string_keys(node))
        elif isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                declared.add(node.slice.value)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "update":
                declared.update(
                    kw.arg for kw in node.keywords if kw.arg is not None
                )
            elif node.func.attr in ("get", "setdefault") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    declared.add(first.value)
    return declared


class ProtocolConformanceChecker(Checker):
    rule = "protocol-conformance"
    description = (
        "JSONL records built in server/client/cli modules may only use "
        "field names the sibling protocol module declares"
    )
    scope = "project"

    def check_project(self, project):
        findings = []
        for module in project.modules:
            stem = project.module_name(module).rsplit(".", 1)[-1]
            if stem not in CONSUMER_STEMS:
                continue
            protocol = self._protocol_for(project, module)
            if protocol is None:
                continue
            declared = _declared_fields(protocol)
            findings.extend(self._check_consumer(module, protocol, declared))
        return findings

    # ------------------------------------------------------------------ #
    # scoping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _protocol_for(project, module):
        """The protocol module a consumer is bound to: sibling, else import."""
        name = project.module_name(module)
        package = name.rsplit(".", 1)[0] if "." in name else ""
        sibling = (package + "." if package else "") + "protocol"
        if sibling in project.by_name:
            return project.by_name[sibling]
        for source, _original in project.imports[id(module)].values():
            if source.rsplit(".", 1)[-1] == "protocol":
                resolved = project.resolve_module(source, importer=module)
                if resolved is not None:
                    return resolved
        return None

    # ------------------------------------------------------------------ #
    # consumer construction sites
    # ------------------------------------------------------------------ #
    def _check_consumer(self, module, protocol, declared):
        findings = []
        for dict_node in self._record_dicts(module):
            for key_node, key in _string_keys(dict_node):
                if key not in declared:
                    findings.append(self._finding(module, protocol, key_node, key))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id in RECORD_NAMES
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and node.slice.value not in declared
            ):
                findings.append(
                    self._finding(module, protocol, node, node.slice.value)
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setdefault"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in RECORD_NAMES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value not in declared
            ):
                findings.append(
                    self._finding(module, protocol, node, node.args[0].value)
                )
        return findings

    @staticmethod
    def _record_dicts(module):
        """Dict literals that look like protocol records being built."""
        dicts = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and call_name(node) in SINK_CALLS:
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        dicts.append(arg)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                if any(
                    isinstance(t, ast.Name) and t.id in RECORD_NAMES
                    for t in node.targets
                ):
                    dicts.append(node.value)
        return dicts

    def _finding(self, module, protocol, node, key):
        return module.finding(
            node,
            self.rule,
            f"record field '{key}' is not declared by {protocol.path}; "
            "add it to the codec (or build this record with a protocol "
            "helper) so server and client cannot drift",
        )


__all__ = ["ProtocolConformanceChecker"]
