"""process-pool-boundary: locks and memos must not cross into worker processes.

Process executors (PR 2) ship work to ``ProcessPoolExecutor`` workers that
keep *worker-local* caches and memos — coordinator-side ``ChaseCache``/
``ContainmentMemo``/registry objects carry ``threading.Lock``s and must
never appear in a submission: at best they fail to pickle, at worst a
``__getstate__`` quietly ships a divergent copy that the coordinator never
sees again.

The checker scopes itself to genuine process pools — classes declaring
``kind = "processes"`` and receivers assigned from
``ProcessPoolExecutor(...)`` — so thread executors may keep sharing their
caches by reference.  Within that scope it flags any ``submit``/``map``
argument (and any ``initargs=`` item) whose name mentions a lock-carrying
object (``*cache*``, ``*memo*``, ``*registry*``, ``*lock*``).
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker, class_nodes
from repro.analysis.source import call_name, is_self_attribute

SUSPECT_FRAGMENTS = ("cache", "memo", "registry", "lock")
SUBMIT_METHODS = {"submit", "map"}


def _suspicious_names(expr):
    """Names in ``expr`` that look like lock-carrying coordinator state."""
    names = []
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(f in name.lower() for f in SUSPECT_FRAGMENTS):
            names.append(name)
    return names


class ProcessPoolBoundaryChecker(Checker):
    rule = "process-pool-boundary"
    description = (
        "objects carrying locks/memos (cache/memo/registry/lock names) must "
        "not flow into process-executor submit()/map()/initargs"
    )

    def check(self, module, project):
        findings = []
        for call in ast.walk(module.tree):
            if (
                isinstance(call, ast.Call)
                and call_name(call) == "ProcessPoolExecutor"
            ):
                for keyword in call.keywords:
                    if keyword.arg == "initargs":
                        for name in _suspicious_names(keyword.value):
                            findings.append(
                                module.finding(
                                    keyword.value,
                                    self.rule,
                                    f"'{name}' flows into ProcessPoolExecutor "
                                    "initargs; worker processes must build "
                                    "their own locks/caches locally",
                                )
                            )
        for classdef in module.classes():
            findings.extend(self._check_class(module, classdef))
        findings.extend(self._check_local_pools(module))
        return findings

    # ------------------------------------------------------------------ #
    # class-scoped pools
    # ------------------------------------------------------------------ #
    def _check_class(self, module, classdef):
        is_process_class = any(
            isinstance(stmt, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "kind" for t in stmt.targets)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value == "processes"
            for stmt in classdef.body
        )
        pool_attrs = {
            target.attr
            for node in class_nodes(classdef)
            if isinstance(node, ast.Assign)
            and call_name(node.value) == "ProcessPoolExecutor"
            for target in node.targets
            if is_self_attribute(target)
        }
        if not is_process_class and not pool_attrs:
            return []
        findings = []
        for call in class_nodes(classdef):
            if not self._is_submit_call(call):
                continue
            receiver = call.func.value
            if not (
                is_process_class
                or (is_self_attribute(receiver) and receiver.attr in pool_attrs)
            ):
                continue
            findings.extend(self._check_submission(module, call))
        return findings

    # ------------------------------------------------------------------ #
    # function/module-local pools
    # ------------------------------------------------------------------ #
    def _check_local_pools(self, module):
        local_pools = {
            target.id
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Assign)
            and call_name(node.value) == "ProcessPoolExecutor"
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        # ``with ProcessPoolExecutor(...) as pool:`` binds a pool too.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        call_name(item.context_expr) == "ProcessPoolExecutor"
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        local_pools.add(item.optional_vars.id)
        if not local_pools:
            return []
        findings = []
        for call in ast.walk(module.tree):
            if not self._is_submit_call(call):
                continue
            receiver = call.func.value
            if isinstance(receiver, ast.Name) and receiver.id in local_pools:
                findings.extend(self._check_submission(module, call))
        return findings

    # ------------------------------------------------------------------ #
    # shared bits
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_submit_call(node):
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SUBMIT_METHODS
        )

    def _check_submission(self, module, call):
        findings = []
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for name in _suspicious_names(argument):
                findings.append(
                    module.finding(
                        argument,
                        self.rule,
                        f"'{name}' flows into a process-pool "
                        f"{call.func.attr}(); locks/memos must stay "
                        "coordinator-side (workers keep local ones)",
                    )
                )
        return findings


__all__ = ["ProcessPoolBoundaryChecker"]
