"""future-resolution: acquired futures/pending entries resolve on all paths.

Two sub-checks grounded in the serving stack's demux patterns:

1. **Acquire/release pairing.**  An "acquisition" is either a call to
   ``began()`` (the connection in-flight gauge in ``server.py``) or a store
   into a ``pending``-style mapping (``self.pending[request_id] = future``
   in ``client.py``).  After an acquisition, every ``except`` handler later
   in the function must release (``finished``/``pop``/``_teardown``/
   ``set_exception``/``set_result``), re-raise, or sit in a ``try`` whose
   ``finally`` releases — and at least one release must exist at all,
   otherwise the future hangs its waiter forever.

2. **Crash swallowing.**  ``InjectedCrash`` (the fault-injection harness's
   kill signal) derives from ``BaseException`` precisely so that ordinary
   ``except Exception`` recovery code cannot absorb it.  A bare ``except:``
   or ``except BaseException:`` that neither re-raises nor reports through
   ``set_exception``/``_runner_crashed`` would swallow it — the supervised
   runner would look healthy while its request hangs.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker
from repro.analysis.source import call_name, node_name

#: Mapping-style attributes treated as pending-request tables.
PENDING_NAMES = {"pending", "_pending"}

#: Calls that count as releasing/resolving an acquired entry.
RELEASE_CALLS = {
    "finished",
    "pop",
    "_teardown",
    "set_exception",
    "set_result",
    "cancel",
}

#: Calls that legitimately report a BaseException instead of re-raising.
CRASH_REPORTERS = {"set_exception", "_runner_crashed"}


class FutureResolutionChecker(Checker):
    rule = "future-resolution"
    description = (
        "acquired futures/pending entries must be resolved or released on "
        "every path; BaseException handlers must re-raise or report crashes"
    )

    def check(self, module, project):
        findings = []
        for func in module.functions():
            findings.extend(self._check_pairing(module, func))
        findings.extend(self._check_crash_swallowing(module))
        return findings

    # ------------------------------------------------------------------ #
    # sub-check 1: acquire/release pairing
    # ------------------------------------------------------------------ #
    def _check_pairing(self, module, func):
        acquisitions = self._acquisitions(func)
        if not acquisitions:
            return []
        findings = []
        handlers = [n for n in ast.walk(func) if isinstance(n, ast.ExceptHandler)]
        for acq_node, what in acquisitions:
            released = any(
                isinstance(n, ast.Call)
                and call_name(n) in RELEASE_CALLS
                and n.lineno > acq_node.lineno
                for n in ast.walk(func)
            )
            if not released:
                findings.append(
                    module.finding(
                        acq_node,
                        self.rule,
                        f"{what} in '{func.name}' is never resolved or "
                        "released afterwards; its waiter would hang forever",
                    )
                )
                continue
            for handler in handlers:
                if handler.lineno <= acq_node.lineno:
                    continue
                if self._handler_releases(module, handler):
                    continue
                findings.append(
                    module.finding(
                        handler,
                        self.rule,
                        f"except path after {what} neither releases it nor "
                        "re-raises; the pending future leaks on this path",
                    )
                )
        return findings

    @staticmethod
    def _acquisitions(func):
        """(node, description) pairs for began() calls and pending stores."""
        acquisitions = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_name(node) == "began":
                acquisitions.append((node, "began() acquisition"))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and node_name(target.value) in PENDING_NAMES
                    ):
                        acquisitions.append(
                            (node, f"pending-entry store into '{node_name(target.value)}'")
                        )
        return acquisitions

    @staticmethod
    def _handler_releases(module, handler):
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and call_name(node) in RELEASE_CALLS:
                return True
        try_node = module.parent(handler)
        if isinstance(try_node, ast.Try):
            for stmt in try_node.finalbody:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) and call_name(node) in RELEASE_CALLS:
                        return True
        return False

    # ------------------------------------------------------------------ #
    # sub-check 2: swallowing InjectedCrash
    # ------------------------------------------------------------------ #
    def _check_crash_swallowing(self, module):
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._catches_base_exception(node):
                continue
            if self._reports_or_reraises(node):
                continue
            findings.append(
                module.finding(
                    node,
                    self.rule,
                    "handler catches BaseException (so it absorbs the "
                    "fault-injection InjectedCrash) without re-raising or "
                    "reporting via set_exception/_runner_crashed",
                )
            )
        return findings

    @staticmethod
    def _catches_base_exception(handler):
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        return any(node_name(t) == "BaseException" for t in types)

    @staticmethod
    def _reports_or_reraises(handler):
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and call_name(node) in CRASH_REPORTERS:
                return True
        return False


__all__ = ["FutureResolutionChecker"]
