"""deadline-propagation: time budgets must thread through the call chain.

Timeouts in the chase are absolute deadlines (PR 2) handed down through
``chase → backchase → wave executors``.  A function that *receives* a
``deadline`` and calls another deadline-accepting function without passing
one on silently converts a bounded call into an unbounded one — the chase
"too far" failure mode the paper is named for.

Two layers, both per deadline-accepting caller:

* **direct** (the PR 7 rule): every call to a deadline-accepting callable
  must forward the budget (``deadline=...`` keyword, or any argument
  mentioning ``deadline`` — including ``state.deadline``-style
  attributes).  Callee names are resolved through the project symbol
  table, so ``from repro.chase import chase as _chase`` no longer launders
  the call out of the rule's sight.
* **interprocedural** (whole-program): a call to a helper that accepts no
  ``deadline`` parameter but whose (confidently resolved) call graph
  reaches a deadline-accepting function severs the budget at that hop —
  the helper physically cannot pass the deadline on.  Only confident
  resolutions fire, so dynamic dispatch cannot fabricate findings.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker
from repro.analysis.source import mentions_identifier, node_name


class DeadlinePropagationChecker(Checker):
    rule = "deadline-propagation"
    description = (
        "a function accepting `deadline` that calls a deadline-accepting "
        "callee (directly, via an import alias, or through a budget-less "
        "intermediary) must pass the deadline through"
    )

    def check(self, module, project):
        findings = []
        for func in module.functions():
            if not self._accepts_deadline(func):
                continue
            info = project.info_for(func)
            interprocedural = self._severed_calls(project, info)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if self._forwards_deadline(node):
                    continue
                callee = node_name(node.func)
                if callee is None:
                    continue
                resolved = project.alias_target(module, callee) or callee
                if resolved in project.deadline_callables:
                    findings.append(
                        module.finding(
                            node,
                            self.rule,
                            f"call to deadline-accepting '{callee}' drops "
                            "the in-scope 'deadline'; pass deadline=... "
                            "through",
                        )
                    )
                elif node in interprocedural:
                    target = interprocedural[node]
                    findings.append(
                        module.finding(
                            node,
                            self.rule,
                            f"'{callee}' accepts no deadline but its call "
                            f"graph reaches deadline-accepting "
                            f"'{target.qualname}'; the budget is severed "
                            "here — thread deadline through "
                            f"'{callee}'",
                        )
                    )
        return findings

    @staticmethod
    def _severed_calls(project, info):
        """{call node: deadline-accepting FunctionInfo it reaches} for calls
        to confidently-resolved, budget-less intermediaries."""
        severed = {}
        if info is None:
            return severed
        for node, target in project.callees(info):
            if target.accepts_deadline or target.name.startswith("__"):
                continue
            if project.reaches_deadline(target):
                witness = DeadlinePropagationChecker._deadline_witness(
                    project, target
                )
                if witness is not None:
                    severed[node] = witness
        return severed

    @staticmethod
    def _deadline_witness(project, info, _seen=None):
        """One deadline-accepting function ``info`` reaches (for messages)."""
        seen = _seen if _seen is not None else set()
        if info in seen:
            return None
        seen.add(info)
        for _node, target in project.callees(info):
            if target.accepts_deadline:
                return target
        for _node, target in project.callees(info):
            witness = DeadlinePropagationChecker._deadline_witness(
                project, target, seen
            )
            if witness is not None:
                return witness
        return None

    @staticmethod
    def _accepts_deadline(func):
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return "deadline" in names

    @staticmethod
    def _forwards_deadline(call):
        for keyword in call.keywords:
            if keyword.arg == "deadline":
                return True
            if keyword.arg is None and mentions_identifier(keyword.value, "deadline"):
                return True  # **kwargs carrying a deadline key
        for arg in call.args:
            if mentions_identifier(arg, "deadline"):
                return True
        for keyword in call.keywords:
            if keyword.arg is not None and mentions_identifier(keyword.value, "deadline"):
                return True
        return False


__all__ = ["DeadlinePropagationChecker"]
