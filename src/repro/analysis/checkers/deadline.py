"""deadline-propagation: time budgets must thread through the call chain.

Timeouts in the chase are absolute deadlines (PR 2) handed down through
``chase → backchase → wave executors``.  A function that *receives* a
``deadline`` and calls another deadline-accepting function without passing
one on silently converts a bounded call into an unbounded one — the chase
"too far" failure mode the paper is named for.

The checker builds a project-wide set of callables that accept a
``deadline`` parameter; inside any function that itself has ``deadline``,
every call to such a callable must forward it (``deadline=...`` keyword, or
any argument mentioning ``deadline`` — including ``state.deadline``-style
attributes).
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker
from repro.analysis.source import mentions_identifier, node_name


class DeadlinePropagationChecker(Checker):
    rule = "deadline-propagation"
    description = (
        "a function accepting `deadline` that calls a deadline-accepting "
        "callee must pass the deadline through"
    )

    def check(self, module, project):
        findings = []
        for func in module.functions():
            if not self._accepts_deadline(func):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node_name(node.func)
                if callee is None or callee not in project.deadline_callables:
                    continue
                if self._forwards_deadline(node):
                    continue
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"call to deadline-accepting '{callee}' drops the "
                        "in-scope 'deadline'; pass deadline=... through",
                    )
                )
        return findings

    @staticmethod
    def _accepts_deadline(func):
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return "deadline" in names

    @staticmethod
    def _forwards_deadline(call):
        for keyword in call.keywords:
            if keyword.arg == "deadline":
                return True
            if keyword.arg is None and mentions_identifier(keyword.value, "deadline"):
                return True  # **kwargs carrying a deadline key
        for arg in call.args:
            if mentions_identifier(arg, "deadline"):
                return True
        for keyword in call.keywords:
            if keyword.arg is not None and mentions_identifier(keyword.value, "deadline"):
                return True
        return False


__all__ = ["DeadlinePropagationChecker"]
