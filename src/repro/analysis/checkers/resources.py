"""resource-lifecycle: sockets, threads, executors and files must be released.

The serving stack leaks quietly: a ``makefile()`` reader nobody closes, a
thread nobody joins, an executor nobody shuts down.  Each leak survives the
unit suite (the process exits) and kills a long-lived server.

Two ownership shapes are checked:

* **class-held resources** — ``self.attr = <factory>(...)`` must be
  released somewhere in the class (a ``self.attr.close()``-style call *or*
  a bound-method reference like ``self.attr.close``, which is how teardown
  tuples release), or carry a ``# released-by: <method>`` annotation.  The
  annotation is verified: the named method must exist on the class and
  perform the release (directly or one call hop away) — a stale annotation
  is itself a finding.
* **function-local resources** — a local bound to a factory call must be
  context-managed (``with factory() as x`` or a later ``with x:``) or
  released in a ``finally``, unless ownership escapes (returned, yielded,
  stored onto an object/container, or passed to another call).

Factories and their release verbs are project-specific on purpose: this is
not a general escape analysis, it is the checked version of the teardown
contract ``stop()``/``close()``/``shutdown()`` methods already follow.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker, class_nodes
from repro.analysis.source import call_name, is_self_attribute

#: factory terminal name -> (resource kind, accepted release verbs)
FACTORIES = {
    "socket": ("socket", ("close", "shutdown", "detach")),
    "create_connection": ("socket", ("close", "shutdown", "detach")),
    "makefile": ("file", ("close", "detach")),
    "open": ("file", ("close",)),
    "NamedTemporaryFile": ("file", ("close",)),
    "TemporaryFile": ("file", ("close",)),
    "Thread": ("thread", ("join",)),
    "Timer": ("thread", ("join", "cancel")),
    "ThreadPoolExecutor": ("executor", ("shutdown",)),
    "ProcessPoolExecutor": ("executor", ("shutdown",)),
    "Popen": ("process", ("wait", "kill", "terminate", "communicate")),
}


def _factory_of(value):
    """(kind, release verbs) when ``value`` is a tracked factory call."""
    name = call_name(value)
    entry = FACTORIES.get(name) if name is not None else None
    if entry is None:
        return None, ()
    # ``open`` must be the builtin/Path method, not e.g. ``shelve.open`` —
    # accept bare names and one-attribute forms only.
    return entry


class ResourceLifecycleChecker(Checker):
    rule = "resource-lifecycle"
    description = (
        "sockets/threads/executors/files acquired by a class or function "
        "must be closed/joined/shut down (finally, context manager, or a "
        "verified `# released-by: <method>` teardown)"
    )
    scope = "project"

    def check_project(self, project):
        findings = []
        for module in project.modules:
            for classdef in module.classes():
                findings.extend(self._check_class(project, module, classdef))
            findings.extend(self._check_locals(project, module))
        return findings

    # ------------------------------------------------------------------ #
    # class-held resources
    # ------------------------------------------------------------------ #
    def _check_class(self, project, module, classdef):
        findings = []
        methods = project.methods_of(classdef)
        for node in class_nodes(classdef):
            if not isinstance(node, ast.Assign):
                continue
            kind, verbs = _factory_of(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if not is_self_attribute(target):
                    continue
                attr = target.attr
                teardown = module.released_by(node)
                if teardown is not None:
                    findings.extend(
                        self._check_annotation(
                            project, module, classdef, methods, node, attr,
                            kind, verbs, teardown,
                        )
                    )
                    continue
                if self._class_releases(classdef, attr, verbs):
                    continue
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"{kind} 'self.{attr}' is acquired here but no "
                        f"method of {classdef.name} ever calls "
                        f"self.{attr}.{'/'.join(verbs)}; release it in a "
                        "teardown or declare `# released-by: <method>`",
                    )
                )
        return findings

    def _check_annotation(
        self, project, module, classdef, methods, node, attr, kind, verbs, teardown
    ):
        method = methods.get(teardown)
        if method is None:
            return [
                module.finding(
                    node,
                    self.rule,
                    f"'self.{attr}' declares `# released-by: {teardown}` "
                    f"but {classdef.name} has no method '{teardown}'",
                )
            ]
        if self._method_releases(project, method, attr, verbs, hops=1):
            return []
        return [
            module.finding(
                node,
                self.rule,
                f"'self.{attr}' declares `# released-by: {teardown}` but "
                f"{classdef.name}.{teardown} never calls "
                f"self.{attr}.{'/'.join(verbs)}",
            )
        ]

    @staticmethod
    def _releases_in(node, attr, verbs):
        """A ``self.<attr>.<verb>`` reference (call or bound) under ``node``."""
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Attribute)
                and child.attr in verbs
                and is_self_attribute(child.value, attr)
            ):
                return True
        return False

    def _class_releases(self, classdef, attr, verbs):
        for node in class_nodes(classdef):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in verbs
                and is_self_attribute(node.value, attr)
            ):
                return True
        return False

    def _method_releases(self, project, method, attr, verbs, hops):
        if self._releases_in(method.node, attr, verbs):
            return True
        if hops <= 0:
            return False
        for _node, target in project.callees(method):
            if target.classdef is method.classdef and self._method_releases(
                project, target, attr, verbs, hops - 1
            ):
                return True
        return False

    # ------------------------------------------------------------------ #
    # function-local resources
    # ------------------------------------------------------------------ #
    def _check_locals(self, project, module):
        findings = []
        for info in project.functions_of(module):
            findings.extend(self._check_function_locals(module, info))
        return findings

    def _check_function_locals(self, module, info):
        from repro.analysis.project import own_nodes

        func = info.node
        with_managed = set()
        acquisitions = {}  # name -> (assign node, kind, verbs)
        for node in own_nodes(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        with_managed.add(item.optional_vars.id)
                    if isinstance(item.context_expr, ast.Name):
                        with_managed.add(item.context_expr.id)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    kind, verbs = _factory_of(node.value)
                    if kind is not None:
                        acquisitions[target.id] = (node, kind, verbs)
        if not acquisitions:
            return []
        findings = []
        for name, (node, kind, verbs) in acquisitions.items():
            if name in with_managed:
                continue
            if self._escapes(func, node, name):
                continue
            if self._released_locally(func, name, verbs):
                continue
            findings.append(
                module.finding(
                    node,
                    self.rule,
                    f"local {kind} '{name}' is never released on all paths; "
                    f"use `with`, or close it in `finally` "
                    f"({'/'.join(verbs)})",
                )
            )
        return findings

    @staticmethod
    def _direct_refs(expr):
        """``expr`` itself, or its elements when it is a container literal.

        ``return handle`` and ``return (handle, x)`` transfer ownership;
        ``return handle.read()`` does not — only direct references count.
        """
        if expr is None:
            return []
        nodes = [expr]
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            nodes = list(expr.elts)
        elif isinstance(expr, ast.Dict):
            nodes = list(expr.values)
        refs = []
        for node in nodes:
            if isinstance(node, ast.Starred):
                node = node.value
            if isinstance(node, ast.Name):
                refs.append(node.id)
        return refs

    #: Builtins that merely look at an object — passing a resource to one
    #: of these transfers nothing, so it is not an escape.
    NON_OWNING_CALLS = frozenset(
        {"enumerate", "iter", "next", "zip", "len", "repr", "str", "print",
         "isinstance", "id", "bool", "hash"}
    )

    @classmethod
    def _escapes(cls, func, assign, name):
        """Ownership leaves the function: returned/yielded/stored/passed on."""
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if name in cls._direct_refs(getattr(node, "value", None)):
                    return True
            if isinstance(node, ast.Assign) and node is not assign:
                if name in cls._direct_refs(node.value):
                    return True  # aliased / stored onto an object or container
            if isinstance(node, ast.Call):
                if call_name(node) in cls.NON_OWNING_CALLS:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
        return False

    @staticmethod
    def _released_locally(func, name, verbs):
        """``name.<verb>`` referenced inside a ``finally`` (or anywhere —
        an unconditional release is accepted as intent; path-sensitivity
        stays with the future-resolution rule)."""
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in verbs
                and isinstance(node.value, ast.Name)
                and node.value.id == name
            ):
                return True
        return False


__all__ = ["ResourceLifecycleChecker"]
