"""pickle-safety: lock-owning classes must pickle safely (the PR 6 bug).

PR 6's worst bug: ``SnapshotManager`` pickled live ``OrderedDict`` caches
while shard runners mutated them, so the snapshot loop died with
"OrderedDict mutated during iteration" — silently, under traffic.  The
mechanical invariant: a class that owns a ``threading.Lock``/``RLock`` or a
``# guarded-by:`` mutable container must define ``__getstate__`` that

* strips every lock attribute (``del state["_lock"]`` / ``state.pop(...)``),
  because locks are unpicklable and must not leak into the payload, and
* snapshots ``self.__dict__`` / the guarded containers *inside*
  ``with self.<lock>:`` so a concurrent writer cannot mutate mid-copy.

Classes that are never pickled can suppress with
``# repro-lint: ignore[pickle-safety] <why it is never pickled>``.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker, class_nodes, guarded_attributes
from repro.analysis.source import call_name, is_self_attribute, node_name

LOCK_FACTORIES = {"Lock", "RLock"}
CONTAINER_FACTORIES = {"OrderedDict", "defaultdict", "deque", "dict", "list", "set"}


def _is_lock_value(value):
    """True for ``threading.Lock()`` or ``field(default_factory=...Lock)``."""
    if call_name(value) in LOCK_FACTORIES:
        return True
    if call_name(value) == "field" and isinstance(value, ast.Call):
        for keyword in value.keywords:
            if keyword.arg == "default_factory" and node_name(keyword.value) in LOCK_FACTORIES:
                return True
    return False


def _is_container_value(value):
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if call_name(value) in CONTAINER_FACTORIES:
        return True
    if call_name(value) == "field" and isinstance(value, ast.Call):
        for keyword in value.keywords:
            if keyword.arg == "default_factory" and node_name(keyword.value) in CONTAINER_FACTORIES:
                return True
    return False


class PickleSafetyChecker(Checker):
    rule = "pickle-safety"
    description = (
        "classes owning a Lock/RLock or a guarded container must define "
        "__getstate__ that strips locks and copies state under the lock"
    )

    def check(self, module, project):
        findings = []
        for classdef in module.classes():
            findings.extend(self._check_class(module, classdef))
        return findings

    def _check_class(self, module, classdef):
        lock_attrs = self._lock_attributes(module, classdef)
        guarded = guarded_attributes(module, classdef)
        containers = {
            attr: lock
            for attr, (lock, value) in guarded.items()
            if value is not None and _is_container_value(value)
        }
        if not lock_attrs and not containers:
            return []

        getstate = None
        for stmt in classdef.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__getstate__":
                getstate = stmt
                break
        if getstate is None:
            return [
                module.finding(
                    classdef,
                    self.rule,
                    f"class '{classdef.name}' owns "
                    f"{self._owns(lock_attrs, containers)} but defines no "
                    "__getstate__; pickling it would capture a live lock or a "
                    "container mid-mutation (PR 6 snapshot bug)",
                )
            ]

        findings = []
        for lock_attr in sorted(lock_attrs):
            if not self._strips(getstate, lock_attr):
                findings.append(
                    module.finding(
                        getstate,
                        self.rule,
                        f"__getstate__ of '{classdef.name}' does not strip "
                        f"lock attribute '{lock_attr}' "
                        f'(del state["{lock_attr}"] or state.pop("{lock_attr}", ...))',
                    )
                )
        if containers:
            findings.extend(
                self._check_copies_under_lock(
                    module, classdef, getstate, containers, lock_attrs
                )
            )
        return findings

    # ------------------------------------------------------------------ #
    # ownership discovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lock_attributes(module, classdef):
        locks = set()
        for node in class_nodes(classdef):
            if isinstance(node, ast.Assign):
                if _is_lock_value(node.value):
                    for target in node.targets:
                        if is_self_attribute(target):
                            locks.add(target.attr)
                        elif isinstance(target, ast.Name) and module.parent(node) is classdef:
                            locks.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_lock_value(node.value):
                    if is_self_attribute(node.target):
                        locks.add(node.target.attr)
                    elif isinstance(node.target, ast.Name) and module.parent(node) is classdef:
                        locks.add(node.target.id)
        return locks

    @staticmethod
    def _owns(lock_attrs, containers):
        parts = []
        if lock_attrs:
            parts.append("lock(s) " + ", ".join(sorted(lock_attrs)))
        if containers:
            parts.append("guarded container(s) " + ", ".join(sorted(containers)))
        return " and ".join(parts)

    # ------------------------------------------------------------------ #
    # __getstate__ structure
    # ------------------------------------------------------------------ #
    @staticmethod
    def _strips(getstate, lock_attr):
        """True when __getstate__ deletes or pops ``lock_attr`` from state."""
        for node in ast.walk(getstate):
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and target.slice.value == lock_attr
                    ):
                        return True
            if isinstance(node, ast.Call) and call_name(node) == "pop":
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == lock_attr
                ):
                    return True
        return False

    def _check_copies_under_lock(self, module, classdef, getstate, containers, lock_attrs):
        """Accesses of __dict__ / guarded containers must sit under the lock."""
        relevant = set(lock_attrs) | set(containers.values())
        findings = []
        self._walk_getstate(module, classdef, getstate, containers, relevant, set(), findings)
        return findings

    def _walk_getstate(self, module, classdef, node, containers, relevant, held, findings):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                if is_self_attribute(item.context_expr):
                    acquired.add(item.context_expr.attr)
            for child in node.body:
                self._walk_getstate(
                    module, classdef, child, containers, relevant, acquired, findings
                )
            return
        if isinstance(node, ast.Attribute) and is_self_attribute(node):
            if node.attr == "__dict__" and not (held & relevant):
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"__getstate__ of '{classdef.name}' copies self.__dict__ "
                        "outside the guarding lock; a concurrent writer can "
                        "mutate a container mid-pickle (PR 6 snapshot bug)",
                    )
                )
            elif node.attr in containers and containers[node.attr] not in held:
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"__getstate__ of '{classdef.name}' reads guarded "
                        f"container '{node.attr}' outside 'self.{containers[node.attr]}'",
                    )
                )
            return
        for child in ast.iter_child_nodes(node):
            self._walk_getstate(
                module, classdef, child, containers, relevant, held, findings
            )


__all__ = ["PickleSafetyChecker"]
