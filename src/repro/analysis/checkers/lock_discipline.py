"""lock-discipline: guarded attributes are only touched with their lock held.

An attribute annotated ``# guarded-by: _lock`` on its assignment (in
``__init__`` or as a dataclass field) may only be accessed lexically inside
``with self._lock:``.  Methods documented with ``# holds: _lock`` on the
``def`` line are assumed to be called with the lock already held.  Bodies of
nested functions and lambdas run later, outside the ``with`` block that
encloses their definition, so held locks do not propagate into them.

A second sub-check flags ad-hoc locks bound to bare names
(``write_lock = threading.Lock()`` as a local or module global): a lock
should live on the object whose state it guards, where this checker's model
— and readers — can see what it protects.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker, guarded_attributes
from repro.analysis.source import call_name, is_self_attribute

#: Methods that run while the object is not yet (or no longer) shared.
UNSHARED_METHODS = {"__init__", "__setstate__", "__post_init__"}

LOCK_FACTORIES = {"Lock", "RLock"}


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "attributes declared `# guarded-by: <lock>` must only be accessed "
        "inside `with self.<lock>:` (or in a method marked `# holds: <lock>`)"
    )

    def check(self, module, project):
        findings = []
        for classdef in module.classes():
            guarded = {
                attr: lock
                for attr, (lock, _value) in guarded_attributes(module, classdef).items()
            }
            if not guarded:
                continue
            for stmt in classdef.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in UNSHARED_METHODS:
                    continue
                self._scan(module, stmt, guarded, module.holds(stmt), findings)
        findings.extend(self._scan_adhoc_locks(module))
        return findings

    # ------------------------------------------------------------------ #
    # guarded-attribute scan
    # ------------------------------------------------------------------ #
    def _scan(self, module, node, guarded, held, findings):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_held = module.holds(node)
            for child in node.body:
                self._scan(module, child, guarded, nested_held, findings)
            return
        if isinstance(node, ast.Lambda):
            self._scan(module, node.body, guarded, set(), findings)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self._scan(module, item.context_expr, guarded, held, findings)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            for child in node.body:
                self._scan(module, child, guarded, acquired, findings)
            return
        if isinstance(node, ast.Attribute) and is_self_attribute(node):
            lock = guarded.get(node.attr)
            if lock is not None and lock not in held:
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"'self.{node.attr}' is guarded-by '{lock}' but accessed "
                        f"without holding 'self.{lock}'",
                    )
                )
            return
        for child in ast.iter_child_nodes(node):
            self._scan(module, child, guarded, held, findings)

    @staticmethod
    def _lock_of(context_expr):
        """Lock attribute name acquired by ``with self.<lock>:`` (else None)."""
        if is_self_attribute(context_expr):
            return context_expr.attr
        return None

    # ------------------------------------------------------------------ #
    # ad-hoc bare-name locks
    # ------------------------------------------------------------------ #
    def _scan_adhoc_locks(self, module):
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if call_name(node.value) not in LOCK_FACTORIES:
                continue
            parent = module.parent(node)
            if isinstance(parent, ast.ClassDef):
                continue  # class attribute: shared but at least discoverable
            for target in node.targets:
                if isinstance(target, ast.Name):
                    findings.append(
                        module.finding(
                            node,
                            self.rule,
                            f"ad-hoc lock '{target.id}' bound to a bare name; "
                            "move the lock onto the object whose state it "
                            "guards and annotate that state `# guarded-by:`",
                        )
                    )
        return findings


__all__ = ["LockDisciplineChecker"]
