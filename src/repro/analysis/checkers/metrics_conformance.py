"""metrics-conformance: every gauge must be recorded AND exported.

A gauge that is incremented but never surfaced by ``stats()``/``snapshot()``
is invisible to operators; a gauge that is exported but never recorded lies
to them as a constant zero.  Both drifts are silent — nothing crashes, the
dashboards just stop meaning anything.

Scope: modules named ``metrics`` (``service/metrics.py`` and any future
sibling).  A *collector* is a lock-owning class there; its *gauges* are the
``self.attr`` names initialised in ``__init__`` to a numeric constant or an
empty container (``deque()``, ``{}``, ``[]``, ...).  For each gauge the
whole-program model must show:

* a **mutator** — a method of the collector that increments/assigns/appends
  to the gauge outside ``__init__``;
* a **recording site** — some call anywhere in the analyzed project invokes
  that mutator (a mutator nobody calls is a dead gauge with extra steps);
* an **exporter read** — a method named ``stats``/``snapshot``/
  ``*_snapshot`` of the collector reads the gauge.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker, class_nodes
from repro.analysis.source import call_name, is_self_attribute

CONTAINER_FACTORIES = {
    "deque", "dict", "list", "set", "Counter", "defaultdict", "OrderedDict",
}
MUTATING_METHODS = {
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault", "pop", "popleft", "remove", "clear",
}


def _is_gauge_value(value):
    if isinstance(value, ast.Constant) and isinstance(value.value, (int, float)):
        return not isinstance(value.value, bool)
    if isinstance(value, (ast.Dict, ast.List, ast.Set)) and not getattr(
        value, "keys", getattr(value, "elts", None)
    ):
        return True
    return call_name(value) in CONTAINER_FACTORIES


def _is_exporter(name):
    return name in ("stats", "snapshot") or name.endswith("_snapshot")


class MetricsConformanceChecker(Checker):
    rule = "metrics-conformance"
    description = (
        "every gauge in a metrics module must be recorded by an invoked "
        "mutator and surfaced by a stats()/snapshot() exporter"
    )
    scope = "project"

    def check_project(self, project):
        findings = []
        for module in project.modules:
            if project.module_name(module).rsplit(".", 1)[-1] != "metrics":
                continue
            for classdef in module.classes():
                if not project.class_locks(module, classdef):
                    continue
                findings.extend(
                    self._check_collector(project, module, classdef)
                )
        return findings

    def _check_collector(self, project, module, classdef):
        gauges = self._gauges(module, classdef)
        if not gauges:
            return []
        methods = project.methods_of(classdef)
        called_names = self._called_names(project)
        findings = []
        for attr, node in sorted(gauges.items()):
            mutators = [
                name
                for name, info in methods.items()
                if name != "__init__" and self._mutates(info.node, attr)
            ]
            exported = any(
                _is_exporter(name) and self._reads(info.node, attr)
                for name, info in methods.items()
            )
            if not mutators:
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"dead gauge '{attr}': initialised here but no "
                        f"method of {classdef.name} ever records into it",
                    )
                )
                continue
            if not any(name in called_names for name in mutators):
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"gauge '{attr}' is recorded only by "
                        f"{'/'.join(sorted(mutators))}, which nothing in "
                        "the analyzed project ever calls",
                    )
                )
            if not exported:
                findings.append(
                    module.finding(
                        node,
                        self.rule,
                        f"write-only gauge '{attr}': recorded but never "
                        f"surfaced by a stats()/snapshot() exporter of "
                        f"{classdef.name}",
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    # structure scans
    # ------------------------------------------------------------------ #
    @staticmethod
    def _gauges(module, classdef):
        from repro.analysis.project import LOCK_FACTORIES

        gauges = {}
        for node in class_nodes(classdef):
            if not isinstance(node, ast.Assign):
                continue
            if call_name(node.value) in LOCK_FACTORIES:
                continue
            if not _is_gauge_value(node.value):
                continue
            for target in node.targets:
                if is_self_attribute(target):
                    gauges.setdefault(target.attr, node)
        return gauges

    @staticmethod
    def _mutates(func, attr):
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign) and is_self_attribute(
                node.target, attr
            ):
                return True
            if isinstance(node, ast.Assign) and any(
                is_self_attribute(t, attr) for t in node.targets
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and is_self_attribute(node.func.value, attr)
            ):
                return True
        return False

    @staticmethod
    def _reads(func, attr):
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _called_names(project):
        """Terminal names of every call in the analyzed project."""
        names = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name is not None:
                        names.add(name)
        return names


__all__ = ["MetricsConformanceChecker"]
