"""lock-ordering: a global lock-acquisition-order graph must stay acyclic.

The deadlock that kills a serving fleet is never in one file: shard code
takes ``Shard._lock`` then calls into the snapshot manager, snapshot code
takes ``SnapshotManager._lock`` then calls back into the shard — each file
looks fine, the composition deadlocks.  This project-scope rule builds the
whole-program lock graph and flags every cycle.

Mechanics (over the :class:`~repro.analysis.project.ProjectModel`):

* lock identities are class-qualified (``module:Class.attr`` /
  ``module:name`` for module-level locks), so two classes each owning a
  ``_lock`` are distinct nodes;
* a function's *direct* acquisitions come from lexical ``with
  self.<lock>:`` nesting; ``# holds: <lock>`` on a ``def`` seeds the
  entry-held set (held, not re-acquired — the convention says the caller
  owns it);
* the transitive acquisition closure follows confidently-resolved call
  edges, so holding lock A while calling a method whose callee graph
  eventually takes lock B adds the edge ``A → B`` even across modules;
* any cycle in the edge graph is a potential deadlock: one finding per
  participating edge, each naming the opposing acquisition site.  A
  non-reentrant ``Lock`` re-acquired while already held (directly or via a
  call) is a self-deadlock finding.
"""

from __future__ import annotations

import ast

from repro.analysis.checker import Checker
from repro.analysis.project import own_nodes
from repro.analysis.source import is_self_attribute


class _Acquisition:
    """One ``with <lock>:`` site inside a function."""

    __slots__ = ("lock", "kind", "node", "module")

    def __init__(self, lock, kind, node, module):
        self.lock = lock
        self.kind = kind
        self.node = node
        self.module = module


class _Edge:
    """``held → acquired`` with the acquisition site that witnessed it."""

    __slots__ = ("held", "acquired", "module", "node", "via")

    def __init__(self, held, acquired, module, node, via):
        self.held = held
        self.acquired = acquired
        self.module = module
        self.node = node
        self.via = via  # "" for a lexical with; callee qualname for a call


class LockOrderChecker(Checker):
    rule = "lock-ordering"
    description = (
        "the project-wide lock-acquisition-order graph (nested `with` "
        "scopes + `# holds:` across call edges) must have no cycles"
    )
    scope = "project"

    def check_project(self, project):
        self._direct = {}  # FunctionInfo -> [_Acquisition]
        self._closure = {}  # FunctionInfo -> {lock id: _Acquisition}
        edges = []
        findings = []
        for info in project.functions:
            self._direct[info] = self._scan_direct(project, info)
        for info in project.functions:
            findings.extend(self._walk(project, info, edges))
        findings.extend(self._cycle_findings(project, edges))
        return findings

    # ------------------------------------------------------------------ #
    # per-function acquisition structure
    # ------------------------------------------------------------------ #
    def _lock_of(self, project, info, node):
        """(lock id, kind) when ``node`` is a known lock expression."""
        module = info.module
        if is_self_attribute(node) and info.classdef is not None:
            locks = project.class_locks(module, info.classdef)
            kind = locks.get(node.attr)
            if kind is not None:
                return project.lock_id(module, info.classdef, node.attr), kind
        if isinstance(node, ast.Name):
            kind = project.module_locks(module).get(node.id)
            if kind is not None:
                return project.lock_id(module, None, node.id), kind
        return None, None

    def _scan_direct(self, project, info):
        """Every ``with``-acquisition lexically inside ``info``."""
        acquisitions = []
        for node in own_nodes(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock, kind = self._lock_of(project, info, item.context_expr)
                    if lock is not None:
                        acquisitions.append(
                            _Acquisition(lock, kind, item.context_expr, info.module)
                        )
        return acquisitions

    def _entry_held(self, project, info):
        """Lock ids seeded by a ``# holds:`` annotation on the def."""
        held = set()
        for name in info.module.holds(info.node):
            if info.classdef is not None:
                locks = project.class_locks(info.module, info.classdef)
                if name in locks:
                    held.add(project.lock_id(info.module, info.classdef, name))
                    continue
            if name in project.module_locks(info.module):
                held.add(project.lock_id(info.module, None, name))
        return held

    def acquires_closure(self, project, info, _stack=None):
        """{lock id: witnessing _Acquisition} ``info`` may take, transitively."""
        cached = self._closure.get(info)
        if cached is not None:
            return cached
        stack = _stack if _stack is not None else set()
        if info in stack:
            return {}  # recursion in the call graph; fixpoint below is fine
        stack.add(info)
        closure = {}
        for acquisition in self._direct[info]:
            closure.setdefault(acquisition.lock, acquisition)
        for _node, target in project.callees(info):
            for lock, acquisition in self.acquires_closure(
                project, target, stack
            ).items():
                closure.setdefault(lock, acquisition)
        stack.discard(info)
        self._closure[info] = closure
        return closure

    # ------------------------------------------------------------------ #
    # edge construction
    # ------------------------------------------------------------------ #
    def _walk(self, project, info, edges):
        """Collect held→acquired edges (and self-deadlocks) in one function."""
        findings = []
        held = self._entry_held(project, info)
        calls_by_node = {}
        for site in info.calls:
            if site.confident:
                calls_by_node[site.node] = site.targets

        def visit(node, held):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                return  # deferred bodies run with their own lock context
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired_here = []
                for item in node.items:
                    lock, kind = self._lock_of(project, info, item.context_expr)
                    if lock is None:
                        continue
                    if lock in held and kind == "Lock":
                        findings.append(
                            info.module.finding(
                                item.context_expr,
                                self.rule,
                                f"re-acquiring non-reentrant lock {lock} "
                                "already held here: guaranteed self-deadlock",
                            )
                        )
                    for h in held:
                        if h != lock:
                            edges.append(
                                _Edge(h, lock, info.module, item.context_expr, "")
                            )
                    acquired_here.append(lock)
                inner = held | set(acquired_here)
                for child in ast.iter_child_nodes(node):
                    visit(child, inner)
                return
            if isinstance(node, ast.Call) and held and node in calls_by_node:
                for target in calls_by_node[node]:
                    closure = self.acquires_closure(project, target)
                    for lock, acquisition in closure.items():
                        kind = acquisition.kind
                        if lock in held and kind == "Lock":
                            findings.append(
                                info.module.finding(
                                    node,
                                    self.rule,
                                    f"call to '{target.qualname}' re-acquires "
                                    f"non-reentrant lock {lock} already held "
                                    "here (it takes the lock at "
                                    f"{acquisition.module.path}:"
                                    f"{acquisition.node.lineno})",
                                )
                            )
                            continue
                        for h in held:
                            if h != lock:
                                edges.append(
                                    _Edge(h, lock, info.module, node, target.qualname)
                                )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for child in ast.iter_child_nodes(info.node):
            visit(child, held)
        return findings

    # ------------------------------------------------------------------ #
    # cycle detection
    # ------------------------------------------------------------------ #
    def _cycle_findings(self, project, edges):
        graph = {}
        for edge in edges:
            graph.setdefault(edge.held, set()).add(edge.acquired)
        cyclic = set()
        for edge in edges:
            if self._reachable(graph, edge.acquired, edge.held):
                cyclic.add((edge.held, edge.acquired))
        findings = []
        first_site = {}
        for edge in edges:
            key = (edge.held, edge.acquired)
            if key in cyclic and key not in first_site:
                first_site[key] = edge
        for (held, acquired), edge in sorted(first_site.items()):
            opposite = first_site.get((acquired, held))
            if opposite is not None:
                detail = (
                    f"the opposite order is taken at "
                    f"{opposite.module.path}:{opposite.node.lineno}"
                )
            else:
                detail = "a longer cycle through the lock graph closes the loop"
            via = f" via '{edge.via}'" if edge.via else ""
            findings.append(
                edge.module.finding(
                    edge.node,
                    self.rule,
                    f"lock-order cycle: acquiring {acquired}{via} while "
                    f"holding {held}; {detail} — potential deadlock",
                )
            )
        return findings

    @staticmethod
    def _reachable(graph, start, goal):
        seen, stack = set(), [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False


__all__ = ["LockOrderChecker"]
