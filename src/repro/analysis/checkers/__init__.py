"""The repro-lint checkers (see each module's docstring for the rule).

Five module-scope rules from PR 7 (unchanged API) plus four project-scope
families over the whole-program :class:`~repro.analysis.project.ProjectModel`.
"""

from repro.analysis.checkers.deadline import DeadlinePropagationChecker
from repro.analysis.checkers.futures import FutureResolutionChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.lock_order import LockOrderChecker
from repro.analysis.checkers.metrics_conformance import MetricsConformanceChecker
from repro.analysis.checkers.pickle_safety import PickleSafetyChecker
from repro.analysis.checkers.process_boundary import ProcessPoolBoundaryChecker
from repro.analysis.checkers.protocol_conformance import ProtocolConformanceChecker
from repro.analysis.checkers.resources import ResourceLifecycleChecker

ALL_CHECKERS = (
    LockDisciplineChecker,
    PickleSafetyChecker,
    DeadlinePropagationChecker,
    FutureResolutionChecker,
    ProcessPoolBoundaryChecker,
    LockOrderChecker,
    ResourceLifecycleChecker,
    MetricsConformanceChecker,
    ProtocolConformanceChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "DeadlinePropagationChecker",
    "FutureResolutionChecker",
    "LockDisciplineChecker",
    "LockOrderChecker",
    "MetricsConformanceChecker",
    "PickleSafetyChecker",
    "ProcessPoolBoundaryChecker",
    "ProtocolConformanceChecker",
    "ResourceLifecycleChecker",
]
