"""The five repro-lint checkers (see each module's docstring for the rule)."""

from repro.analysis.checkers.deadline import DeadlinePropagationChecker
from repro.analysis.checkers.futures import FutureResolutionChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.pickle_safety import PickleSafetyChecker
from repro.analysis.checkers.process_boundary import ProcessPoolBoundaryChecker

ALL_CHECKERS = (
    LockDisciplineChecker,
    PickleSafetyChecker,
    DeadlinePropagationChecker,
    FutureResolutionChecker,
    ProcessPoolBoundaryChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "DeadlinePropagationChecker",
    "FutureResolutionChecker",
    "LockDisciplineChecker",
    "PickleSafetyChecker",
    "ProcessPoolBoundaryChecker",
]
