"""Parsed source files plus the comment conventions repro-lint understands.

:class:`SourceModule` wraps one Python file: its AST, its comments (parsed
with :mod:`tokenize`, so a ``#`` inside a string never reads as a comment),
the ``# repro-lint: ignore[...]`` suppressions, and the annotation
conventions (``# guarded-by:``, ``# holds:``) the checkers consume.

Suppression scoping: a suppression on an ordinary line covers findings
anchored to that line; a suppression on a ``def`` or ``class`` header line
covers every finding anchored inside that scope.  Suppressions must carry a
justification — a bare ``ignore[...]`` is reported as a ``suppression``
finding so silencing a rule always leaves a written reason behind.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

from repro.analysis.findings import Finding

#: ``# repro-lint: ignore[rule-a, rule-b] why this is fine``
SUPPRESSION_RE = re.compile(r"repro-lint:\s*ignore\[([^\]]*)\]\s*(.*)")
#: ``# guarded-by: _lock`` — attribute protected by ``self._lock``.
GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")
#: ``# holds: _lock`` — method is documented to run with the lock held.
HOLDS_RE = re.compile(r"holds:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)")
#: ``# released-by: close`` — the named teardown method releases this
#: resource attribute (verified by the resource-lifecycle checker).
RELEASED_BY_RE = re.compile(r"released-by:\s*([A-Za-z_]\w*)")

#: Rule id for malformed suppressions (not itself suppressible).
SUPPRESSION_RULE = "suppression"


def node_name(node):
    """Terminal identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(call):
    """Terminal identifier of a call's callee, or None."""
    return node_name(call.func) if isinstance(call, ast.Call) else None


def is_self_attribute(node, attr=None):
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def mentions_identifier(node, identifier):
    """True when ``identifier`` appears as a Name or attribute in ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == identifier:
            return True
        if isinstance(child, ast.Attribute) and child.attr == identifier:
            return True
    return False


class Suppression:
    """One parsed ``ignore[...]`` directive."""

    __slots__ = ("line", "rules", "justification")

    def __init__(self, line, rules, justification):
        self.line = line
        self.rules = rules
        self.justification = justification

    def covers(self, rule):
        return rule in self.rules or "*" in self.rules


class SourceModule:
    """One analyzed file: source text, AST, comments, conventions."""

    def __init__(self, path, text):
        self.path = str(path)
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        self.comments = self._scan_comments(text)
        self.suppressions = {}  # line -> Suppression
        self.bad_suppressions = []  # Finding list for ignore[] without a reason
        self._scan_suppressions()
        self._scopes = self._scan_scopes()
        self._parents = {
            child: parent
            for parent in ast.walk(self.tree)
            for child in ast.iter_child_nodes(parent)
        }

    # ------------------------------------------------------------------ #
    # comments / suppressions
    # ------------------------------------------------------------------ #
    @staticmethod
    def _scan_comments(text):
        comments = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string.lstrip("#").strip()
        except tokenize.TokenError:
            pass  # the ast parse already succeeded; comments degrade gracefully
        return comments

    def _scan_suppressions(self):
        for line, comment in self.comments.items():
            match = SUPPRESSION_RE.search(comment)
            if match is None:
                continue
            rules = {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            justification = match.group(2).strip(" -—:").strip()
            if not rules or len(justification) < 3:
                self.bad_suppressions.append(
                    Finding(
                        path=self.path,
                        line=line,
                        col=1,
                        rule=SUPPRESSION_RULE,
                        message=(
                            "suppression needs named rules and a justification: "
                            "`# repro-lint: ignore[rule] <why this is safe>`"
                        ),
                    )
                )
                continue
            self.suppressions[line] = Suppression(line, rules, justification)

    def _scan_scopes(self):
        """(header line, end line) for every def/class, innermost last."""
        scopes = []
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                scopes.append((node.lineno, node.end_lineno or node.lineno))
        return scopes

    def suppressed(self, rule, line):
        """True when ``rule`` is suppressed at ``line`` (or its scope header)."""
        direct = self.suppressions.get(line)
        if direct is not None and direct.covers(rule):
            return True
        for header, end in self._scopes:
            if header <= line <= end:
                scoped = self.suppressions.get(header)
                if scoped is not None and scoped.covers(rule):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # annotation conventions
    # ------------------------------------------------------------------ #
    def guarded_by(self, node):
        """Lock name from a ``# guarded-by:`` comment on the node's lines."""
        for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            comment = self.comments.get(line)
            if comment:
                match = GUARDED_BY_RE.search(comment)
                if match:
                    return match.group(1)
        return None

    def holds(self, func_node):
        """Locks a ``# holds:`` comment on the def header declares as held."""
        header_end = func_node.body[0].lineno if func_node.body else func_node.lineno
        for line in range(func_node.lineno, header_end + 1):
            comment = self.comments.get(line)
            if comment:
                match = HOLDS_RE.search(comment)
                if match:
                    return {name.strip() for name in match.group(1).split(",")}
        return set()

    def released_by(self, node):
        """Teardown method named by ``# released-by:`` on the node's lines."""
        for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            comment = self.comments.get(line)
            if comment:
                match = RELEASED_BY_RE.search(comment)
                if match:
                    return match.group(1)
        return None

    # ------------------------------------------------------------------ #
    # tree helpers
    # ------------------------------------------------------------------ #
    def parent(self, node):
        return self._parents.get(node)

    def classes(self):
        return [n for n in ast.walk(self.tree) if isinstance(n, ast.ClassDef)]

    def functions(self):
        return [
            n
            for n in ast.walk(self.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def finding(self, node, rule, message):
        """Build a Finding anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


__all__ = [
    "GUARDED_BY_RE",
    "HOLDS_RE",
    "RELEASED_BY_RE",
    "SUPPRESSION_RE",
    "SUPPRESSION_RULE",
    "SourceModule",
    "Suppression",
    "call_name",
    "is_self_attribute",
    "mentions_identifier",
    "node_name",
]
