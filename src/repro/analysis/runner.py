"""Analyzer entry point: file discovery, two-phase dispatch, CLI.

``python -m repro.analysis <paths...>`` parses every ``.py`` file under the
given paths, builds the whole-program
:class:`~repro.analysis.project.ProjectModel` (phase 1), then runs every
checker (phase 2): module-scope checkers per file, project-scope checkers
once over the model.  ``# repro-lint: ignore[...]`` suppressions apply to
both.  Output is compiler format (``path:line:col: [rule] message``) or
``--format json``; ``--baseline`` subtracts accepted findings recorded by
``--write-baseline``.

Exit codes: 0 clean, 1 findings, 2 usage or syntax errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    finding_to_dict,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import sort_findings
from repro.analysis.project import ProjectModel
from repro.analysis.source import SourceModule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def iter_python_files(paths):
    """Every ``.py`` file under ``paths`` (files or directories), sorted."""
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def load_modules(paths):
    """Parse every file; returns (modules, error strings)."""
    modules, errors = [], []
    for file in iter_python_files(paths):
        try:
            text = file.read_text(encoding="utf-8")
            modules.append(SourceModule(file, text))
        except (SyntaxError, UnicodeDecodeError) as error:
            errors.append(f"{file}: cannot parse: {error}")
    return modules, errors


def run_checkers(modules, rules=None):
    """Two-phase run over parsed modules; sorted findings.

    Phase 1 builds the shared :class:`ProjectModel`; phase 2 dispatches by
    checker scope — ``module`` checkers see each file, ``project`` checkers
    see the model once.  Suppressions are applied by mapping every finding
    back to the module that owns its path.
    """
    project = ProjectModel(modules)
    checkers = [
        cls() for cls in ALL_CHECKERS if rules is None or cls.rule in rules
    ]
    findings = []
    for module in modules:
        findings.extend(module.bad_suppressions)
    for checker in checkers:
        if checker.scope == "project":
            for finding in checker.check_project(project):
                module = project.by_path.get(finding.path)
                if module is None or not module.suppressed(
                    finding.rule, finding.line
                ):
                    findings.append(finding)
        else:
            for module in modules:
                for finding in checker.check(module, project):
                    if not module.suppressed(finding.rule, finding.line):
                        findings.append(finding)
    return sort_findings(findings)


def analyze_paths(paths, rules=None):
    """Analyze files/directories; returns (sorted findings, parse errors)."""
    modules, errors = load_modules(paths)
    return run_checkers(modules, rules=rules), errors


def analyze_source(text, path="<memory>", rules=None):
    """Analyze one in-memory source string (test/fixture convenience)."""
    module = SourceModule(path, text)
    return run_checkers([module], rules=rules)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: concurrency & invariant checks for this repo",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        choices=sorted(cls.rule for cls in ALL_CHECKERS),
        help="run only the named rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output: compiler lines (text) or a JSON report",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for cls in ALL_CHECKERS:
            print(f"{cls.rule}: {cls.description}")
        return EXIT_CLEAN
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: at least one path is required", file=sys.stderr)
        return EXIT_ERROR

    try:
        findings, errors = analyze_paths(options.paths, rules=options.rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    if options.write_baseline:
        write_baseline(options.write_baseline, findings)
        print(
            f"repro-lint: baseline of {len(findings)} finding(s) written to "
            f"{options.write_baseline}",
            file=sys.stderr,
        )
        return EXIT_ERROR if errors else EXIT_CLEAN

    baselined = 0
    if options.baseline:
        try:
            keys = load_baseline(options.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return EXIT_ERROR
        findings, baselined = apply_baseline(findings, keys)

    if options.format == "json":
        report = {
            "findings": [finding_to_dict(f) for f in findings],
            "errors": errors,
            "baselined": baselined,
        }
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return EXIT_ERROR
    suffix = f" ({baselined} baselined)" if baselined else ""
    if findings:
        print(f"repro-lint: {len(findings)} finding(s){suffix}", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"repro-lint: clean{suffix}", file=sys.stderr)
    return EXIT_CLEAN


__all__ = [
    "ALL_CHECKERS",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_modules",
    "main",
    "run_checkers",
]
