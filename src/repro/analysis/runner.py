"""Analyzer entry point: file discovery, checker dispatch, CLI.

``python -m repro.analysis <paths...>`` parses every ``.py`` file under the
given paths, builds the cross-module :class:`~repro.analysis.checker.Project`
view, runs every checker, applies ``# repro-lint: ignore[...]``
suppressions, and prints findings in compiler format (``path:line:col:
[rule] message``) sorted by location so output is stable.

Exit codes: 0 clean, 1 findings, 2 usage or syntax errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.checker import Project
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import sort_findings
from repro.analysis.source import SourceModule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def iter_python_files(paths):
    """Every ``.py`` file under ``paths`` (files or directories), sorted."""
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def load_modules(paths):
    """Parse every file; returns (modules, error strings)."""
    modules, errors = [], []
    for file in iter_python_files(paths):
        try:
            text = file.read_text(encoding="utf-8")
            modules.append(SourceModule(file, text))
        except (SyntaxError, UnicodeDecodeError) as error:
            errors.append(f"{file}: cannot parse: {error}")
    return modules, errors


def run_checkers(modules, rules=None):
    """Run the selected checkers over parsed modules; sorted findings."""
    project = Project(modules)
    checkers = [
        cls() for cls in ALL_CHECKERS if rules is None or cls.rule in rules
    ]
    findings = []
    for module in modules:
        findings.extend(module.bad_suppressions)
        for checker in checkers:
            for finding in checker.check(module, project):
                if not module.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    return sort_findings(findings)


def analyze_paths(paths, rules=None):
    """Analyze files/directories; returns (sorted findings, parse errors)."""
    modules, errors = load_modules(paths)
    return run_checkers(modules, rules=rules), errors


def analyze_source(text, path="<memory>", rules=None):
    """Analyze one in-memory source string (test/fixture convenience)."""
    module = SourceModule(path, text)
    return run_checkers([module], rules=rules)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: concurrency & invariant checks for this repo",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        choices=sorted(cls.rule for cls in ALL_CHECKERS),
        help="run only the named rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for cls in ALL_CHECKERS:
            print(f"{cls.rule}: {cls.description}")
        return EXIT_CLEAN
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: at least one path is required", file=sys.stderr)
        return EXIT_ERROR

    try:
        findings, errors = analyze_paths(options.paths, rules=options.rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if errors:
        return EXIT_ERROR
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    print("repro-lint: clean", file=sys.stderr)
    return EXIT_CLEAN


__all__ = [
    "ALL_CHECKERS",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_modules",
    "main",
    "run_checkers",
]
