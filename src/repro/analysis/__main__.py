"""``python -m repro.analysis`` — run repro-lint from the command line."""

from repro.analysis.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
