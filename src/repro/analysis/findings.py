"""The findings model shared by every repro-lint checker.

A :class:`Finding` pins one rule violation to a ``file:line:col`` anchor —
the rendered form is the standard compiler format, so terminals and CI log
viewers make it clickable.  Findings sort by location (then rule, then
message) so analyzer output is stable across runs and checker execution
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str = field(compare=True, default="")
    message: str = ""

    def render(self):
        """Compiler-style ``path:line:col: rule message`` (clickable)."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def sort_findings(findings):
    """Deterministic output order: location, then rule, then message."""
    return sorted(findings)


__all__ = ["Finding", "sort_findings"]
