"""Finding baselines: land strict-for-new-code without a flag day.

A baseline is a committed JSON file of *accepted* findings.  The runner
(with ``--baseline``) subtracts baselined findings from its output, so a
new rule can ship enforcing cleanliness for new code while the recorded
legacy findings are burned down over time.  Matching is by ``(path, rule,
message)`` — deliberately *not* by line, so unrelated edits that shift a
legacy finding up or down do not resurrect it, while any change to what
the finding says (or a second instance of it) fails the gate.

``--write-baseline`` records the current findings; CI runs with
``--baseline analysis-baseline.json`` and fails on anything new.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def baseline_key(finding):
    """The identity a baseline matches on (line numbers excluded)."""
    return (Path(finding.path).as_posix(), finding.rule, finding.message)


def load_baseline(path):
    """Set of accepted ``(path, rule, message)`` keys from a baseline file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} baseline file")
    keys = set()
    for entry in data.get("findings", []):
        keys.add((Path(entry["path"]).as_posix(), entry["rule"], entry["message"]))
    return keys


def write_baseline(path, findings):
    """Record ``findings`` as the accepted baseline (sorted, stable)."""
    entries = sorted(
        {baseline_key(finding) for finding in findings}
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": path_, "rule": rule, "message": message}
            for path_, rule, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(findings, keys):
    """(kept findings, number suppressed by the baseline)."""
    kept = [f for f in findings if baseline_key(f) not in keys]
    return kept, len(findings) - len(kept)


def finding_to_dict(finding):
    """JSON-ready form of a finding (the ``--format json`` record)."""
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
    }


def finding_from_dict(entry):
    return Finding(
        path=entry["path"],
        line=entry.get("line", 1),
        col=entry.get("col", 1),
        rule=entry["rule"],
        message=entry["message"],
    )


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "baseline_key",
    "finding_from_dict",
    "finding_to_dict",
    "load_baseline",
    "write_baseline",
]
