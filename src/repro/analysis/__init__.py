"""repro-lint: AST-based concurrency & invariant analysis for this repo.

The serving stack accumulated a family of cross-cutting invariants that no
unit test checks mechanically: attributes guarded by locks must only be
touched with the lock held, lock-owning classes that get pickled must strip
their locks and copy their containers *under* the lock (the PR 6
snapshot-under-traffic bug), ``deadline`` budgets must be threaded through
every chase call chain, acquired futures must resolve on every path, and
nothing carrying a lock may flow into a process-pool submission.  Following
the spirit of integrity checking in deductive databases — declare the
invariant once, check every state mechanically — this package encodes those
invariants as project-specific static checks over the stdlib :mod:`ast`.

Run it as::

    python -m repro.analysis src/repro            # exit 0 = clean
    python -m repro.analysis --list-rules

Conventions (see the README's "Static analysis" section):

* ``# guarded-by: <lock>`` on an attribute assignment declares the
  attribute as protected by ``self.<lock>``.
* ``# holds: <lock>`` on a ``def`` line declares that callers invoke the
  method with ``self.<lock>`` already held.
* ``# repro-lint: ignore[rule-a, rule-b] <justification>`` suppresses the
  named rules on that line (or, on a ``def``/``class`` line, in that whole
  scope).  A suppression without a justification is itself a finding.
"""

from repro.analysis.findings import Finding
from repro.analysis.runner import ALL_CHECKERS, analyze_paths, analyze_source, main

__all__ = ["ALL_CHECKERS", "Finding", "analyze_paths", "analyze_source", "main"]
