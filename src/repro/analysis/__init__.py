"""repro-lint: whole-program concurrency & invariant analysis for this repo.

The serving stack accumulated a family of cross-cutting invariants that no
unit test checks mechanically.  Following the spirit of integrity checking
in deductive databases — declare the invariant once, check every state
mechanically — this package encodes them as project-specific static checks
over the stdlib :mod:`ast`, in two phases: phase 1 builds a
:class:`~repro.analysis.project.ProjectModel` (module graph, import/alias
symbol table, approximate call graph), phase 2 runs the checkers.

Module-scope rules (per file, PR 7): lock-discipline, pickle-safety,
deadline-propagation (now alias-aware and interprocedural),
future-resolution, process-pool-boundary.  Project-scope rules (over the
model): lock-ordering (global lock-acquisition-order graph, cycles are
potential deadlocks), resource-lifecycle (sockets/threads/executors/files
must be released, ``# released-by:`` teardowns are verified),
metrics-conformance (every gauge recorded and exported), and
protocol-conformance (record fields must come from the protocol codec).

Run it as::

    python -m repro.analysis src/repro            # exit 0 = clean
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src/repro --baseline analysis-baseline.json
    python -m repro.analysis --list-rules

Conventions (see the README's "Static analysis" section):

* ``# guarded-by: <lock>`` on an attribute assignment declares the
  attribute as protected by ``self.<lock>``.
* ``# holds: <lock>`` on a ``def`` line declares that callers invoke the
  method with ``self.<lock>`` already held.
* ``# released-by: <method>`` on a resource acquisition names the teardown
  method that releases it; the analyzer verifies the method exists and
  performs the release.
* ``# repro-lint: ignore[rule-a, rule-b] <justification>`` suppresses the
  named rules on that line (or, on a ``def``/``class`` line, in that whole
  scope).  A suppression without a justification is itself a finding.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel
from repro.analysis.runner import ALL_CHECKERS, analyze_paths, analyze_source, main

__all__ = [
    "ALL_CHECKERS",
    "Finding",
    "ProjectModel",
    "analyze_paths",
    "analyze_source",
    "load_baseline",
    "main",
    "write_baseline",
]
