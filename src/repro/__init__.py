"""repro: a Chase & Backchase (C&B) query optimizer.

A from-scratch Python reproduction of the system evaluated in
*"A Chase Too Far?"* (Popa, Deutsch, Sahuguet, Tannen; SIGMOD 2000 / UPenn TR
MS-CIS-99-28): path-conjunctive queries and embedded dependencies, the chase
to a universal plan, the backchase enumeration of minimal plans, the OQF and
OCS stratification strategies, an in-memory execution engine, and the three
experimental configurations (EC1/EC2/EC3) together with drivers for every
table and figure of the paper's evaluation.

Quickstart::

    from repro import Catalog, CBOptimizer, PCQuery

    catalog = Catalog()
    catalog.add_relation("R", ["A", "B", "C", "E"])
    catalog.add_relation("S", ["A"])
    catalog.add_foreign_key("R", ["A"], "S", ["A"])

    query = PCQuery.parse(
        "select struct(A: r.A, E: r.E) from R r where r.B = 1 and r.C = 2"
    )
    plans = CBOptimizer(catalog).optimize(query, strategy="fb").plans
"""

from repro.chase.optimizer import CBOptimizer, OptimizationResult
from repro.chase.plans import Plan
from repro.cq.query import PCQuery
from repro.engine.cost import CostModel
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.errors import (
    ChaseError,
    ChaseTimeout,
    ConstraintError,
    ExecutionError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceOverloaded,
)
from repro.schema.catalog import Catalog, Statistics
from repro.schema.constraints import Dependency, Skeleton
from repro.service import (
    OptimizerClient,
    OptimizerServer,
    OptimizerService,
    ServiceRequest,
    ServiceResponse,
)
from repro.workloads import build_ec1, build_ec2, build_ec3

__version__ = "0.1.0"

__all__ = [
    "CBOptimizer",
    "Catalog",
    "ChaseError",
    "ChaseTimeout",
    "ConstraintError",
    "CostModel",
    "Database",
    "Dependency",
    "ExecutionError",
    "OptimizationResult",
    "OptimizerClient",
    "OptimizerServer",
    "OptimizerService",
    "PCQuery",
    "ParseError",
    "Plan",
    "QueryError",
    "ReproError",
    "SchemaError",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "Skeleton",
    "Statistics",
    "__version__",
    "build_ec1",
    "build_ec2",
    "build_ec3",
    "execute",
]
