"""Metrics for the long-lived optimizer service.

Everything the service reports — per-request latencies, per-shard cache,
memo, queue and batching counters, service-wide aggregates — lives here,
together with the tiny percentile helper the benchmarks use for p50/p95
latency.  All collectors are thread-safe: requests complete on shard runner
threads and read-side calls (``OptimizerService.stats()``) can arrive
concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field


def percentile(values, fraction):
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]).

    Returns 0.0 on an empty input so latency summaries degrade gracefully
    before any request completed.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class RequestMetrics:
    """Per-request accounting attached to every :class:`ServiceResponse`.

    ``cache_hits`` / ``cache_misses`` (chase fixpoints) and ``memo_hits`` /
    ``memo_misses`` (containment verdicts) are deltas of the session's
    counters across the request's runtime.  With ``max_inflight > 1``,
    concurrent requests against the *same* catalog share that session, so
    the deltas are best-effort attribution (they may include a concurrent
    sibling's activity); the :class:`ShardStats` aggregates are always
    exact.  Run single-inflight when per-request numbers must be precise.
    """

    request_id: object
    shard: int
    session: str
    strategy: str
    latency: float
    plan_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    timed_out: bool = False
    error: str | None = None


@dataclass
class ShardStats:
    """One shard's snapshot: sessions, queue, batching, cache and memo state.

    ``queue_depth`` is the *current* admitted-request gauge (queued on the
    runner pool plus executing), ``queue_peak`` its high-water mark and
    ``rejected`` the requests shed at admission
    (:class:`~repro.errors.ServiceOverloaded`).  ``runner_failures`` counts
    requests whose runner thread died executing them (each resolved with a
    typed :class:`~repro.errors.RunnerCrash`), ``runner_restarts`` the
    replacement runners the supervisor spawned.
    """

    shard: int
    sessions: int
    sessions_evicted: int
    requests: int
    waves: int
    batched_items: int
    cross_request_waves: int
    cache_caches: int
    cache_entries: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    queue_depth: int = 0
    queue_peak: int = 0
    rejected: int = 0
    runner_restarts: int = 0
    runner_failures: int = 0
    memo_entries: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def memo_hit_rate(self):
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


@dataclass
class ServiceStats:
    """Service-wide snapshot returned by :meth:`OptimizerService.stats`.

    ``latencies`` (and therefore the percentiles) cover the collector's
    most recent bounded window; ``requests``/``errors``/``rejected`` are
    exact totals (rejected requests never execute, so they appear in no
    other counter).  ``recoveries`` counts cold-start recoveries after a
    snapshot that could not be loaded (missing/corrupt/wrong version) and
    ``stale_sessions`` the per-session loads skipped because their
    constraint-set signature no longer matched the snapshot manifest.
    """

    shards: list = field(default_factory=list)
    requests: int = 0
    errors: int = 0
    rejected: int = 0
    recoveries: int = 0
    stale_sessions: int = 0
    snapshots_loaded: int = 0
    sessions_restored: int = 0
    sync_exports: int = 0
    sync_sessions_exported: int = 0
    sync_merges: int = 0
    sync_sessions_merged: int = 0
    sync_rejected: int = 0
    latencies: list = field(default_factory=list, repr=False)

    @property
    def cache_hits(self):
        return sum(shard.cache_hits for shard in self.shards)

    @property
    def cache_misses(self):
        return sum(shard.cache_misses for shard in self.shards)

    @property
    def cache_evictions(self):
        return sum(shard.cache_evictions for shard in self.shards)

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def memo_hits(self):
        return sum(shard.memo_hits for shard in self.shards)

    @property
    def memo_misses(self):
        return sum(shard.memo_misses for shard in self.shards)

    @property
    def memo_evictions(self):
        return sum(shard.memo_evictions for shard in self.shards)

    @property
    def memo_hit_rate(self):
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def queue_depth(self):
        return sum(shard.queue_depth for shard in self.shards)

    @property
    def queue_peak(self):
        return sum(shard.queue_peak for shard in self.shards)

    @property
    def runner_restarts(self):
        return sum(shard.runner_restarts for shard in self.shards)

    @property
    def runner_failures(self):
        return sum(shard.runner_failures for shard in self.shards)

    @property
    def waves(self):
        return sum(shard.waves for shard in self.shards)

    @property
    def cross_request_waves(self):
        return sum(shard.cross_request_waves for shard in self.shards)

    @property
    def p50_latency(self):
        return percentile(self.latencies, 0.50)

    @property
    def p95_latency(self):
        return percentile(self.latencies, 0.95)

    @property
    def p99_latency(self):
        return percentile(self.latencies, 0.99)

    def as_dict(self):
        """JSON-friendly summary (the CLI's ``serve``/``batch`` print this)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "shards": len(self.shards),
            "sessions": sum(shard.sessions for shard in self.shards),
            "sessions_evicted": sum(shard.sessions_evicted for shard in self.shards),
            "queue_depth": self.queue_depth,
            "queue_peak": self.queue_peak,
            "runner_restarts": self.runner_restarts,
            "runner_failures": self.runner_failures,
            "recoveries": self.recoveries,
            "stale_sessions": self.stale_sessions,
            "snapshots_loaded": self.snapshots_loaded,
            "sessions_restored": self.sessions_restored,
            "sync_exports": self.sync_exports,
            "sync_sessions_exported": self.sync_sessions_exported,
            "sync_merges": self.sync_merges,
            "sync_sessions_merged": self.sync_sessions_merged,
            "sync_rejected": self.sync_rejected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            "waves": self.waves,
            "cross_request_waves": self.cross_request_waves,
            "p50_latency_s": round(self.p50_latency, 6),
            "p95_latency_s": round(self.p95_latency, 6),
            "p99_latency_s": round(self.p99_latency, 6),
        }


class MetricsCollector:  # repro-lint: ignore[pickle-safety] never pickled — snapshots persist caches, not gauges
    """Thread-safe accumulator for completed-request metrics.

    Latencies are kept in a bounded ring buffer (``max_samples``, default
    4096): a long-lived service must not grow per-request state without
    bound, so the percentiles describe the most recent window while the
    request/error/rejection totals stay exact.
    """

    def __init__(self, max_samples=4096):
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=max_samples)  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._recoveries = 0  # guarded-by: _lock
        self._stale_sessions = 0  # guarded-by: _lock
        self._snapshots_loaded = 0  # guarded-by: _lock
        self._sessions_restored = 0  # guarded-by: _lock
        self._sync_exports = 0  # guarded-by: _lock
        self._sync_sessions_exported = 0  # guarded-by: _lock
        self._sync_merges = 0  # guarded-by: _lock
        self._sync_sessions_merged = 0  # guarded-by: _lock
        self._sync_rejected = 0  # guarded-by: _lock

    def record(self, metrics):
        with self._lock:
            self._requests += 1
            self._latencies.append(metrics.latency)
            if metrics.error is not None:
                self._errors += 1

    def record_rejection(self):
        """Count an admission rejection (the request never executed)."""
        with self._lock:
            self._rejected += 1

    def record_recovery(self):
        """Count a cold-start recovery from an unusable snapshot."""
        with self._lock:
            self._recoveries += 1

    def record_stale_sessions(self, count):
        """Count snapshot sessions skipped for a changed constraint signature."""
        with self._lock:
            self._stale_sessions += count

    def record_snapshot_load(self, sessions):
        """Count one successful snapshot load and the ``sessions`` it restored."""
        with self._lock:
            self._snapshots_loaded += 1
            self._sessions_restored += sessions

    def record_sync_export(self, sessions):
        """Count one fleet sync export and the hot ``sessions`` it shipped."""
        with self._lock:
            self._sync_exports += 1
            self._sync_sessions_exported += sessions

    def record_sync_merge(self, merged, rejected):
        """Count one fleet sync merge: sessions folded in vs. rejected.

        Rejections are digest-mismatch (the peer's constraint set is not the
        one this digest names — its fixpoints are unusable here) or
        malformed entries; both are skipped, never partially merged.
        """
        with self._lock:
            self._sync_merges += 1
            self._sync_sessions_merged += merged
            self._sync_rejected += rejected

    def snapshot(self):
        """Return ``(requests, errors, rejected, recent latencies)`` as copies."""
        with self._lock:
            return self._requests, self._errors, self._rejected, list(self._latencies)

    def sync_snapshot(self):
        """Return the fleet-sync counters as one consistent tuple."""
        with self._lock:
            return (
                self._sync_exports,
                self._sync_sessions_exported,
                self._sync_merges,
                self._sync_sessions_merged,
                self._sync_rejected,
            )

    def recovery_snapshot(self):
        """Return ``(recoveries, stale_sessions, snapshots_loaded, sessions_restored)``."""
        with self._lock:
            return (
                self._recoveries,
                self._stale_sessions,
                self._snapshots_loaded,
                self._sessions_restored,
            )


#: Default latency buckets (seconds) for the per-stage histograms: spaced
#: to resolve both cache-hit requests (sub-millisecond stages) and cold
#: chase fixpoints (seconds).
STAGE_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class StageHistograms:  # repro-lint: ignore[pickle-safety] never pickled — live Prometheus state, not snapshot payload
    """Thread-safe per-stage latency histograms (Prometheus semantics).

    One cumulative-bucket histogram per pipeline stage
    (:data:`repro.trace.STAGES` plus any future instrumentation), fed live
    by :class:`~repro.trace.RequestTrace` observers at record time.  Each
    series keeps per-bucket counts, a running sum and a total count — the
    exact triple the Prometheus text format's ``_bucket``/``_sum``/
    ``_count`` lines need.
    """

    def __init__(self, buckets=STAGE_LATENCY_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._series = {}  # guarded-by: _lock  stage -> [bucket counts + inf, sum, count]

    def observe_stage(self, stage, seconds):
        """Record one observation of ``seconds`` spent in ``stage``."""
        with self._lock:
            series = self._series.setdefault(
                stage, [[0] * (len(self.buckets) + 1), 0.0, 0]
            )
            counts, _, _ = series
            for index, bound in enumerate(self.buckets):
                if seconds <= bound:
                    counts[index] += 1
                    break
            else:
                counts[len(self.buckets)] += 1
            series[1] += seconds
            series[2] += 1

    def snapshot(self):
        """``{stage: {"buckets": [(le, cumulative), ...], "sum", "count"}}``.

        Bucket counts come back *cumulative* (Prometheus ``le`` semantics),
        with a final ``("+Inf", count)`` entry.
        """
        with self._lock:
            series = {
                stage: (list(counts), total, count)
                for stage, (counts, total, count) in self._series.items()
            }
        snapshot = {}
        for stage, (counts, total, count) in sorted(series.items()):
            cumulative = []
            running = 0
            for bound, bucket_count in zip(self.buckets, counts):
                running += bucket_count
                cumulative.append((bound, running))
            cumulative.append(("+Inf", count))
            snapshot[stage] = {
                "buckets": cumulative,
                "sum": total,
                "count": count,
            }
        return snapshot


__all__ = [
    "MetricsCollector",
    "RequestMetrics",
    "STAGE_LATENCY_BUCKETS",
    "ServiceStats",
    "ShardStats",
    "StageHistograms",
    "percentile",
]
