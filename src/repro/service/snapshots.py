"""Crash-safe cache snapshots: atomic writes, manifests, staleness rules.

PR 5's cache persistence wrote a bare pickle at graceful drain — a
``kill -9`` lost every warm cache, a truncated file crashed the next boot,
and nothing detected a snapshot whose constraint sets no longer matched the
state inside it.  This module is the hardened replacement:

* **Atomic writes.**  :func:`write_snapshot` writes to a temp file in the
  snapshot's directory, flushes + fsyncs, then ``os.replace``\\ s it over the
  target: a crash mid-write leaves the previous snapshot intact, never a
  torn file.
* **Manifest + checksum.**  The envelope carries a version, a creation
  timestamp, one manifest entry per session (label + a structural digest of
  its constraint set) and a SHA-256 over the pickled payload.  A flipped
  bit, a truncation, or a future format all fail *detectably*.
* **Staleness invalidation.**  At load time every session's constraint-set
  digest is recomputed from the payload and compared against the manifest:
  state whose constraints changed since the snapshot was taken is skipped
  (cold start for that catalog), never served stale — the incremental-
  maintenance rule (state untouched by a constraint delta survives,
  everything else is invalidated) applied at snapshot granularity.
* **Degrade, never crash.**  Every failure mode raises a typed
  :class:`~repro.errors.SnapshotError`; loaders
  (:meth:`~repro.service.service.OptimizerService.recover_caches`, the CLI)
  log it, count a recovery, and cold-start.
* **Periodic + signal-triggered.**  :class:`SnapshotManager` runs a
  background snapshot loop (``--snapshot-interval``) and exposes a
  ``SIGUSR1`` trigger, so a crashed server restarts from the *latest
  periodic* snapshot instead of the last graceful drain.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import tempfile
import threading
import time

from repro.chase.implication import constraints_digest
from repro.errors import InjectedFault, SnapshotError
from repro.service.faults import maybe_fail
from repro.service.observability.events import log_event

#: Current envelope version.  Version 1 is the PR 5 bare-pickle format
#: (``{"version": 1, "sessions": [...]}``), still readable (no checksum or
#: staleness metadata to verify); version 2 adds the manifest + checksum.
SNAPSHOT_VERSION = 2

_FORMAT = "repro-snapshot"

# ``constraints_digest`` used to live here; it is now the shared structural
# identity in :mod:`repro.chase.implication` (shard placement, the fleet
# router's ring, the sync guard and these manifests all hash the same way).
# Re-exported below for backwards compatibility.


def write_snapshot(path, sessions, faults=None):
    """Atomically write ``sessions`` (list of session dicts) to ``path``.

    Each session dict carries ``signature`` (the frozenset of dependencies),
    ``label``, ``registry`` and ``memo`` — the shape
    :meth:`~repro.service.shard.Shard.export_sessions` produces.  Returns the
    number of sessions written.  Raises :class:`SnapshotError` on IO failure
    (the previous snapshot, if any, is left untouched).
    """
    path = os.fspath(path)
    try:
        # Injected write faults behave exactly like an IO failure: typed,
        # and struck before anything touches the previous snapshot.
        maybe_fail(faults, "snapshot.write", detail=path)
    except InjectedFault as error:
        raise SnapshotError(
            f"cannot write snapshot {path!r}: {error}", path=path, reason="io"
        ) from error
    try:
        payload = pickle.dumps({"version": 1, "sessions": sessions})
    except Exception as error:
        # Sessions are pickled live while the service keeps serving; any
        # serialization failure (including a concurrent-mutation race) must
        # degrade to a typed, counted failed snapshot — the periodic loop
        # retries on the next interval — never crash the snapshot thread.
        raise SnapshotError(
            f"cannot serialize snapshot {path!r}: {error}", path=path, reason="serialize"
        ) from error
    manifest = {
        "version": SNAPSHOT_VERSION,
        "created_at": time.time(),
        "sessions": [
            {
                "label": entry["label"],
                "constraints_digest": constraints_digest(entry["signature"]),
            }
            for entry in sessions
        ],
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    envelope = {"format": _FORMAT, "version": SNAPSHOT_VERSION, "manifest": manifest, "payload": payload}
    directory = os.path.dirname(path) or "."
    try:
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, prefix=os.path.basename(path) + ".tmp-", delete=False
        )
        try:
            with handle:
                pickle.dump(envelope, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot {path!r}: {error}", path=path, reason="io"
        ) from error
    return len(sessions)


def read_snapshot(path, faults=None):
    """Read and validate a snapshot; returns ``(manifest, session entries)``.

    Each returned entry is ``(session_dict, stale)`` where ``stale`` is True
    when the session's recomputed constraint digest no longer matches the
    manifest (the caller must skip it — its fixpoints and verdicts were
    computed under different constraints).  Raises :class:`SnapshotError`
    for every file-level failure: missing, unreadable, truncated,
    checksum mismatch, unsupported version.

    Legacy (PR 5, version 1) bare-pickle snapshots load with a synthesized
    manifest: they carry no checksum or digests to verify, so their sessions
    are all treated as fresh.
    """
    path = os.fspath(path)
    try:
        maybe_fail(faults, "snapshot.read", detail=path)
    except InjectedFault as error:
        raise SnapshotError(
            f"cannot read snapshot {path!r}: {error}", path=path, reason="io"
        ) from error
    if not os.path.exists(path):
        raise SnapshotError(f"snapshot {path!r} does not exist", path=path, reason="missing")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except OSError as error:
        raise SnapshotError(
            f"cannot read snapshot {path!r}: {error}", path=path, reason="io"
        ) from error
    except Exception as error:  # truncated / garbage / not a pickle at all
        raise SnapshotError(
            f"snapshot {path!r} is corrupt: {error}", path=path, reason="corrupt"
        ) from error
    if not isinstance(envelope, dict):
        raise SnapshotError(
            f"snapshot {path!r} is corrupt: not a snapshot envelope", path=path, reason="corrupt"
        )

    if envelope.get("format") != _FORMAT:
        # Legacy bare-pickle layout from PR 5: {"version": 1, "sessions": [...]}.
        if envelope.get("version") == 1 and isinstance(envelope.get("sessions"), list):
            manifest = {"version": 1, "created_at": None, "sessions": [], "payload_sha256": None}
            return manifest, [(entry, False) for entry in envelope["sessions"]]
        raise SnapshotError(
            f"snapshot {path!r} is corrupt: unrecognised layout", path=path, reason="corrupt"
        )

    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has unsupported version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})",
            path=path,
            reason="version",
        )
    manifest = envelope.get("manifest") or {}
    payload = envelope.get("payload")
    if not isinstance(payload, bytes):
        raise SnapshotError(
            f"snapshot {path!r} is corrupt: missing payload", path=path, reason="corrupt"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("payload_sha256"):
        raise SnapshotError(
            f"snapshot {path!r} failed its payload checksum "
            f"(manifest {manifest.get('payload_sha256')!r}, actual {digest!r})",
            path=path,
            reason="checksum",
        )
    try:
        body = pickle.loads(payload)
        sessions = body["sessions"]
    except Exception as error:
        raise SnapshotError(
            f"snapshot {path!r} payload is corrupt: {error}", path=path, reason="corrupt"
        ) from error

    manifest_sessions = manifest.get("sessions") or []
    entries = []
    for index, entry in enumerate(sessions):
        recorded = (
            manifest_sessions[index].get("constraints_digest")
            if index < len(manifest_sessions)
            else None
        )
        stale = recorded != constraints_digest(entry["signature"])
        entries.append((entry, stale))
    return manifest, entries


class SnapshotManager:  # repro-lint: ignore[pickle-safety] never pickled — it *writes* snapshots; the payload is session state, not the manager
    """Periodic + signal-triggered snapshotting for a running service.

    Wraps :meth:`OptimizerService.save_caches` in a background loop so a
    ``kill -9`` loses at most ``interval`` seconds of warmed state, and
    installs a ``SIGUSR1`` trigger for operator-requested snapshots without
    a shutdown.  Failed saves are counted (``snapshot_failures``), logged
    through ``on_error``, and never interrupt serving.

    Concurrency invariants (checked by ``repro-lint``): :meth:`save` can be
    entered from three threads at once — the periodic loop, the SIGUSR1
    trigger's synchronous fallback, and :meth:`stop`'s final save — so both
    the write itself *and* the outcome counters are taken under ``_lock``;
    and every pickled container must be copied under the lock of the object
    that owns it (``ChaseCache.__getstate__`` etc.), which is what keeps a
    snapshot taken mid-traffic from dying with "OrderedDict mutated during
    iteration" (the PR 6 bug the pickle-safety rule now guards).

    Usage::

        manager = SnapshotManager(service, "warm.snap", interval=30.0)
        manager.install_signal_handler()      # SIGUSR1 -> snapshot now
        manager.start()                       # periodic loop
        ...
        manager.stop()                        # final snapshot + join
    """

    def __init__(
        self, service, path, interval=None, faults=None, on_error=None, event_log=None
    ):
        if interval is not None and interval <= 0:
            raise ValueError(f"snapshot interval must be > 0 or None, got {interval!r}")
        self.service = service
        self.path = os.fspath(path)
        self.interval = interval
        self.faults = faults
        self.on_error = on_error
        self.event_log = event_log
        self.snapshots_written = 0  # guarded-by: _lock
        self.snapshot_failures = 0  # guarded-by: _lock
        self.last_error = None  # guarded-by: _lock
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self._thread = None
        self._lock = threading.Lock()
        self._previous_handler = None

    # ------------------------------------------------------------------ #
    # saving
    # ------------------------------------------------------------------ #
    def save(self):
        """Take one snapshot now; returns sessions saved, or None on failure.

        The outcome counters are updated under the same ``_lock`` that
        serialises writers: they used to be bumped outside it, so two
        concurrent saves (loop + signal) could lose an increment and
        ``stats()`` could report totals that never coexisted.
        """
        try:
            with self._lock:  # one writer at a time (loop + signal + stop)
                saved = self.service.save_caches(self.path, faults=self.faults)
                self.snapshots_written += 1
            log_event(self.event_log, "snapshot.saved", path=self.path, sessions=saved)
            return saved
        except SnapshotError as error:
            with self._lock:
                self.snapshot_failures += 1
                self.last_error = str(error)
            log_event(
                self.event_log, "snapshot.failed", path=self.path, error=str(error)
            )
            if self.on_error is not None:
                self.on_error(error)
            return None

    def trigger(self):
        """Request an immediate snapshot from the background loop.

        Falls back to a synchronous :meth:`save` when the loop is not
        running (no ``interval``), so SIGUSR1 works either way.
        """
        if self._thread is not None and self._thread.is_alive():
            self._wake.set()
        else:
            self.save()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        """Start the periodic loop (no-op without an ``interval``)."""
        if self.interval is None or self._thread is not None:
            return self
        self._thread = threading.Thread(  # released-by: stop
            target=self._loop, name="svc-snapshots", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self):
        while not self._stopped.is_set():
            self._wake.wait(timeout=self.interval)
            if self._stopped.is_set():
                return
            self._wake.clear()
            self.save()

    def stop(self, final_save=True):
        """Stop the loop; by default take one last (drain-time) snapshot."""
        self._stopped.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final_save:
            self.save()

    # ------------------------------------------------------------------ #
    # signals
    # ------------------------------------------------------------------ #
    def install_signal_handler(self, signum=None):
        """Install the SIGUSR1 trigger (main thread only; returns ``self``).

        The previous handler is remembered and re-installed by
        :meth:`restore_signal_handler`.  On platforms without ``SIGUSR1``
        (or off the main thread) this is a no-op.
        """
        signum = signum if signum is not None else getattr(signal, "SIGUSR1", None)
        if signum is None:
            return self
        try:
            self._previous_handler = (signum, signal.signal(signum, self._on_signal))
        except ValueError:  # not the main thread
            self._previous_handler = None
        return self

    def _on_signal(self, signum, frame):
        self.trigger()

    def restore_signal_handler(self):
        if self._previous_handler is not None:
            signum, handler = self._previous_handler
            signal.signal(signum, handler)
            self._previous_handler = None

    def stats(self):
        with self._lock:
            return {
                "snapshots_written": self.snapshots_written,
                "snapshot_failures": self.snapshot_failures,
                "last_error": self.last_error,
            }


__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotManager",
    "constraints_digest",
    "read_snapshot",
    "write_snapshot",
]
