"""Client for the optimizer service's TCP front end.

:class:`OptimizerClient` speaks the JSONL protocol of
:mod:`repro.service.protocol` over one socket.  Because the server streams
responses *as they complete* (out of order), the client runs a reader
thread that demultiplexes incoming records back to per-request futures by
``id`` — which makes the client safe to share across threads: the
concurrency stress suite hammers one connection from many threads and every
request still gets exactly its own response.

Resilience: every transport failure is *typed* and every in-flight future
resolves.  A malformed or truncated response line fails all pending
requests with :class:`~repro.errors.ProtocolError` and tears the connection
down (a demux that has lost framing cannot trust anything after the bad
line); EOF or a socket error fails them with
:class:`~repro.errors.ConnectionLost`.  With ``retries > 0``,
:meth:`request` / :meth:`request_many` transparently reconnect and replay:
transient failures (connection reset, torn frames, ``overloaded``
rejections) are retried with capped exponential backoff plus jitter,
honouring the server's ``retry_after`` hint when one is present, and give
up once the ``deadline`` would be exceeded.  Replays reuse the *same*
request id — optimization requests are pure (no side effects), so replaying
one is idempotent and the id lets server logs correlate the attempts.

Usage::

    from repro.service import OptimizerClient

    with OptimizerClient(port=server.port, retries=3, deadline=30.0) as client:
        record = client.request({"workload": "ec2",
                                 "params": {"stars": 1, "corners": 3, "views": 1},
                                 "strategy": "fb"})
        assert record["status"] == "ok"      # overloads were retried
        print(client.stats()["memo_hit_rate"])
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import threading
import time
from concurrent.futures import Future

from repro.errors import ConnectionLost, ProtocolError
from repro.service.protocol import (
    ping_request,
    stats_request,
    sync_export_request,
    sync_merge_request,
)

#: Transport failures :meth:`OptimizerClient.request` treats as transient.
_TRANSIENT = (ProtocolError, ConnectionError, OSError)


class _Link:  # repro-lint: ignore[pickle-safety] never pickled — a link wraps a live socket and dies with its process
    """One TCP connection: socket, reader thread, pending-future demux.

    A link is immutable once dead — the client replaces it wholesale on
    reconnect, so no future can be registered against a connection whose
    teardown already drained the pending map (the ``dead`` check and the
    drain both run under ``pending_lock``).
    """

    def __init__(self, host, port, connect_timeout):
        self.sock = socket.create_connection((host, port), timeout=connect_timeout)  # released-by: _teardown
        self.sock.settimeout(None)
        self.reader = self.sock.makefile("r", encoding="utf-8", newline="\n")  # released-by: _teardown
        self.write_lock = threading.Lock()
        self.pending = {}  # guarded-by: pending_lock
        self.pending_lock = threading.Lock()
        self.dead = threading.Event()
        self.thread = threading.Thread(  # released-by: close
            target=self._read_loop, name="svc-client-reader", daemon=True
        )
        self.thread.start()

    def submit(self, record):
        request_id = record["id"]
        future = Future()
        with self.pending_lock:
            if self.dead.is_set():
                raise ConnectionLost("connection is closed")
            if request_id in self.pending:
                raise ValueError(f"request id {request_id!r} is already in flight")
            self.pending[request_id] = future
        data = (json.dumps(record) + "\n").encode("utf-8")
        try:
            with self.write_lock:
                self.sock.sendall(data)
        except OSError as error:
            with self.pending_lock:
                self.pending.pop(request_id, None)
            raise ConnectionLost(f"send failed: {error}") from error
        return future

    def _read_loop(self):
        failure = ConnectionLost("connection closed before a response arrived")
        try:
            for line in self.reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    # A torn or garbage frame: the demux has lost framing, so
                    # nothing after this line can be trusted.  Typed failure
                    # for every pending request, then tear the link down —
                    # the old behaviour (skip the line) left the reader alive
                    # and the skipped request's future pending forever.
                    failure = ProtocolError(f"malformed response line: {error}")
                    break
                if not isinstance(record, dict):
                    failure = ProtocolError(
                        f"response line is not an object: {record!r}"
                    )
                    break
                with self.pending_lock:
                    future = self.pending.pop(record.get("id"), None)
                if future is not None:
                    future.set_result(record)
        except OSError:
            pass
        finally:
            self._teardown(failure)

    def _teardown(self, error):
        self.dead.set()
        # Shut the socket first (wakes a reader blocked in recv), then close
        # the makefile wrapper and the socket itself.
        for method in (
            lambda: self.sock.shutdown(socket.SHUT_RDWR),
            self.reader.close,
            self.sock.close,
        ):
            try:
                method()
            except OSError:
                pass
        with self.pending_lock:
            pending, self.pending = dict(self.pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    def close(self):
        self._teardown(ConnectionLost("client closed the connection"))
        if self.thread is not threading.current_thread():
            self.thread.join(timeout=5.0)


class OptimizerClient:  # repro-lint: ignore[pickle-safety] never pickled — clients hold a live link; each process builds its own
    """JSONL-over-TCP client with id-based demux, reconnect and retries.

    Parameters
    ----------
    host / port:
        The server's bind address (see
        :attr:`~repro.service.server.OptimizerServer.address`).
    connect_timeout:
        Seconds to wait for each TCP connect.
    retries:
        Transparent replays of a failed request in :meth:`request` /
        :meth:`request_many` (0 = fail fast, the pre-resilience behaviour).
        Covers transient transport failures *and* ``overloaded`` rejections.
    backoff_base / backoff_max:
        Exponential backoff schedule between attempts:
        ``min(backoff_max, backoff_base * 2**attempt)`` plus up to 25%
        jitter (decorrelates a fleet of retrying clients).  A server's
        explicit ``retry_after`` hint bypasses both the cap and the jitter
        — it is honoured exactly, bounded only by ``deadline``.
    deadline:
        Overall wall-clock budget (seconds) across *all* attempts of one
        :meth:`request`; when the next backoff sleep would exceed it, the
        client gives up and re-raises the underlying failure.
    backoff_seed:
        Seed for the jitter stream — the chaos suite pins it so retry
        schedules are reproducible.
    """

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        connect_timeout=5.0,
        retries=0,
        backoff_base=0.05,
        backoff_max=2.0,
        deadline=None,
        backoff_seed=None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.deadline = deadline
        self._rng = random.Random(backoff_seed)  # guarded-by: _rng_lock
        self._rng_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._link_lock = threading.Lock()
        self._closed = False  # guarded-by: _link_lock
        self.reconnects = 0  # guarded-by: _link_lock
        self.replays = 0  # guarded-by: _link_lock
        self._link = _Link(host, port, connect_timeout)  # guarded-by: _link_lock

    # ------------------------------------------------------------------ #
    # request submission
    # ------------------------------------------------------------------ #
    def submit(self, record):
        """Send one request record; returns a Future of the response record.

        Single-attempt (retries live in :meth:`request`), but reconnects
        first when the previous connection died.  A missing ``id`` is
        assigned (``c1``, ``c2``, ...).  Ids must be unique among in-flight
        requests — the demux is keyed by them.
        """
        record = dict(record)
        if "id" not in record:
            record["id"] = f"c{next(self._ids)}"
        return self._ensure_link().submit(record)

    def request(self, record, timeout=None):
        """Send one request and wait for its response record, with retries.

        Transient failures (reset/torn connections, malformed frames,
        ``overloaded`` responses) are retried up to ``self.retries`` times
        with capped exponential backoff + jitter, reusing the same request
        id; an ``overloaded`` response's ``retry_after`` hint overrides the
        computed backoff.  Raises the last transport error (or returns the
        last ``overloaded`` record) once attempts or the deadline run out.
        """
        record = dict(record)
        if "id" not in record:
            record["id"] = f"c{next(self._ids)}"
        give_up_at = (
            time.monotonic() + self.deadline if self.deadline is not None else None
        )
        attempt = 0
        while True:
            try:
                response = self.submit(record).result(
                    timeout=self._wait_budget(timeout, give_up_at)
                )
            except _TRANSIENT:
                if attempt >= self.retries or self._is_closed():
                    raise
                if not self._backoff(attempt, give_up_at):
                    raise
                attempt += 1
                self._count_replay()
                continue
            if response.get("status") == "overloaded" and attempt < self.retries:
                if not self._backoff(
                    attempt, give_up_at, suggested=response.get("retry_after")
                ):
                    return response  # deadline exhausted: report the overload
                attempt += 1
                self._count_replay()
                continue
            return response

    def request_many(self, records, timeout=None):
        """Pipeline several requests; responses returned in submission order.

        With ``retries > 0``, requests that failed in flight (or came back
        ``overloaded``) are replayed individually via :meth:`request` after
        the pipelined pass — maximum throughput first, resilience second.
        """
        prepared = []
        for record in records:
            record = dict(record)
            if "id" not in record:
                record["id"] = f"c{next(self._ids)}"
            prepared.append(record)
        futures = []
        for record in prepared:
            try:
                futures.append(self.submit(record))
            except _TRANSIENT:
                if not self.retries:
                    raise
                futures.append(None)  # replay after the pipelined pass
        results = []
        for record, future in zip(prepared, futures):
            if future is None:
                results.append(self.request(record, timeout=timeout))
                continue
            try:
                response = future.result(timeout=timeout)
            except _TRANSIENT:
                if not self.retries:
                    raise
                results.append(self.request(record, timeout=timeout))
                continue
            if response.get("status") == "overloaded" and self.retries:
                results.append(self.request(record, timeout=timeout))
                continue
            results.append(response)
        return results

    def stats(self, timeout=None):
        """Fetch the server's service-wide stats dict."""
        response = self.request(stats_request(), timeout=timeout)
        return response["stats"]

    def ping(self, timeout=None):
        """Liveness round-trip; returns ``True`` when the server answered."""
        return bool(self.request(ping_request(), timeout=timeout).get("pong"))

    def sync_export(self, timeout=None):
        """Fetch the server's hot-session cache/memo deltas (fleet exchange)."""
        response = self.request(sync_export_request(), timeout=timeout)
        return response.get("sessions") or []

    def sync_merge(self, sessions, timeout=None):
        """Offer a peer's exported deltas; returns ``(merged, rejected)``."""
        response = self.request(sync_merge_request(sessions), timeout=timeout)
        return response.get("merged", 0), response.get("rejected", 0)

    # ------------------------------------------------------------------ #
    # reconnect + backoff plumbing
    # ------------------------------------------------------------------ #
    def _is_closed(self):
        """Read the closed flag under its lock (a retry loop's exit test must
        not race :meth:`close` flipping the flag and dropping the link)."""
        with self._link_lock:
            return self._closed

    def _count_replay(self):
        with self._link_lock:
            self.replays += 1

    def _ensure_link(self):
        with self._link_lock:
            if self._closed:
                raise RuntimeError("OptimizerClient is closed")
            if self._link is None or self._link.dead.is_set():
                try:
                    self._link = _Link(self._host, self._port, self._connect_timeout)
                except OSError as error:
                    raise ConnectionLost(f"reconnect failed: {error}") from error
                self.reconnects += 1
            return self._link

    def _wait_budget(self, timeout, give_up_at):
        """Per-attempt wait: the caller's timeout capped by the deadline."""
        if give_up_at is None:
            return timeout
        remaining = give_up_at - time.monotonic()
        if remaining <= 0:
            raise TimeoutError("client deadline exceeded")
        return remaining if timeout is None else min(timeout, remaining)

    def _jitter(self):
        """One jitter sample, under the RNG's own lock.

        ``random.Random`` mutates internal state on every draw and is not
        thread-safe; the client *is* (documented contract, enforced by the
        stress suite), and concurrent :meth:`request` callers all back off
        through the same RNG — so the draw gets its own lock rather than
        piggybacking on ``_link_lock`` (no reason for a sleep schedule to
        contend with reconnects).
        """
        with self._rng_lock:
            return self._rng.random()

    def _next_delay(self, attempt, suggested=None):
        """Delay (seconds) before retry ``attempt + 1``; pure, no sleeping.

        An explicit server ``retry_after`` hint is honoured *exactly*: no
        clamp to ``backoff_max``, no jitter.  The server names the earliest
        moment it expects capacity; clamping a hint above ``backoff_max``
        (the old behaviour) made the client come back *earlier* than asked,
        re-hammering the overloaded shard.  The caller's deadline — applied
        by :meth:`_backoff` — remains the only cap.  Without a hint, capped
        exponential backoff with up to +25% jitter decorrelates a fleet of
        retrying clients.
        """
        if suggested is not None:
            return max(0.0, float(suggested))
        delay = min(self.backoff_max, self.backoff_base * (2**attempt))
        return delay * (1.0 + 0.25 * self._jitter())

    def _backoff(self, attempt, give_up_at, suggested=None):
        """Sleep before the next attempt; False when the deadline forbids it."""
        delay = self._next_delay(attempt, suggested=suggested)
        if give_up_at is not None and time.monotonic() + delay >= give_up_at:
            return False
        time.sleep(delay)
        return True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self):
        """Close the connection; in-flight futures fail with ConnectionLost."""
        with self._link_lock:
            if self._closed:
                return
            self._closed = True
            link, self._link = self._link, None
        if link is not None:
            link.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


__all__ = ["OptimizerClient"]
