"""Client for the optimizer service's TCP front end.

:class:`OptimizerClient` speaks the JSONL protocol of
:mod:`repro.service.protocol` over one socket.  Because the server streams
responses *as they complete* (out of order), the client runs a reader
thread that demultiplexes incoming records back to per-request futures by
``id`` — which makes the client safe to share across threads: the
concurrency stress suite hammers one connection from many threads and every
request still gets exactly its own response.

Usage::

    from repro.service import OptimizerClient

    with OptimizerClient(port=server.port) as client:
        record = client.request({"workload": "ec2",
                                 "params": {"stars": 1, "corners": 3, "views": 1},
                                 "strategy": "fb"})
        assert record["status"] in ("ok", "overloaded")
        print(client.stats()["memo_hit_rate"])
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from concurrent.futures import Future


class OptimizerClient:
    """JSONL-over-TCP client with id-based response demultiplexing.

    Parameters
    ----------
    host / port:
        The server's bind address (see
        :attr:`~repro.service.server.OptimizerServer.address`).
    connect_timeout:
        Seconds to wait for the TCP connect.
    """

    def __init__(self, host="127.0.0.1", port=0, connect_timeout=5.0):
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._write_lock = threading.Lock()
        self._pending = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._reader_thread = threading.Thread(
            target=self._read_loop, name="svc-client-reader", daemon=True
        )
        self._reader_thread.start()

    # ------------------------------------------------------------------ #
    # request submission
    # ------------------------------------------------------------------ #
    def submit(self, record):
        """Send one request record; returns a Future of the response record.

        A missing ``id`` is assigned (``c1``, ``c2``, ...).  Ids must be
        unique among in-flight requests on this connection — the demux is
        keyed by them.
        """
        record = dict(record)
        if "id" not in record:
            record["id"] = f"c{next(self._ids)}"
        request_id = record["id"]
        future = Future()
        with self._pending_lock:
            if self._closed:
                raise RuntimeError("OptimizerClient is closed")
            if request_id in self._pending:
                raise ValueError(f"request id {request_id!r} is already in flight")
            self._pending[request_id] = future
        try:
            self._send_line(json.dumps(record))
        except BaseException:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise
        return future

    def request(self, record, timeout=None):
        """Send one request and wait for its response record."""
        return self.submit(record).result(timeout=timeout)

    def request_many(self, records, timeout=None):
        """Pipeline several requests; responses returned in submission order."""
        futures = [self.submit(record) for record in records]
        return [future.result(timeout=timeout) for future in futures]

    def stats(self, timeout=None):
        """Fetch the server's service-wide stats dict."""
        response = self.request({"op": "stats"}, timeout=timeout)
        return response["stats"]

    def ping(self, timeout=None):
        """Liveness round-trip; returns ``True`` when the server answered."""
        return bool(self.request({"op": "ping"}, timeout=timeout).get("pong"))

    def _send_line(self, line):
        data = (line + "\n").encode("utf-8")
        with self._write_lock:
            self._sock.sendall(data)

    # ------------------------------------------------------------------ #
    # response demultiplexing
    # ------------------------------------------------------------------ #
    def _read_loop(self):
        try:
            for line in self._reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn line on teardown; the future fails at EOF
                future = None
                if isinstance(record, dict):
                    with self._pending_lock:
                        future = self._pending.pop(record.get("id"), None)
                if future is not None:
                    future.set_result(record)
        except OSError:
            pass
        finally:
            self._fail_pending(ConnectionError("connection closed before a response arrived"))

    def _fail_pending(self, error):
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self):
        """Close the connection; in-flight futures fail with ConnectionError."""
        with self._pending_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader_thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


__all__ = ["OptimizerClient"]
