"""Long-lived optimizer serving: sharded multi-query C&B with warm caches.

This package is the architectural step from "library call" to "service": an
:class:`OptimizerService` keeps worker pools and per-catalog chase caches
warm across :meth:`~repro.service.service.OptimizerService.submit` calls,
routes requests to shards by constraint-set signature, and batches the
backchase/OQF/OCS work of concurrently in-flight queries into shared
executor waves.  Plan sets are signature-identical to single-shot
:class:`~repro.chase.optimizer.CBOptimizer` runs.

Modules
-------
``service``
    The façade: admission, routing, futures, lifecycle, cache snapshots.
``shard``
    Warm per-catalog sessions (chase caches + containment memos), bounded
    admission, request runner threads per shard.
``scheduler``
    The cross-query wave batching scheduler and its executor adapter.
``metrics``
    Per-request/shard/service accounting and latency percentiles.
``protocol``
    The JSONL request/response codec shared by the CLI, the socket server
    and the client.
``server`` / ``client``
    The TCP front end: JSONL over a socket with graceful drain, typed
    overload responses, and id-based response demultiplexing.
"""

from repro.errors import ServiceOverloaded
from repro.service.client import OptimizerClient
from repro.service.metrics import RequestMetrics, ServiceStats, ShardStats, percentile
from repro.service.scheduler import SERVICE_EXECUTORS, ScheduledPool, WaveScheduler
from repro.service.server import OptimizerServer
from repro.service.service import OptimizerService, ServiceRequest, ServiceResponse
from repro.service.shard import Shard, ShardSession, shard_index

__all__ = [
    "OptimizerClient",
    "OptimizerServer",
    "OptimizerService",
    "RequestMetrics",
    "SERVICE_EXECUTORS",
    "ScheduledPool",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "Shard",
    "ShardSession",
    "ShardStats",
    "WaveScheduler",
    "percentile",
    "shard_index",
]
