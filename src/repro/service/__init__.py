"""Long-lived optimizer serving: sharded multi-query C&B with warm caches.

This package is the architectural step from "library call" to "service": an
:class:`OptimizerService` keeps worker pools and per-catalog chase caches
warm across :meth:`~repro.service.service.OptimizerService.submit` calls,
routes requests to shards by constraint-set signature, and batches the
backchase/OQF/OCS work of concurrently in-flight queries into shared
executor waves.  Plan sets are signature-identical to single-shot
:class:`~repro.chase.optimizer.CBOptimizer` runs.

Modules
-------
``service``
    The façade: admission, routing, futures, lifecycle, cache snapshots.
``shard``
    Warm per-catalog sessions (chase caches + containment memos), bounded
    admission, request runner threads per shard.
``scheduler``
    The cross-query wave batching scheduler and its executor adapter.
``metrics``
    Per-request/shard/service accounting and latency percentiles.
``protocol``
    The JSONL request/response codec shared by the CLI, the socket server
    and the client.
``server`` / ``client``
    The TCP front end: JSONL over a socket with graceful drain, typed
    overload responses, and id-based response demultiplexing; the client
    adds reconnect, bounded retries with capped exponential backoff, and
    deadline-aware give-up.
``snapshots``
    Crash-safe cache persistence: atomic checksummed snapshots with
    constraint-signature staleness detection, periodic + SIGUSR1-triggered
    snapshotting.
``faults``
    Deterministic, seedable fault injection threaded through the server,
    shards and snapshot IO — the chaos suite's backbone.
``observability``
    First-class observability: per-request span trees threaded through
    the whole pipeline (:class:`~repro.service.observability.Tracer`),
    the Prometheus/health HTTP sidecar
    (:class:`~repro.service.observability.ObservabilityServer`) and the
    structured JSONL event log
    (:class:`~repro.service.observability.EventLog`).
"""

from repro.errors import (
    ConnectionLost,
    InjectedCrash,
    InjectedFault,
    ProtocolError,
    RunnerCrash,
    ServiceOverloaded,
    SnapshotError,
)
from repro.service.client import OptimizerClient
from repro.service.faults import FaultInjector
from repro.service.metrics import (
    RequestMetrics,
    ServiceStats,
    ShardStats,
    StageHistograms,
    percentile,
)
from repro.service.observability import (
    EventLog,
    ObservabilityServer,
    Tracer,
    log_event,
    render_metrics,
)
from repro.service.scheduler import SERVICE_EXECUTORS, ScheduledPool, WaveScheduler
from repro.service.server import OptimizerServer
from repro.service.service import OptimizerService, ServiceRequest, ServiceResponse
from repro.service.shard import Shard, ShardSession, shard_index
from repro.service.snapshots import SnapshotManager, read_snapshot, write_snapshot

__all__ = [
    "ConnectionLost",
    "EventLog",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "ObservabilityServer",
    "OptimizerClient",
    "OptimizerServer",
    "OptimizerService",
    "ProtocolError",
    "RequestMetrics",
    "RunnerCrash",
    "SERVICE_EXECUTORS",
    "ScheduledPool",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "Shard",
    "ShardSession",
    "ShardStats",
    "SnapshotError",
    "SnapshotManager",
    "StageHistograms",
    "Tracer",
    "WaveScheduler",
    "log_event",
    "percentile",
    "read_snapshot",
    "render_metrics",
    "shard_index",
    "write_snapshot",
]
