"""Long-lived optimizer serving: sharded multi-query C&B with warm caches.

This package is the architectural step from "library call" to "service": an
:class:`OptimizerService` keeps worker pools and per-catalog chase caches
warm across :meth:`~repro.service.service.OptimizerService.submit` calls,
routes requests to shards by constraint-set signature, and batches the
backchase/OQF/OCS work of concurrently in-flight queries into shared
executor waves.  Plan sets are signature-identical to single-shot
:class:`~repro.chase.optimizer.CBOptimizer` runs.

Modules
-------
``service``
    The façade: admission, routing, futures, lifecycle.
``shard``
    Warm per-catalog sessions + request runner threads per shard.
``scheduler``
    The cross-query wave batching scheduler and its executor adapter.
``metrics``
    Per-request/shard/service accounting and latency percentiles.
"""

from repro.service.metrics import RequestMetrics, ServiceStats, ShardStats, percentile
from repro.service.scheduler import SERVICE_EXECUTORS, ScheduledPool, WaveScheduler
from repro.service.service import OptimizerService, ServiceRequest, ServiceResponse
from repro.service.shard import Shard, ShardSession, shard_index

__all__ = [
    "OptimizerService",
    "RequestMetrics",
    "SERVICE_EXECUTORS",
    "ScheduledPool",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "Shard",
    "ShardSession",
    "ShardStats",
    "WaveScheduler",
    "percentile",
    "shard_index",
]
