"""Long-lived optimizer serving: sharded multi-query C&B with warm caches.

This package is the architectural step from "library call" to "service": an
:class:`OptimizerService` keeps worker pools and per-catalog chase caches
warm across :meth:`~repro.service.service.OptimizerService.submit` calls,
routes requests to shards by constraint-set signature, and batches the
backchase/OQF/OCS work of concurrently in-flight queries into shared
executor waves.  Plan sets are signature-identical to single-shot
:class:`~repro.chase.optimizer.CBOptimizer` runs.

Modules
-------
``service``
    The façade: admission, routing, futures, lifecycle, cache snapshots.
``shard``
    Warm per-catalog sessions (chase caches + containment memos), bounded
    admission, request runner threads per shard.
``scheduler``
    The cross-query wave batching scheduler and its executor adapter.
``metrics``
    Per-request/shard/service accounting and latency percentiles.
``protocol``
    The JSONL request/response codec shared by the CLI, the socket server
    and the client.
``server`` / ``client``
    The TCP front end: JSONL over a socket with graceful drain, typed
    overload responses, and id-based response demultiplexing; the client
    adds reconnect, bounded retries with capped exponential backoff, and
    deadline-aware give-up.
``snapshots``
    Crash-safe cache persistence: atomic checksummed snapshots with
    constraint-signature staleness detection, periodic + SIGUSR1-triggered
    snapshotting.
``faults``
    Deterministic, seedable fault injection threaded through the server,
    shards and snapshot IO — the chaos suite's backbone.
"""

from repro.errors import (
    ConnectionLost,
    InjectedCrash,
    InjectedFault,
    ProtocolError,
    RunnerCrash,
    ServiceOverloaded,
    SnapshotError,
)
from repro.service.client import OptimizerClient
from repro.service.faults import FaultInjector
from repro.service.metrics import RequestMetrics, ServiceStats, ShardStats, percentile
from repro.service.scheduler import SERVICE_EXECUTORS, ScheduledPool, WaveScheduler
from repro.service.server import OptimizerServer
from repro.service.service import OptimizerService, ServiceRequest, ServiceResponse
from repro.service.shard import Shard, ShardSession, shard_index
from repro.service.snapshots import SnapshotManager, read_snapshot, write_snapshot

__all__ = [
    "ConnectionLost",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "OptimizerClient",
    "OptimizerServer",
    "OptimizerService",
    "ProtocolError",
    "RequestMetrics",
    "RunnerCrash",
    "SERVICE_EXECUTORS",
    "ScheduledPool",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "Shard",
    "ShardSession",
    "ShardStats",
    "SnapshotError",
    "SnapshotManager",
    "WaveScheduler",
    "percentile",
    "read_snapshot",
    "shard_index",
    "write_snapshot",
]
