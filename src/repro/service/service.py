"""The long-lived optimizer service: sharded multi-query C&B serving.

:class:`OptimizerService` turns the library-call optimizer into a serving
layer:

* **Warm state.**  Worker pools and per-catalog chase caches are created
  once and kept alive across ``submit`` calls, so the second request against
  a catalog pays neither pool startup nor re-chasing (every chase fixpoint —
  the input query's, the backchase candidates', the OQF fragments', the OCS
  stages' — is memoised per constraint set and reused).
* **Sharding.**  Requests are routed by the signature of their constraint
  set (:func:`~repro.service.shard.shard_index`), so one catalog's traffic
  always lands on the same shard — and therefore the same warm caches —
  while distinct catalogs spread over the shard pool.
* **Cross-query wave batching.**  Within a shard, the backchase wave chunks
  and OQF/OCS stage tasks of *all* in-flight requests are coalesced into
  shared executor waves by the shard's
  :class:`~repro.service.scheduler.WaveScheduler`; payloads carry the
  request id and outcomes demultiplex back to per-request futures.

Plan sets are signature-identical to a fresh
:class:`~repro.chase.optimizer.CBOptimizer` run with the same knobs: the
service reuses the exact engine code paths, shares only per-constraint-set
chase fixpoints (which are deterministic), and never reorders any
plan-producing merge.  The test suite and the ``serve-smoke`` target assert
this end to end.

Usage::

    from repro.service import OptimizerService

    with OptimizerService(shards=2, workers=2) as service:
        future = service.submit(workload.query, catalog=workload.catalog)
        response = future.result()
        print(response.result.plan_count, service.stats().cache_hit_rate)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.errors import ServiceOverloaded
from repro.chase.implication import constraints_digest
from repro.chase.optimizer import STRATEGIES
from repro.service.metrics import MetricsCollector, ServiceStats
from repro.service.observability.events import log_event
from repro.service.protocol import decode_sync_session, plan_digest
from repro.service.shard import Shard, shard_index


@dataclass
class ServiceRequest:
    """One admitted optimization request.

    Either ``catalog`` or an explicit ``constraints`` list must be given
    (mirroring :class:`~repro.chase.optimizer.CBOptimizer`); OQF needs the
    catalog's skeletons, so strategy ``"oqf"`` requires ``catalog``.
    """

    query: object
    strategy: str = "fb"
    catalog: object = None
    constraints: list | None = None
    timeout: float | None = None
    request_id: object = None

    def resolved_constraints(self):
        """The dependency set the request will be chased under (for routing)."""
        if self.constraints is not None:
            return list(self.constraints)
        return list(self.catalog.constraints())

    def validate(self):
        if self.catalog is None and self.constraints is None:
            raise ValueError("ServiceRequest needs a catalog or an explicit constraint list")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )


@dataclass
class ServiceResponse:
    """What a request's future resolves to.

    ``result`` is the engine's :class:`~repro.chase.optimizer.OptimizationResult`
    (``None`` on error); ``metrics`` the per-request service accounting.
    ``error_type`` carries the failure's exception class name (e.g.
    ``"RunnerCrash"``, ``"ChaseTimeout"``) so callers and the JSONL
    protocol can distinguish failure modes without parsing messages.

    When the service runs with a tracer, ``trace`` is the request's
    finished :class:`~repro.trace.RequestTrace` span tree (admission wait,
    queue wait, chase, containment, restrict, serialize — with cache/memo
    attribution) and ``plan_digests`` the protocol plan-set signature,
    computed inside the trace's ``serialize`` span so the JSONL encoder
    reuses it instead of re-hashing.
    """

    request_id: object
    result: object = None
    metrics: object = None
    error: str | None = None
    error_type: str | None = None
    trace: object = None
    plan_digests: list | None = None

    @property
    def ok(self):
        return self.error is None

    def raise_for_error(self):
        """Re-raise the request's failure, if any (returns self otherwise)."""
        if self.error is not None:
            raise RuntimeError(f"request {self.request_id!r} failed: {self.error}")
        return self


@dataclass
class _PendingRequest:  # repro-lint: ignore[pickle-safety] never pickled — lives only inside one submit() call's plumbing
    """Book-keeping pairing an admitted request with its future."""

    request: ServiceRequest
    trace: object = None
    future: Future = field(default_factory=Future)
    _claim: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def claim(self):
        """Atomically claim the right to resolve this request (once ever)."""
        return self._claim.acquire(blocking=False)


class OptimizerService:  # repro-lint: ignore[pickle-safety] never pickled — save_caches() exports session state instead
    """Long-lived, sharded, cache-warm C&B optimizer service.

    Parameters
    ----------
    shards:
        Number of independent shards (scheduler + runner pool + sessions
        each).  Catalogs are spread over shards deterministically.
    executor:
        ``"threads"`` (default) or ``"serial"`` — the wave executor of every
        shard's scheduler.  Process pools are rejected: detached workers
        cannot share the warm caches that justify the service.
    workers:
        Worker threads per shard scheduler (``None`` = CPU count).
    max_inflight:
        Concurrently executing requests per shard; more in-flight requests
        mean more cross-query batching opportunities.
    batch_window / max_batch:
        Wave coalescing knobs (see
        :class:`~repro.service.scheduler.WaveScheduler`).
    max_queue_depth:
        Admission bound per shard: maximum requests admitted at a time
        (executing plus waiting for a runner thread).  Past it,
        :meth:`submit` raises :class:`~repro.errors.ServiceOverloaded`
        instead of queueing without bound (``None`` = unbounded, the
        historical in-process behaviour).
    max_cache_entries:
        LRU bound for every per-constraint-set chase cache (``None`` =
        unbounded; set this for long-lived deployments).
    max_memo_entries:
        LRU bound for every session's containment memo (``None`` =
        unbounded).
    max_sessions:
        LRU bound on warm sessions per shard (``None`` = unbounded; set
        this too for long-lived deployments serving many distinct
        catalogs).
    default_timeout:
        Per-request wall-clock budget applied when a request carries none.
    overload_retry_after:
        Optional back-off hint (seconds) attached to admission rejections;
        surfaced on ``overloaded`` responses for retrying clients.
    fault_injector:
        Optional :class:`~repro.service.faults.FaultInjector` threaded
        through shard execution and snapshot IO (chaos testing).
    tracer:
        Optional :class:`~repro.service.observability.tracing.Tracer`.
        When set, every admitted request carries a
        :class:`~repro.trace.RequestTrace` through shard queueing, wave
        scheduling and the engine's chase/containment/restrict stages, and
        every :class:`ServiceResponse` comes back with the finished span
        tree on ``response.trace``.
    event_log:
        Optional :class:`~repro.service.observability.events.EventLog`;
        the service emits ``request.admitted`` / ``request.rejected`` /
        ``request.completed`` events (shards add runner crash/restart,
        snapshot loads add ``snapshot.loaded`` / ``snapshot.recovered``).
    """

    def __init__(
        self,
        shards=1,
        executor="threads",
        workers=None,
        max_inflight=4,
        batch_window=0.001,
        max_batch=64,
        max_queue_depth=None,
        max_cache_entries=None,
        max_memo_entries=None,
        max_sessions=None,
        default_timeout=None,
        overload_retry_after=None,
        fault_injector=None,
        tracer=None,
        event_log=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.default_timeout = default_timeout
        self.fault_injector = fault_injector
        self.tracer = tracer
        self.event_log = event_log
        self._shards = [
            Shard(
                shard_id,
                executor=executor,
                workers=workers,
                max_inflight=max_inflight,
                batch_window=batch_window,
                max_batch=max_batch,
                max_queue_depth=max_queue_depth,
                max_cache_entries=max_cache_entries,
                max_memo_entries=max_memo_entries,
                max_sessions=max_sessions,
                overload_retry_after=overload_retry_after,
                fault_injector=fault_injector,
                event_log=event_log,
            )
            for shard_id in range(shards)
        ]
        self._metrics = MetricsCollector()
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        #: Per-session delta markers for export_sync (signature ->
        #: {"caches": {cache_sig: marker}, "memo": marker}), so each sync
        #: round ships only what was learned since the previous one.
        self._sync_markers = {}  # guarded-by: _sync_lock
        self._sync_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query,
        strategy="fb",
        catalog=None,
        constraints=None,
        timeout=None,
        request_id=None,
    ):
        """Admit one request; returns a Future of :class:`ServiceResponse`.

        The future always resolves to a response — engine failures are
        reported on ``response.error`` rather than raised, so a JSONL batch
        over a mixed workload degrades per-request instead of aborting.
        Admission is the exception: past a shard's ``max_queue_depth`` the
        call raises :class:`~repro.errors.ServiceOverloaded` *synchronously*
        (no future exists — nothing was admitted), so callers can shed or
        retry immediately.
        """
        admitted_at = time.perf_counter()
        request = ServiceRequest(
            query=query,
            strategy=strategy,
            catalog=catalog,
            constraints=constraints,
            timeout=timeout if timeout is not None else self.default_timeout,
            request_id=request_id if request_id is not None else next(self._request_ids),
        )
        request.validate()
        with self._lock:
            if self._closed:
                raise RuntimeError("OptimizerService is shut down")
            index = shard_index(request.resolved_constraints(), len(self._shards))
            shard = self._shards[index]
        trace = (
            self.tracer.start_trace(request.request_id)
            if self.tracer is not None
            else None
        )
        pending = _PendingRequest(request, trace=trace)
        try:
            shard.submit(request, self._make_resolver(pending), trace=trace)
        except ServiceOverloaded:
            self._metrics.record_rejection()
            if trace is not None:
                self.tracer.export(trace.finish("rejected"))
            log_event(
                self.event_log,
                "request.rejected",
                request_id=request.request_id,
                shard=index,
                strategy=request.strategy,
            )
            raise
        if trace is not None:
            # Admission wait: validation, routing and the admission-control
            # gate — everything between entering submit and the request
            # landing on a runner queue.
            trace.record("admission_wait", time.perf_counter() - admitted_at)
        log_event(
            self.event_log,
            "request.admitted",
            request_id=request.request_id,
            shard=index,
            strategy=request.strategy,
        )
        return pending.future

    def submit_many(self, requests):
        """Admit a batch (iterable of dicts or :class:`ServiceRequest` field
        mappings) and wait for all; returns responses in submission order."""
        futures = [
            self.submit(**(request if isinstance(request, dict) else vars(request)))
            for request in requests
        ]
        return [future.result() for future in futures]

    def _make_resolver(self, pending):
        def on_done(request, result, metrics, exc):
            # A request resolves exactly once: the normal completion path
            # and a crashed runner's typed-failure path can both call the
            # resolver, but only the claim winner records + resolves —
            # counted *before* set_result, so a caller waking from
            # future.result() already sees itself in the service totals.
            if not pending.claim():
                return
            trace = pending.trace
            plan_digests = None
            if trace is not None:
                if result is not None:
                    # The serialize span: the protocol's plan-set signature
                    # is computed here, inside the trace's root duration,
                    # and reused by encode_response — so the stage sum
                    # stays bounded by the measured request latency.
                    serialize_started = time.perf_counter()
                    plan_digests = plan_digest(result.plans)
                    trace.record(
                        "serialize", time.perf_counter() - serialize_started
                    )
                trace.finish("ok" if exc is None else "error")
            self._metrics.record(metrics)
            if trace is not None and self.tracer is not None:
                self.tracer.export(trace)
            log_event(
                self.event_log,
                "request.completed",
                request_id=request.request_id,
                shard=metrics.shard,
                status="ok" if exc is None else "error",
                latency_s=round(metrics.latency, 6),
            )
            pending.future.set_result(
                ServiceResponse(
                    request_id=request.request_id,
                    result=result,
                    metrics=metrics,
                    error=None if exc is None else str(exc),
                    error_type=None if exc is None else type(exc).__name__,
                    trace=trace,
                    plan_digests=plan_digests,
                )
            )

        return on_done

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self):
        return len(self._shards)

    def shard_for(self, catalog=None, constraints=None):
        """The shard index a catalog/constraint set routes to (for tests)."""
        deps = list(constraints) if constraints is not None else list(catalog.constraints())
        return shard_index(deps, len(self._shards))

    def stats(self):
        """Service-wide snapshot: shards, caches, memos, queues, latencies."""
        requests, errors, rejected, latencies = self._metrics.snapshot()
        recoveries, stale_sessions, snapshots_loaded, sessions_restored = (
            self._metrics.recovery_snapshot()
        )
        (
            sync_exports,
            sync_sessions_exported,
            sync_merges,
            sync_sessions_merged,
            sync_rejected,
        ) = self._metrics.sync_snapshot()
        return ServiceStats(
            shards=[shard.stats() for shard in self._shards],
            requests=requests,
            errors=errors,
            rejected=rejected,
            recoveries=recoveries,
            stale_sessions=stale_sessions,
            snapshots_loaded=snapshots_loaded,
            sessions_restored=sessions_restored,
            sync_exports=sync_exports,
            sync_sessions_exported=sync_sessions_exported,
            sync_merges=sync_merges,
            sync_sessions_merged=sync_sessions_merged,
            sync_rejected=sync_rejected,
            latencies=latencies,
        )

    def readiness(self):
        """Readiness probe: ``(ready, detail)`` for the ``/readyz`` endpoint.

        Ready means the service still admits requests (not shut down) and
        every shard's supervised runner pool has at least one live runner —
        a shard with zero runners would admit requests that nothing ever
        executes.  Snapshot-loaded readiness is layered on top by the CLI
        (it knows whether a ``--snapshot`` was requested).
        """
        with self._lock:
            closed = self._closed
        if closed:
            return False, {"reason": "service is shut down"}
        stalled = [
            shard.shard_id for shard in self._shards if shard.live_runners() == 0
        ]
        if stalled:
            return False, {"reason": "shards without live runners", "shards": stalled}
        return True, {"shards": len(self._shards)}

    # ------------------------------------------------------------------ #
    # cache persistence (warm restarts)
    # ------------------------------------------------------------------ #
    def save_caches(self, path, faults=None):
        """Snapshot every shard's warm sessions (chase caches + memos) to ``path``.

        Returns the number of sessions saved.  The write is crash-safe
        (:func:`~repro.service.snapshots.write_snapshot`: temp file + fsync +
        atomic rename, manifest with per-session constraint digests, payload
        checksum), so it is safe to call from the periodic
        :class:`~repro.service.snapshots.SnapshotManager` loop while traffic
        is in flight — a concurrent snapshot may merely miss the newest
        entries; it can never leave a torn file.
        """
        from repro.service.snapshots import write_snapshot

        return write_snapshot(
            path,
            self.export_sessions(),
            faults=faults if faults is not None else self.fault_injector,
        )

    def export_sessions(self):
        """Every shard's warm sessions as snapshot-shaped dicts.

        The same ``{"signature", "label", "registry", "memo"}`` shape
        :func:`~repro.service.snapshots.write_snapshot` persists — shared by
        :meth:`save_caches` (one file) and the fleet's
        :class:`~repro.service.fleet.store.SnapshotStore` (one file per
        constraint digest).
        """
        sessions = []
        for shard in self._shards:
            for signature, label, registry, memo in shard.export_sessions():
                sessions.append(
                    {"signature": signature, "label": label, "registry": registry, "memo": memo}
                )
        return sessions

    def restore_session(self, signature, label, registry, memo):
        """Install one exported session, routed like live traffic.

        Routing goes through :func:`~repro.service.shard.shard_index` on the
        structural constraint digest, so restored state lands exactly where
        admission will send that constraint set's requests.
        """
        constraints = list(signature)
        shard = self._shards[shard_index(constraints, len(self._shards))]
        shard.restore_session(signature, label, registry, memo)

    def load_caches(self, path, faults=None):
        """Restore a :meth:`save_caches` snapshot into this service's shards.

        Each session is re-routed by its constraint-set signature (the same
        :func:`~repro.service.shard.shard_index` admission uses), so the
        shard count may differ from the saving process's.  Placement
        compatibility: ``shard_index`` hashes the structural
        :func:`~repro.chase.implication.constraints_digest` — the identity
        the snapshot manifest itself records — so re-routing agrees with
        staleness: a session the manifest says is fresh lands exactly where
        admission will route that constraint set's traffic, even across
        processes (and across fleet backends sharing a snapshot store).
        Sessions whose
        constraint-set digest no longer matches the snapshot manifest are
        *skipped* (stale: their fixpoints were computed under different
        constraints) and counted in ``stats().stale_sessions``.  Returns the
        number of sessions restored; raises
        :class:`~repro.errors.SnapshotError` when the file itself is
        missing, corrupt, fails its checksum, or has an unsupported version
        (use :meth:`recover_caches` to degrade to a cold start instead).
        """
        from repro.service.snapshots import read_snapshot

        _, entries = read_snapshot(
            path, faults=faults if faults is not None else self.fault_injector
        )
        restored = 0
        stale = 0
        for entry, is_stale in entries:
            if is_stale:
                stale += 1
                continue
            self.restore_session(
                entry["signature"], entry["label"], entry["registry"], entry["memo"]
            )
            restored += 1
        if stale:
            self._metrics.record_stale_sessions(stale)
        self._metrics.record_snapshot_load(restored)
        log_event(
            self.event_log,
            "snapshot.loaded",
            path=os.fspath(path),
            sessions_restored=restored,
            stale_sessions=stale,
        )
        return restored

    # ------------------------------------------------------------------ #
    # fleet sync (cross-process cache/memo exchange)
    # ------------------------------------------------------------------ #
    def export_sync(self):
        """Export every warm session's cache/memo *deltas* for a fleet peer.

        Returns a list of wire entries
        (:func:`~repro.service.protocol.encode_sync_session`): one per
        session that learned anything since the previous export — new chase
        fixpoints (per-constraint-set cache entries) and new containment
        verdicts.  Per-session markers make consecutive calls incremental;
        an entry landing mid-export is shipped twice, which
        :meth:`merge_sync` absorbs (merges are idempotent).
        """
        from repro.service.protocol import encode_sync_session

        exported = []
        for shard in self._shards:
            for signature, label, registry, memo in shard.export_sessions():
                with self._sync_lock:
                    markers = self._sync_markers.setdefault(
                        signature, {"caches": {}, "memo": 0}
                    )
                    cache_markers = dict(markers["caches"])
                    memo_marker = markers["memo"]
                entries, new_cache_markers = registry.export_entries(cache_markers)
                new_memo_marker = memo.snapshot()
                memo_entries = memo.export_since(memo_marker)
                with self._sync_lock:
                    markers = self._sync_markers[signature]
                    markers["caches"].update(new_cache_markers)
                    markers["memo"] = new_memo_marker
                if not entries and not memo_entries:
                    continue
                exported.append(
                    encode_sync_session(signature, entries, memo_entries, label=label)
                )
        self._metrics.record_sync_export(len(exported))
        log_event(self.event_log, "sync.exported", sessions=len(exported))
        return exported

    def merge_sync(self, sessions):
        """Merge a peer's :meth:`export_sync` payload; returns ``(merged, rejected)``.

        The constraint-digest guard: each entry's structural digest is
        *recomputed* from the payload's exact constraint set and compared
        against the advertised one — on mismatch the entry is rejected
        whole (counted, never partially merged), because exchanged fixpoints
        and verdicts are only valid under the dependency set they were
        computed with.  Accepted entries route by the same
        :func:`~repro.service.shard.shard_index` admission uses, creating
        the session on first contact, so a scaled-up replica warms catalogs
        it has never served.
        """
        merged = 0
        rejected = 0
        for entry in sessions:
            try:
                advertised, payload = decode_sync_session(entry)
            except ValueError:
                rejected += 1
                continue
            signature = payload["signature"]
            if constraints_digest(signature) != advertised:
                rejected += 1
                continue
            constraints = list(signature)
            with self._lock:
                if self._closed:
                    break
                shard = self._shards[shard_index(constraints, len(self._shards))]
            session = shard.session_for(constraints)
            session.registry.merge_entries(payload.get("caches") or {})
            session.memo.merge_exported(payload.get("memo") or [])
            merged += 1
        self._metrics.record_sync_merge(merged, rejected)
        log_event(self.event_log, "sync.merged", sessions=merged, rejected=rejected)
        return merged, rejected

    def recover_caches(self, path):
        """Load a snapshot, degrading to a cold start on *any* failure.

        The crash-recovery contract of the serving layer: an unusable
        snapshot (missing, truncated, checksum mismatch, wrong version) must
        never crash the server at boot and never serve stale state — it
        costs a recovery (counted in ``stats().recoveries``) and an empty
        cache, nothing more.  Returns ``(sessions_restored, error)`` where
        ``error`` is ``None`` on success or the
        :class:`~repro.errors.SnapshotError` explaining the cold start.
        """
        from repro.errors import SnapshotError

        try:
            return self.load_caches(path), None
        except SnapshotError as error:
            self._metrics.record_recovery()
            log_event(
                self.event_log,
                "snapshot.recovered",
                path=os.fspath(path),
                error=str(error),
            )
            return 0, error

    def shutdown(self, wait=True):
        """Drain every shard and release the pools (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False


__all__ = ["OptimizerService", "ServiceRequest", "ServiceResponse"]
