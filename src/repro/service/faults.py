"""Deterministic fault injection for the serving stack.

A :class:`FaultInjector` is threaded through the failure-prone seams of the
service — the socket server's read and write paths, shard request execution,
and snapshot IO — and decides, per *site*, whether an operation should fail.
Decisions are deterministic and seedable: each rule draws from its own
``random.Random`` stream keyed by ``(seed, site)``, so a rule's k-th
opportunity always makes the same decision regardless of what other sites
are doing or how threads interleave.  That is what lets the chaos suite
assert exact differential properties ("plan digests identical with and
without injected faults") instead of merely hoping the run was unlucky
enough.

Two failure flavours:

* ``crash=False`` (default) raises :class:`~repro.errors.InjectedFault`, an
  ordinary :class:`Exception` — per-request error handling absorbs it (a
  typed ``error`` response, a dropped connection, a failed snapshot write).
* ``crash=True`` raises :class:`~repro.errors.InjectedCrash`, a
  :class:`BaseException` that sails through ``except Exception`` handlers —
  this is how the suite kills a shard runner thread mid-request to exercise
  the supervisor.

Sites are plain strings; the ones wired up today:

========================  ====================================================
``server.read``           per request line read by the socket server
``server.write``          per response record written by the socket server
``shard.execute``         per request executed on a shard runner
``snapshot.write``        per snapshot written (before the atomic rename)
``snapshot.read``         per snapshot read
========================  ====================================================

Usage::

    faults = FaultInjector(seed=7).rule("server.write", probability=0.2, times=3)
    server = OptimizerServer(service, fault_injector=faults)
    ...
    faults.counters  # {"server.write": 2}

or, from the CLI (``repro.cli serve --fault-spec``)::

    faults = FaultInjector.from_spec("server.write:0.2:3,shard.execute:0.1", seed=7)
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import InjectedCrash, InjectedFault


@dataclass
class FaultRule:
    """One site's failure schedule.

    Parameters
    ----------
    site:
        The injection site the rule applies to.
    probability:
        Chance in ``[0, 1]`` that an opportunity fires (1.0 = always).
    times:
        Maximum number of injections (``None`` = unlimited).
    after:
        Number of initial opportunities to let through unharmed — lets a
        test warm a path up before breaking it.
    crash:
        Raise :class:`~repro.errors.InjectedCrash` (a ``BaseException``)
        instead of :class:`~repro.errors.InjectedFault`.
    """

    site: str
    probability: float = 1.0
    times: int | None = None
    after: int = 0
    crash: bool = False
    seen: int = 0
    injected: int = 0
    rng: random.Random = field(default=None, repr=False)

    def decide(self):
        """Advance one opportunity; return True when the fault should fire."""
        self.seen += 1
        if self.seen <= self.after:
            return False
        if self.times is not None and self.injected >= self.times:
            return False
        if self.probability < 1.0 and self.rng.random() >= self.probability:
            return False
        self.injected += 1
        return True


class FaultInjector:  # repro-lint: ignore[pickle-safety] never pickled — configured per process from the CLI fault spec
    """Seedable, thread-safe registry of per-site fault rules.

    An injector with no rules is inert (every ``maybe_fail`` is a cheap
    dict miss), so production code can unconditionally thread one through.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._rules = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def rule(self, site, probability=1.0, times=None, after=0, crash=False):
        """Register (or replace) the rule for ``site``; returns ``self``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        with self._lock:
            self._rules[site] = FaultRule(
                site=site,
                probability=probability,
                times=times,
                after=after,
                crash=crash,
                rng=random.Random(f"{self.seed}:{site}"),
            )
        return self

    @classmethod
    def from_spec(cls, spec, seed=0):
        """Parse a CLI fault spec: ``site:probability[:times],site2:...``.

        ``times`` omitted means unlimited.  A site suffixed with ``!``
        (e.g. ``shard.execute!:1:1``) injects a crash instead of a fault.
        """
        injector = cls(seed=seed)
        for part in filter(None, (chunk.strip() for chunk in spec.split(","))):
            fields = part.split(":")
            if not 1 <= len(fields) <= 3:
                raise ValueError(f"bad fault spec entry {part!r} (site:prob[:times])")
            site = fields[0]
            crash = site.endswith("!")
            if crash:
                site = site[:-1]
            probability = float(fields[1]) if len(fields) > 1 else 1.0
            times = int(fields[2]) if len(fields) > 2 else None
            injector.rule(site, probability=probability, times=times, crash=crash)
        return injector

    def maybe_fail(self, site, detail=None):
        """Raise the site's configured failure when its rule fires."""
        with self._lock:
            rule = self._rules.get(site)
            if rule is None or not rule.decide():
                return
            crash = rule.crash
        message = f"injected fault at {site}" + (f" ({detail})" if detail else "")
        if crash:
            raise InjectedCrash(message, site=site)
        raise InjectedFault(message, site=site)

    @property
    def counters(self):
        """``{site: injections so far}`` for every registered rule."""
        with self._lock:
            return {site: rule.injected for site, rule in self._rules.items()}

    @property
    def opportunities(self):
        """``{site: opportunities seen}`` for every registered rule."""
        with self._lock:
            return {site: rule.seen for site, rule in self._rules.items()}

    def total_injected(self):
        return sum(self.counters.values())

    def __bool__(self):
        with self._lock:
            return bool(self._rules)


def maybe_fail(injector, site, detail=None):
    """``injector.maybe_fail`` tolerating ``injector=None`` (the common case)."""
    if injector is not None:
        injector.maybe_fail(site, detail=detail)


__all__ = ["FaultInjector", "FaultRule", "maybe_fail"]
