"""The optimizer fleet layer: router, membership ring, exchange, snapshot store.

One ``serve`` process scales a single host; the fleet layer scales the
*deployment*:

* :mod:`~repro.service.fleet.membership` — backend descriptors and the
  consistent-hash ring that maps each request's structural constraint
  digest to a preference order of backends (stable under membership
  changes: adding a replica only moves the keys it takes over).
* :mod:`~repro.service.fleet.router` — the front-end TCP process
  (``repro.cli route``) speaking the same JSONL protocol as ``serve``:
  requests are hashed to a backend, ``overloaded`` responses are
  *re-routed* to the next replica with capacity instead of shed, and
  transport failures fail over the same way.
* :mod:`~repro.service.fleet.exchange` — the periodic cache/memo exchange
  driving the ``sync`` protocol op: each backend's hot-session deltas
  (chase fixpoints + containment verdicts) are relayed to its peers, so a
  replica serves warm hits it never computed locally.
* :mod:`~repro.service.fleet.store` — the shared snapshot store (one
  atomic per-session file keyed by constraint digest), so restarts *and*
  scale-up start warm from whatever any fleet member saved.

Everything is keyed by the one structural identity —
:func:`~repro.chase.implication.constraints_digest` — that shard placement,
snapshot staleness and the sync guard already share: exchanged or restored
state is only valid under the exact dependency set it was computed with.
"""

from repro.service.fleet.exchange import SyncExchanger
from repro.service.fleet.membership import Backend, HashRing, parse_backend
from repro.service.fleet.router import FleetRouter, RouterStats
from repro.service.fleet.store import SnapshotStore, StoreSaver

__all__ = [
    "Backend",
    "FleetRouter",
    "HashRing",
    "RouterStats",
    "SnapshotStore",
    "StoreSaver",
    "SyncExchanger",
    "parse_backend",
]
