"""Periodic cross-process cache/memo exchange between fleet backends.

Every round, :class:`SyncExchanger` asks each reachable backend for its
hot-session deltas (``{"op": "sync", "mode": "export"}`` — chase-cache
entries and containment verdicts learned since the previous round) and
offers each backend the union of its *peers'* deltas
(``mode: "merge"``).  The receiving service recomputes each entry's
structural constraint digest and rejects mismatches, so only state computed
under the exact same dependency set ever merges — the incremental-
maintenance discipline snapshots already apply, now across processes.

Delta markers live server-side (per session, in
:meth:`~repro.service.service.OptimizerService.export_sync`), so rounds are
incremental no matter who drives them; merges are idempotent, so an entry
shipped twice (or echoed back through a third replica on the next round) is
absorbed for free.  A backend that fails a round is skipped — and reported
through ``on_health`` so the router stops preferring it — never retried
inline: the next round is the retry.
"""

from __future__ import annotations

import threading

from repro.errors import ProtocolError
from repro.service.observability.events import log_event

#: Transport failures that skip a backend for the round (next round retries).
_TRANSIENT = (ProtocolError, ConnectionError, OSError)


class SyncExchanger:  # repro-lint: ignore[pickle-safety] never pickled — drives live client connections
    """All-pairs relay of cache/memo deltas across fleet backends.

    Parameters
    ----------
    names:
        Backend names (``host:port``), the exchange's stable identities.
    client_for:
        ``name -> OptimizerClient`` resolver (the router shares its routing
        clients; standalone use builds dedicated ones).  May raise a
        transport error when the backend is down — the backend is skipped
        for the round.
    interval:
        Seconds between rounds for :meth:`start`'s background loop
        (``None`` = manual :meth:`run_once` only — the differential tests
        drive rounds deterministically).
    on_health:
        Optional ``(name, healthy) -> None`` callback fed by round
        outcomes (the router flips its backend health bits with this).
    """

    def __init__(self, names, client_for, interval=None, event_log=None, on_health=None):
        if interval is not None and interval <= 0:
            raise ValueError(f"sync interval must be > 0 or None, got {interval!r}")
        self._names = list(names)
        self._client_for = client_for
        self.interval = interval
        self.event_log = event_log
        self._on_health = on_health
        self.rounds = 0  # guarded-by: _lock
        self.sessions_moved = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._thread = None

    def run_once(self, timeout=None):
        """One exchange round; returns the number of session merges applied.

        Export before merge, all backends: the round first collects every
        reachable backend's deltas, then offers each backend the union of
        the *others'* — so even a round where only one backend learned
        anything still warms the whole fleet.
        """
        exports = {}
        for name in self._names:
            try:
                exports[name] = self._client_for(name).sync_export(timeout=timeout)
                self._health(name, True)
            except _TRANSIENT as error:
                exports[name] = None
                self._count_failure(name, error)
        moved = 0
        for name in self._names:
            if exports.get(name) is None:
                continue  # unreachable this round; it missed its turn, not its state
            offer = [
                session
                for peer, sessions in exports.items()
                if peer != name and sessions
                for session in sessions
            ]
            if not offer:
                continue
            try:
                merged, rejected = self._client_for(name).sync_merge(
                    offer, timeout=timeout
                )
                self._health(name, True)
                moved += merged
                if rejected:
                    log_event(
                        self.event_log, "sync.rejected", backend=name, entries=rejected
                    )
            except _TRANSIENT as error:
                self._count_failure(name, error)
        with self._lock:
            self.rounds += 1
            self.sessions_moved += moved
        log_event(self.event_log, "sync.round", sessions_moved=moved)
        return moved

    def _health(self, name, healthy):
        if self._on_health is not None:
            self._on_health(name, healthy)

    def _count_failure(self, name, error):
        with self._lock:
            self.failures += 1
        self._health(name, False)
        log_event(self.event_log, "sync.backend_failed", backend=name, error=str(error))

    def totals(self):
        """``(rounds, sessions_moved)`` as one consistent snapshot."""
        with self._lock:
            return self.rounds, self.sessions_moved

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        """Start the periodic loop (no-op without an ``interval``)."""
        if self.interval is None or self._thread is not None:
            return self
        self._thread = threading.Thread(  # released-by: stop
            target=self._loop, name="fleet-sync", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self):
        while not self._stopped.wait(timeout=self.interval):
            try:
                self.run_once()
            except Exception as error:  # noqa: BLE001 - a bad round never kills the loop
                log_event(self.event_log, "sync.round_failed", error=str(error))

    def stop(self):
        """Stop the loop (idempotent; in-flight round completes)."""
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


__all__ = ["SyncExchanger"]
