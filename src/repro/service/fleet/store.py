"""The shared snapshot store: per-session files keyed by constraint digest.

PR 6's single-file snapshots warm-restart one process.  A fleet needs the
same warmth *shared*: any backend (or a brand-new replica scaling up)
should boot from whatever the fleet has already learned.  The store is a
directory — local disk for one host, a network mount for many — laid out
by structural constraint digest::

    <root>/<digest[:2]>/<digest>.snap

One file per constraint set, written with the same atomic
temp-file + fsync + rename envelope as :func:`~repro.service.snapshots.
write_snapshot` (manifest digest, payload checksum), so concurrent savers
on different sessions never conflict and two backends racing on the *same*
digest just last-write-win a consistent file.  Loading reuses
:meth:`~repro.service.service.OptimizerService.recover_caches` per file:
stale sessions are skipped by the manifest digest check, unreadable files
cost a counted recovery and a cold start for that one catalog — never a
boot failure.
"""

from __future__ import annotations

import glob
import os

from repro.chase.implication import constraints_digest
from repro.errors import SnapshotError
from repro.service.snapshots import write_snapshot


class SnapshotStore:
    """Directory of per-session snapshots shared by a fleet.

    The digest-keyed layout is what makes sharing safe: a file's *name* is
    the structural identity of the constraint set inside it, so savers on
    different catalogs write different files, and a loader knows what a
    file claims to contain before reading it.
    """

    def __init__(self, root):
        self.root = os.fspath(root)

    def path_for(self, digest):
        """The session file for a constraint digest (two-level fan-out)."""
        return os.path.join(self.root, digest[:2], f"{digest}.snap")

    def files(self):
        """Every session file currently in the store, sorted for determinism."""
        return sorted(glob.glob(os.path.join(self.root, "*", "*.snap")))

    def save(self, sessions, faults=None):
        """Write each session dict to its digest-keyed file; returns count.

        ``sessions`` is the :meth:`OptimizerService.export_sessions` shape.
        Each write is individually atomic; a failure raises
        :class:`~repro.errors.SnapshotError` with earlier files already
        safely in place (the periodic manager counts the failed save and
        retries next interval).
        """
        saved = 0
        for session in sessions:
            digest = constraints_digest(session["signature"])
            path = self.path_for(digest)
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
            except OSError as error:
                raise SnapshotError(
                    f"cannot create store directory for {path!r}: {error}",
                    path=path,
                    reason="io",
                ) from error
            write_snapshot(path, [session], faults=faults)
            saved += 1
        return saved

    def restore(self, service):
        """Warm ``service`` from every readable, fresh session in the store.

        Returns ``(sessions_restored, failed_files)``.  Per-file
        degradation via :meth:`~repro.service.service.OptimizerService.
        recover_caches`: corruption or staleness in one catalog's file
        never blocks the rest of the store.
        """
        restored = 0
        failures = 0
        for path in self.files():
            sessions, error = service.recover_caches(path)
            restored += sessions
            if error is not None:
                failures += 1
        return restored, failures


class StoreSaver:
    """Adapter giving :class:`~repro.service.snapshots.SnapshotManager` a
    store-backed save target.

    The manager's loop calls ``save_caches(path, faults)`` on whatever it
    wraps; this facade ignores the single-file path and fans the service's
    sessions out into the store instead — periodic + SIGUSR1 triggers,
    failure counting and drain-time saves all come along for free.
    """

    def __init__(self, service, store):
        self.service = service
        self.store = store

    def save_caches(self, path, faults=None):
        del path  # the store's layout, not the manager's path, names the files
        return self.store.save(
            self.service.export_sessions(),
            faults=faults
            if faults is not None
            else getattr(self.service, "fault_injector", None),
        )


__all__ = ["SnapshotStore", "StoreSaver"]
