"""The fleet router: one JSONL front end over N backend ``serve`` processes.

:class:`FleetRouter` listens on the same TCP JSONL protocol as
:class:`~repro.service.server.OptimizerServer` and *forwards* instead of
executing: each request's constraint set is resolved to its structural
digest (:func:`~repro.chase.implication.constraints_digest`, memoised per
workload/params pair so the catalog is built once per distinct catalog, not
per request) and consistent-hashed across the backend ring.  Clients keep
using :class:`~repro.service.client.OptimizerClient` unchanged — the router
is just another server to them.

Re-routing, not shedding: a backend's ``overloaded`` response sends the
request to the next replica on the ring's preference walk; only when *every*
backend is overloaded does the client see the rejection (with the last
backend's ``retry_after`` hint intact, which the client now honours
exactly).  Transport failures fail over the same way and flip the backend's
health bit, which feeds the ``/readyz`` probe and the ``backends_healthy``
gauge on the PR 9 observability surface — the router exposes
:meth:`stats`/:meth:`readiness` with the exact shapes
:class:`~repro.service.observability.httpd.ObservabilityServer` and
:func:`~repro.service.observability.prometheus.render_metrics` expect, so
the sidecar wraps a router as readily as a service.

Request ids are rewritten on the backend hop (``rt<n>``): two client
connections may pipeline the same id concurrently, and the per-backend
client demultiplexes by id, so the router's ids must be unique fleet-wide;
the original id is restored on the response line.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.chase.implication import constraints_digest
from repro.errors import ProtocolError
from repro.service.client import OptimizerClient
from repro.service.observability.events import log_event
from repro.service.protocol import (
    decode_request,
    error_record,
    pong_record,
    stats_record,
)
from repro.service.server import _Connection

#: Transport failures that trigger failover to the next ring backend.
_TRANSIENT = (ProtocolError, ConnectionError, OSError)


@dataclass
class RouterStats:
    """The router's gauge surface (the fleet analogue of ``ServiceStats``).

    ``as_dict()`` + an (empty) ``shards`` list are the exact interface the
    observability sidecar renders mechanically, so every field here is a
    ``repro_`` gauge on ``/metrics`` automatically.  ``rerouted`` counts
    overloaded responses that found capacity elsewhere, ``shed`` the
    requests every backend rejected, ``failovers`` the transport-failure
    re-dispatches.
    """

    backends: int = 0
    backends_healthy: int = 0
    requests: int = 0
    routed: int = 0
    rerouted: int = 0
    failovers: int = 0
    shed: int = 0
    errors: int = 0
    sync_rounds: int = 0
    sync_sessions_moved: int = 0
    shards: list = field(default_factory=list, repr=False)

    def as_dict(self):
        return {
            "backends": self.backends,
            "backends_healthy": self.backends_healthy,
            "requests": self.requests,
            "routed": self.routed,
            "rerouted": self.rerouted,
            "failovers": self.failovers,
            "shed": self.shed,
            "errors": self.errors,
            "sync_rounds": self.sync_rounds,
            "sync_sessions_moved": self.sync_sessions_moved,
        }


class FleetRouter:  # repro-lint: ignore[pickle-safety] never pickled — owns sockets, threads and live clients
    """Consistent-hash front end for a fleet of backend ``serve`` processes.

    Parameters
    ----------
    backends:
        Backend specs: ``"host:port"`` strings or ``(host, port)`` pairs.
    host / port:
        The router's own bind address (``port=0`` = OS-assigned; read it
        back from :attr:`address`, as the ``--port-file`` flag does).
    connect_timeout / request_timeout:
        Per-backend TCP connect budget and per-attempt response wait; a
        ``request_timeout`` expiry counts as a transport failure and fails
        over (``None`` waits indefinitely).
    ring_replicas:
        Virtual points per backend on the consistent-hash ring.
    route_workers:
        Routing worker threads: forwarded requests wait on backend round
        trips, so one slow backend must not serialize a connection's
        pipelined lines.
    event_log:
        Optional :class:`~repro.service.observability.events.EventLog`;
        the router emits ``route.reroute`` / ``route.failover`` /
        ``route.shed`` events.
    """

    def __init__(
        self,
        backends,
        host="127.0.0.1",
        port=0,
        backlog=32,
        connect_timeout=5.0,
        request_timeout=None,
        ring_replicas=64,
        route_workers=16,
        event_log=None,
    ):
        from repro.service.fleet.membership import Backend, HashRing, parse_backend

        self._backends = {}
        for spec in backends:
            backend_host, backend_port = (
                parse_backend(spec) if isinstance(spec, str) else spec
            )
            backend = Backend(backend_host, backend_port)
            self._backends[backend.name] = backend
        self.ring = HashRing(list(self._backends), replicas=ring_replicas)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.event_log = event_log
        self.exchanger = None  # attached by attach_exchanger
        self._clients = {}  # guarded-by: _clients_lock
        self._clients_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0  # guarded-by: _stats_lock
        self._routed = 0  # guarded-by: _stats_lock
        self._rerouted = 0  # guarded-by: _stats_lock
        self._failovers = 0  # guarded-by: _stats_lock
        self._shed = 0  # guarded-by: _stats_lock
        self._errors = 0  # guarded-by: _stats_lock
        self._digests = {}  # guarded-by: _digest_lock
        self._digest_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(  # released-by: stop
            max_workers=route_workers, thread_name_prefix="fleet-route"
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # released-by: stop
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.address = self._listener.getsockname()
        self._connections = []  # guarded-by: _connections_lock
        self._connections_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(  # released-by: stop
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._handler_threads = []  # guarded-by: _connections_lock
        self._accept_thread.start()

    @property
    def port(self):
        return self.address[1]

    # ------------------------------------------------------------------ #
    # accept / per-connection handling (mirrors OptimizerServer)
    # ------------------------------------------------------------------ #
    def _accept_loop(self):
        while not self._closed.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            connection = _Connection(sock, address)
            with self._connections_lock:
                self._connections.append(connection)
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name=f"fleet-conn-{address[1]}",
                daemon=True,
            )
            with self._connections_lock:
                self._handler_threads = [
                    thread for thread in self._handler_threads if thread.is_alive()
                ]
                self._handler_threads.append(handler)
            handler.start()

    def _handle_connection(self, connection):
        reader = connection.sock.makefile("r", encoding="utf-8", newline="\n")
        try:
            for number, line in enumerate(reader, start=1):
                if self._closed.is_set():
                    break
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                self._handle_line(connection, line, number)
        except OSError:
            pass  # connection reset mid-read; dispatched requests still answer
        finally:
            connection.drained.wait()
            try:
                reader.close()
            except OSError:
                pass
            try:
                connection.sock.close()
            except OSError:
                pass
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _handle_line(self, connection, line, number):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            connection.send(error_record(number, error))
            return
        if not isinstance(record, dict):
            connection.send(error_record(number, "request line must be a JSON object"))
            return
        if "op" in record:
            self._handle_op(connection, record, number)
            return
        connection.began()
        try:
            self._pool.submit(self._route_request, connection, record, number)
        except RuntimeError as error:  # pool shut down mid-line
            connection.finished()
            connection.send(error_record(record.get("id", number), error))

    def _handle_op(self, connection, record, number):
        """Control ops answered by the router itself (never forwarded)."""
        op = record.get("op")
        request_id = record.get("id", number)
        if op == "stats":
            connection.send(stats_record(self.stats().as_dict(), request_id))
        elif op == "ping":
            connection.send(pong_record(request_id))
        else:
            connection.send(error_record(request_id, f"unknown op {op!r}"))

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _digest_for(self, record):
        """The request's structural constraint digest (memoised per catalog).

        Builds the workload once per distinct ``(workload, params)`` pair —
        the digest is a pure function of the catalog's constraint set, and
        the router must not pay catalog construction per request.
        """
        key = None
        try:
            params = record.get("params") or {}
            key = (record.get("workload"), tuple(sorted(params.items())))
        except TypeError:
            key = None  # unhashable params: validate + digest uncached
        if key is not None:
            with self._digest_lock:
                cached = self._digests.get(key)
            if cached is not None:
                return cached
        _rid, workload, _strategy, _timeout = decode_request(dict(record), 0)
        digest = constraints_digest(workload.catalog.constraints())
        if key is not None:
            with self._digest_lock:
                self._digests[key] = digest
        return digest

    def _client_for(self, backend):
        with self._clients_lock:
            client = self._clients.get(backend.name)
            if client is None:
                # One shared client per backend: it reconnects itself after
                # transport failures, so it is created exactly once.
                client = OptimizerClient(
                    host=backend.host,
                    port=backend.port,
                    connect_timeout=self.connect_timeout,
                )
                self._clients[backend.name] = client
            return client

    def client_for_name(self, name):
        """A (shared, reconnecting) client for backend ``name`` — the
        exchanger routes its sync ops through the same links requests use,
        so health flips from either path agree."""
        return self._client_for(self._backends[name])

    def _mark(self, backend, healthy):
        with self._stats_lock:
            backend.healthy = healthy

    def _route_request(self, connection, record, number):
        request_id = record.get("id", number)
        try:
            self._route(connection, record, request_id)
        except Exception as error:  # noqa: BLE001 - every line gets one response
            with self._stats_lock:
                self._errors += 1
            connection.send(error_record(request_id, error))
        finally:
            connection.finished()

    def _route(self, connection, record, request_id):
        with self._stats_lock:
            self._requests += 1
        try:
            digest = self._digest_for(record)
        except (ValueError, TypeError) as error:
            # Validation failures stop at the edge: no backend would accept
            # the request either, so burning a hop on it only adds latency.
            with self._stats_lock:
                self._errors += 1
            connection.send(error_record(request_id, error))
            return
        order = self.ring.preference(digest)
        wire = dict(record)
        last_overloaded = None
        last_failure = None
        for position, name in enumerate(order):
            backend = self._backends[name]
            wire["id"] = f"rt{next(self._ids)}"
            try:
                response = self._client_for(backend).request(
                    wire, timeout=self.request_timeout
                )
            except _TRANSIENT as error:
                self._mark(backend, healthy=False)
                with self._stats_lock:
                    self._failovers += 1
                    backend.failures += 1
                last_failure = error
                log_event(
                    self.event_log,
                    "route.failover",
                    request_id=request_id,
                    backend=name,
                    error=str(error),
                )
                continue
            self._mark(backend, healthy=True)
            if response.get("status") == "overloaded":
                last_overloaded = response
                with self._stats_lock:
                    backend.rerouted_away += 1
                if position + 1 < len(order):
                    # Re-route, don't shed: another replica may have capacity
                    # (it pays a cold session for this catalog at worst —
                    # the sync exchange warms it back up).
                    with self._stats_lock:
                        self._rerouted += 1
                    log_event(
                        self.event_log,
                        "route.reroute",
                        request_id=request_id,
                        backend=name,
                    )
                continue
            with self._stats_lock:
                self._routed += 1
                backend.routed += 1
            response["id"] = request_id
            connection.send(response)
            return
        if last_overloaded is not None:
            # Every backend rejected: surface the overload (with the last
            # retry_after hint intact) so retrying clients back off.
            with self._stats_lock:
                self._shed += 1
            log_event(self.event_log, "route.shed", request_id=request_id)
            last_overloaded["id"] = request_id
            connection.send(last_overloaded)
            return
        with self._stats_lock:
            self._errors += 1
        connection.send(
            error_record(
                request_id, last_failure if last_failure is not None else "no backend available"
            )
        )

    # ------------------------------------------------------------------ #
    # observability surface (the sidecar wraps the router like a service)
    # ------------------------------------------------------------------ #
    def stats(self):
        """Router gauges in the sidecar's expected shape (``as_dict`` + ``shards``)."""
        with self._stats_lock:
            stats = RouterStats(
                backends=len(self._backends),
                backends_healthy=sum(
                    1 for backend in self._backends.values() if backend.healthy
                ),
                requests=self._requests,
                routed=self._routed,
                rerouted=self._rerouted,
                failovers=self._failovers,
                shed=self._shed,
                errors=self._errors,
            )
        if self.exchanger is not None:
            stats.sync_rounds, stats.sync_sessions_moved = self.exchanger.totals()
        return stats

    def readiness(self):
        """``(ready, detail)``: ready while at least one backend is healthy."""
        with self._stats_lock:
            healthy = [
                backend.name
                for backend in self._backends.values()
                if backend.healthy
            ]
        if self._closed.is_set():
            return False, {"reason": "router is stopped"}
        if not healthy:
            return False, {"reason": "no healthy backends"}
        return True, {"backends": len(self._backends), "healthy": len(healthy)}

    def attach_exchanger(self, interval=None):
        """Create (and on an ``interval``, start) the fleet sync exchanger.

        The exchanger shares the router's per-backend clients, so a backend
        that fails a sync round is also marked unhealthy for routing.
        """
        from repro.service.fleet.exchange import SyncExchanger

        self.exchanger = SyncExchanger(
            list(self._backends),
            self.client_for_name,
            interval=interval,
            event_log=self.event_log,
            on_health=lambda name, healthy: self._mark(self._backends[name], healthy),
        )
        if interval is not None:
            self.exchanger.start()
        return self.exchanger

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def stop(self, drain=True, timeout=None):
        """Stop accepting, drain dispatched requests, release everything."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self.exchanger is not None:
            self.exchanger.stop()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._connections)
        if drain:
            for connection in connections:
                connection.drained.wait(timeout=timeout)
        for connection in connections:
            connection.abort()
        self._accept_thread.join(timeout=5.0)
        with self._connections_lock:
            handlers = list(self._handler_threads)
        for handler in handlers:
            handler.join(timeout=5.0)
        self._pool.shutdown(wait=True)
        with self._clients_lock:
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


__all__ = ["FleetRouter", "RouterStats"]
