"""Fleet membership: backend descriptors and the consistent-hash ring.

The ring maps a request's structural constraint digest
(:func:`~repro.chase.implication.constraints_digest`) to an ordered
*preference list* of backends.  Consistent hashing — each backend owns many
virtual points on a ring, a key routes to the first point at or after its
own — keeps placement stable under membership changes: adding or removing
one replica only moves the keys that replica's points cover, so the rest of
the fleet keeps its warm sessions.

The preference list (every distinct backend in ring-walk order) doubles as
the re-route order: when the primary answers ``overloaded`` or its
transport fails, the router tries the next backend on the list instead of
shedding the request.  Because the walk order is a pure function of the
digest, retries of the same constraint set always probe replicas in the
same order — the second-choice backend accumulates that catalog's spillover
traffic (and its warm session) instead of spraying it fleet-wide.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass, field


def parse_backend(spec):
    """Parse a ``host:port`` backend spec (``:port`` defaults the host).

    Raises ``ValueError`` on a missing or non-numeric port — backends are
    operator-supplied CLI flags, so the error names the offending spec.
    """
    host, separator, port = spec.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(f"backend spec {spec!r} is not host:port")
    return host or "127.0.0.1", int(port)


@dataclass
class Backend:
    """One backend ``serve`` process as the router sees it.

    ``healthy`` is the router's optimistic health bit: it starts True, flips
    False on a transport failure and back on any successful exchange — the
    readiness probe and the ``backends_healthy`` gauge read it.  The
    mutable counters are guarded by the owning router's stats lock.
    """

    host: str
    port: int
    healthy: bool = True
    routed: int = 0
    rerouted_away: int = 0
    failures: int = 0

    @property
    def name(self):
        return f"{self.host}:{self.port}"


class HashRing:
    """Consistent-hash ring over backend names.

    Parameters
    ----------
    names:
        The backend names (``host:port`` strings) on the ring.
    replicas:
        Virtual points per backend.  More points smooth the key
        distribution (64 keeps the max/min ownership ratio within a few
        percent for small fleets) at O(names * replicas) memory.
    """

    def __init__(self, names, replicas=64):
        names = list(names)
        if not names:
            raise ValueError("a hash ring needs at least one backend")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        self.replicas = replicas
        self._names = names
        self._points = []
        for name in names:
            for index in range(replicas):
                self._points.append((self._point(f"{name}#{index}"), name))
        self._points.sort()
        self._keys = [point for point, _name in self._points]
        self._lock = threading.Lock()
        self._preference_cache = {}  # guarded-by: _lock

    @staticmethod
    def _point(text):
        return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], 16)

    def preference(self, key):
        """Every distinct backend in ring-walk order from ``key``'s point.

        ``key`` is a constraint digest (hex); its point reuses the digest's
        own leading bits, so routing is a pure function of the structural
        constraint identity.  The walk order is memoised per key — the hot
        path looks the same digest up on every request.
        """
        with self._lock:
            cached = self._preference_cache.get(key)
            if cached is not None:
                return list(cached)
        start = bisect.bisect_left(self._keys, int(key[:16], 16) if key else 0)
        order = []
        seen = set()
        for offset in range(len(self._points)):
            _point, name = self._points[(start + offset) % len(self._points)]
            if name not in seen:
                seen.add(name)
                order.append(name)
                if len(order) == len(self._names):
                    break
        with self._lock:
            # Bound the memo: distinct catalogs are few in practice, but a
            # hostile key stream must not grow router memory without bound.
            if len(self._preference_cache) >= 4096:
                self._preference_cache.clear()
            self._preference_cache[key] = tuple(order)
        return order

    def __getstate__(self):
        # A pickled ring must not capture the live lock or the memo
        # mid-mutation; the memo is a pure cache, so drop it entirely.
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        state["_preference_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._preference_cache = {}

    def route(self, key):
        """The primary backend for ``key`` (first entry of the preference)."""
        return self.preference(key)[0]

    def __len__(self):
        return len(self._names)

    @property
    def names(self):
        return list(self._names)


__all__ = ["Backend", "HashRing", "parse_backend"]
