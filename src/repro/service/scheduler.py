"""Cross-query wave batching for the optimizer service.

A shard's requests run concurrently on its runner threads, but none of them
owns an executor pool: every unit of parallel work — a chunk of backchase
subquery-lattice subsets, an OQF fragment, an OCS stage query — is enqueued
as a :class:`_WorkItem` on the shard's single :class:`WaveScheduler`.  A
dispatcher thread drains the queue in *waves*: it collects items for a short
batching window (or until ``max_batch`` items are buffered) and dispatches
the whole batch onto one persistent worker pool.  Items that arrive from
different in-flight queries therefore share the same wave — the
``cross_request_waves`` counter measures exactly how often that coalescing
happens — and every outcome is demultiplexed back to its request's future by
the request id stamped on the payload.

:class:`ScheduledPool` adapts the scheduler to the executor protocol of
:mod:`repro.chase.backchase` (``start`` / ``run_wave`` / ``map`` /
``close``), so :class:`~repro.chase.backchase.ParallelBackchase` and the
optimizer's OQF/OCS fan-out run on the shared pool without any engine
changes — which is also why the service's plan sets are signature-identical
to single-shot runs.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.chase.backchase import (
    _evaluate_chunk,
    resolve_worker_count,
    size_ordered_chunks,
)
from repro.trace import activate, active_trace

#: Executor kinds a :class:`WaveScheduler` can run on.  Process pools are
#: deliberately absent: the service's whole point is *shared* warm caches,
#: and a detached worker process would copy them instead of sharing them.
SERVICE_EXECUTORS = ("serial", "threads")


@dataclass
class _WorkItem:
    """One schedulable unit with the future its outcome resolves.

    ``trace`` carries the submitting request's
    :class:`~repro.trace.RequestTrace` so the worker that runs the item —
    the dispatcher inline (serial) or a pool thread — re-activates it and
    engine stage times land on the right request.  Work items never cross
    a pickle boundary (service executors are serial/threads only), so the
    live trace object riding here is safe.
    """

    request_id: object
    fn: object
    payload: object
    trace: object = None
    future: Future = field(default_factory=Future)


@dataclass
class SchedulerStats:
    """Batching counters (snapshotted under the scheduler lock)."""

    waves: int = 0
    items: int = 0
    cross_request_waves: int = 0
    max_wave_size: int = 0


class WaveScheduler:  # repro-lint: ignore[pickle-safety] never pickled — owns a live thread pool and dispatcher
    """Batches work items from concurrent requests into shared executor waves.

    Parameters
    ----------
    executor:
        ``"threads"`` (default) or ``"serial"``.  Serial runs every wave
        inline on the dispatcher thread — the reference mode the equivalence
        tests exercise.
    workers:
        Worker-thread count for the ``"threads"`` pool (``None`` = CPU
        count).
    batch_window:
        Seconds the dispatcher keeps collecting after the first item of a
        wave arrives.  Small values trade a little coalescing for latency;
        the default (1 ms) is enough for chunks submitted together by one
        ``run_wave`` call — and for whatever other requests enqueue in the
        meantime — to land in one wave.
    max_batch:
        Hard cap on items per wave.
    """

    def __init__(self, executor="threads", workers=None, batch_window=0.001, max_batch=64):
        if executor not in SERVICE_EXECUTORS:
            raise ValueError(
                f"unknown service executor {executor!r}; expected one of {SERVICE_EXECUTORS}"
                " (process pools cannot share warm caches)"
            )
        self.executor = executor
        self.workers = 1 if executor == "serial" else resolve_worker_count(workers)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._queue = queue.SimpleQueue()
        self._pool = (
            ThreadPoolExecutor(max_workers=self.workers, thread_name_prefix="svc-wave")
            if executor == "threads"
            else None
        )
        self._stats = SchedulerStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()
        self._closed = threading.Event()
        self._dispatcher = threading.Thread(  # released-by: shutdown
            target=self._dispatch_loop, name="svc-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, request_id, fn, payload, trace=None):
        """Enqueue ``fn(payload)`` for the next wave; returns its Future."""
        if self._closed.is_set():
            raise RuntimeError("WaveScheduler is shut down")
        item = _WorkItem(request_id, fn, payload, trace=trace)
        self._queue.put(item)
        return item.future

    def submit_many(self, request_id, fn, payloads, trace=None):
        """Enqueue several payloads at once (they tend to share one wave)."""
        return [self.submit(request_id, fn, payload, trace=trace) for payload in payloads]

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self):
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if first is None:
                return
            batch = [first]
            window_deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = window_deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    self._run_wave(batch)
                    return
                batch.append(item)
            self._run_wave(batch)

    def _run_wave(self, batch):
        with self._stats_lock:
            self._stats.waves += 1
            self._stats.items += len(batch)
            self._stats.max_wave_size = max(self._stats.max_wave_size, len(batch))
            if len({item.request_id for item in batch}) > 1:
                self._stats.cross_request_waves += 1
        if self._pool is None:
            for item in batch:
                self._run_item(item)
        else:
            for item in batch:
                self._pool.submit(self._run_item, item)

    @staticmethod
    def _run_item(item):
        if not item.future.set_running_or_notify_cancel():
            return
        try:
            # Re-activate the submitting request's trace on this worker:
            # a wave mixes items from several requests, so the ambient
            # trace swaps per item (activate(None) is a no-op).
            with activate(item.trace):
                outcome = item.fn(item.payload)
            item.future.set_result(outcome)
        except BaseException as exc:  # noqa: BLE001 - relayed to the waiter
            item.future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # lifecycle / stats
    # ------------------------------------------------------------------ #
    def stats(self):
        """Return a copy of the batching counters."""
        with self._stats_lock:
            return SchedulerStats(
                waves=self._stats.waves,
                items=self._stats.items,
                cross_request_waves=self._stats.cross_request_waves,
                max_wave_size=self._stats.max_wave_size,
            )

    def shutdown(self, wait=True):
        """Stop the dispatcher and the worker pool (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(None)
        if wait:
            self._dispatcher.join(timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)


def _evaluate_scheduled_chunk(payload):
    """Unpack one batched backchase chunk and evaluate it in-process."""
    context, keys, deadline, cache, memo = payload
    return _evaluate_chunk(context, keys, deadline, cache, memo=memo)


class ScheduledPool:
    """Executor-protocol adapter running one request's waves on a scheduler.

    One instance is created per service request; it is stateless beyond the
    request id and the :class:`WaveScheduler` it forwards to, so ``close`` is
    a no-op (the scheduler and its pool outlive every request — that is the
    whole point of the service).  ``detached`` is ``False``: every chunk
    shares the session's warm :class:`ChaseCache` directly, so there is
    nothing to merge back after a wave.
    """

    kind = "scheduled"
    detached = False
    chunk_policy = "size-ordered"

    def __init__(self, scheduler, request_id):
        self.scheduler = scheduler
        self.request_id = request_id
        self.workers = scheduler.workers
        self._context = None
        self._cache = None
        self._memo = None

    def start(self, context, cache, memo=None):
        context.request_id = self.request_id
        self._context = context
        self._cache = cache
        self._memo = memo

    def run_wave(self, keys, deadline, seed_entries=None):
        # seed_entries is ignored: chunks share the session cache directly.
        chunks = size_ordered_chunks(keys, self.workers)
        futures = self.scheduler.submit_many(
            self.request_id,
            _evaluate_scheduled_chunk,
            [(self._context, chunk, deadline, self._cache, self._memo) for chunk in chunks],
            trace=active_trace(),
        )
        outcomes = [future.result() for future in futures]
        for outcome in outcomes:
            # Demux guard: a wave mixes chunks from several requests; every
            # outcome must echo the id its context was stamped with.
            if outcome.request_id != self.request_id:
                raise RuntimeError(
                    f"wave outcome for request {outcome.request_id!r} delivered to "
                    f"request {self.request_id!r}"
                )
        return outcomes

    def map(self, fn, payloads):
        """Run stage tasks (OQF fragments / OCS stages) through the scheduler.

        Payloads that carry a ``request_id`` field (:class:`_StageTask`) are
        stamped with this request's id so batching metrics and demux guards
        see which query each item belongs to.
        """
        stamped = [
            replace(payload, request_id=self.request_id)
            if hasattr(payload, "request_id") and hasattr(payload, "__dataclass_fields__")
            else payload
            for payload in payloads
        ]
        futures = self.scheduler.submit_many(
            self.request_id, fn, stamped, trace=active_trace()
        )
        return [future.result() for future in futures]

    def close(self):
        pass


__all__ = [
    "SERVICE_EXECUTORS",
    "ScheduledPool",
    "SchedulerStats",
    "WaveScheduler",
]
