"""The service-side tracer: trace lifecycle, ring buffer, JSONL trace log.

The tracing *core* (:class:`~repro.trace.RequestTrace`, ambient
activation, the ``traced_stage`` decorator) lives at the package root in
:mod:`repro.trace` so the engine layers can use it without importing the
service package.  This module is the serving-tier half: a :class:`Tracer`
mints one trace per admitted request, receives it back when the request
resolves, keeps the last ``ring_size`` finished span trees in memory (the
``/traces`` endpoint), optionally appends each to a JSONL trace log
(``--trace-log``), and owns the :class:`~repro.service.metrics.StageHistograms`
that every stage observation feeds live (the ``/metrics`` histograms).
"""

from __future__ import annotations

import json
import threading
from collections import deque

from repro.trace import RequestTrace
from repro.service.metrics import StageHistograms


class Tracer:  # repro-lint: ignore[pickle-safety] never pickled — owns a live trace log stream
    """Mints, collects and exports per-request span trees.

    Parameters
    ----------
    ring_size:
        Finished traces kept in memory (bounded: a long-lived server must
        not grow per-request state without bound — same rule as the
        latency ring in :class:`~repro.service.metrics.MetricsCollector`).
    trace_log:
        Optional path of a JSONL trace log; every finished trace is
        appended as one ``as_dict()`` line.  Failed writes are dropped
        silently (the request path never pays for a full disk).
    histograms:
        The :class:`~repro.service.metrics.StageHistograms` stage
        observations feed (one is created when not given).
    """

    def __init__(self, ring_size=256, trace_log=None, histograms=None):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size!r}")
        self.histograms = histograms if histograms is not None else StageHistograms()
        self._ring = deque(maxlen=ring_size)  # guarded-by: _lock
        self._started = 0  # guarded-by: _lock
        self._finished = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._log_lock = threading.Lock()
        self._log_stream = (  # guarded-by: _log_lock
            open(trace_log, "a", encoding="utf-8") if trace_log else None
        )

    # ------------------------------------------------------------------ #
    # lifecycle of one request's trace
    # ------------------------------------------------------------------ #
    def start_trace(self, request_id):
        """Mint the span tree for one admitted request."""
        with self._lock:
            self._started += 1
        return RequestTrace(request_id, observer=self.histograms)

    def export(self, trace):
        """Collect a finished trace into the ring (and the JSONL log)."""
        record = trace.as_dict()
        with self._lock:
            self._finished += 1
            self._ring.append(record)
        with self._log_lock:
            if self._log_stream is not None:
                try:
                    self._log_stream.write(json.dumps(record) + "\n")
                    self._log_stream.flush()
                except (OSError, ValueError):
                    pass
        return record

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def recent(self, limit=None):
        """The most recent finished span trees, oldest first."""
        with self._lock:
            records = list(self._ring)
        return records if limit is None else records[-limit:]

    def counters(self):
        """``(traces started, traces finished)`` totals."""
        with self._lock:
            return self._started, self._finished

    def close(self):
        """Close the trace log stream, if any (idempotent)."""
        with self._log_lock:
            stream, self._log_stream = self._log_stream, None
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


__all__ = ["Tracer"]
