"""First-class observability for the optimizer service.

Three surfaces over one running :class:`~repro.service.OptimizerService`:

``tracing``
    :class:`Tracer` — creates per-request
    :class:`~repro.trace.RequestTrace` span trees, keeps a bounded
    in-memory ring of finished traces, optionally appends each to a JSONL
    trace log, and feeds the per-stage latency histograms live.
``prometheus``
    :func:`render_metrics` — every :class:`~repro.service.ServiceStats`
    gauge, the per-shard breakdown and the per-stage latency histograms in
    Prometheus text exposition format.
``httpd``
    :class:`ObservabilityServer` — a stdlib ``http.server`` sidecar with
    ``/metrics`` (Prometheus), ``/healthz`` (liveness), ``/readyz``
    (readiness), ``/stats`` (``as_dict`` JSON) and ``/traces`` (the recent
    trace ring).
``events``
    :class:`EventLog` / :func:`log_event` — the structured JSONL event
    stream (request admitted/rejected/completed, runner crash/restart,
    snapshot save/load/fail) that replaces ad-hoc stderr prints.
"""

from repro.service.observability.events import EventLog, log_event
from repro.service.observability.httpd import ObservabilityServer
from repro.service.observability.prometheus import render_metrics
from repro.service.observability.tracing import Tracer

__all__ = [
    "EventLog",
    "ObservabilityServer",
    "Tracer",
    "log_event",
    "render_metrics",
]
