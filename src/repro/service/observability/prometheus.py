"""Prometheus text-exposition rendering for the service stats surface.

Zero-dep: the text format is lines of ``name{labels} value`` with
``# HELP`` / ``# TYPE`` headers, which needs no client library.  Coverage
is mechanical on purpose: :func:`render_metrics` iterates the *actual*
``ServiceStats.as_dict()`` mapping, so a gauge added to the stats surface
shows up on ``/metrics`` automatically — the conformance test asserts the
families exhaustively, and PR 8's ``metrics-conformance`` lint already
guarantees the dict itself cannot silently drop a collector gauge.

Families
--------
``repro_<key>``
    One gauge per ``ServiceStats.as_dict()`` field (service-wide).
``repro_shard_<field>{shard="N"}``
    The per-shard breakdown of every numeric ``ShardStats`` field.
``repro_stage_latency_seconds{stage="..."}``
    Per-stage latency histograms fed by request tracing
    (``_bucket``/``_sum``/``_count`` with cumulative ``le`` buckets).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

_HELP = {
    "requests": "Completed requests (exact total).",
    "errors": "Requests that resolved with an error.",
    "rejected": "Requests shed by admission control.",
    "shards": "Configured shard count.",
    "sessions": "Warm sessions currently held across shards.",
    "sessions_evicted": "Warm sessions evicted by the per-shard LRU bound.",
    "queue_depth": "Requests admitted and not yet completed.",
    "queue_peak": "High-water mark of the admission queue depth.",
    "runner_restarts": "Replacement runner threads spawned by supervision.",
    "runner_failures": "Requests whose runner thread died executing them.",
    "recoveries": "Cold-start recoveries from unusable snapshots.",
    "stale_sessions": "Snapshot sessions skipped for changed constraints.",
    "snapshots_loaded": "Successful snapshot loads.",
    "sessions_restored": "Warm sessions restored from snapshots.",
    "sync_exports": "Fleet sync exports answered (delta rounds).",
    "sync_sessions_exported": "Hot sessions shipped to fleet peers.",
    "sync_merges": "Fleet sync merges applied.",
    "sync_sessions_merged": "Peer sessions folded into local caches.",
    "sync_rejected": "Peer sync entries rejected (digest mismatch/malformed).",
    "routed": "Requests forwarded to a backend by the fleet router.",
    "rerouted": "Overloaded responses re-routed to another replica.",
    "failovers": "Requests re-dispatched after a backend transport failure.",
    "shed": "Requests returned overloaded (no replica had capacity).",
    "backends": "Backends configured on the fleet router's ring.",
    "backends_healthy": "Backends that answered their last probe or request.",
    "sync_rounds": "Cache/memo exchange rounds driven by the router.",
    "sync_sessions_moved": "Session deltas relayed between backends.",
    "cache_hits": "Chase-cache hits across all sessions.",
    "cache_misses": "Chase-cache misses across all sessions.",
    "cache_evictions": "Chase-cache LRU evictions.",
    "cache_hit_rate": "Chase-cache hit rate in [0, 1].",
    "memo_hits": "Containment-memo hits across all sessions.",
    "memo_misses": "Containment-memo misses across all sessions.",
    "memo_evictions": "Containment-memo LRU evictions.",
    "memo_hit_rate": "Containment-memo hit rate in [0, 1].",
    "waves": "Executor waves dispatched by the shard schedulers.",
    "cross_request_waves": "Waves that batched work from several requests.",
    "p50_latency_s": "Median request latency over the bounded window (s).",
    "p95_latency_s": "p95 request latency over the bounded window (s).",
    "p99_latency_s": "p99 request latency over the bounded window (s).",
}


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_metrics(stats, histograms=None, namespace="repro"):
    """Render ``stats`` (a :class:`~repro.service.metrics.ServiceStats`)
    plus optional per-stage ``histograms`` as Prometheus exposition text.

    Every ``stats.as_dict()`` field becomes a ``<namespace>_<key>`` gauge;
    every numeric :class:`~repro.service.metrics.ShardStats` field becomes
    a ``<namespace>_shard_<field>`` gauge labelled by shard; ``histograms``
    (a :class:`~repro.service.metrics.StageHistograms` snapshot provider)
    becomes the ``<namespace>_stage_latency_seconds`` histogram family.
    """
    lines = []
    for key, value in stats.as_dict().items():
        name = f"{namespace}_{key}"
        lines.append(f"# HELP {name} {_HELP.get(key, key)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    lines.extend(_render_shards(stats.shards, namespace))
    if histograms is not None:
        lines.extend(_render_histograms(histograms, namespace))
    return "\n".join(lines) + "\n"


def _render_shards(shards, namespace):
    if not shards:
        return []
    lines = []
    numeric_fields = [
        spec.name
        for spec in dataclass_fields(shards[0])
        if spec.name != "shard"
        and isinstance(getattr(shards[0], spec.name), (int, float))
    ]
    for field_name in numeric_fields:
        name = f"{namespace}_shard_{field_name}"
        lines.append(f"# HELP {name} Per-shard {field_name.replace('_', ' ')}.")
        lines.append(f"# TYPE {name} gauge")
        for shard in shards:
            value = _format_value(getattr(shard, field_name))
            lines.append(f'{name}{{shard="{shard.shard}"}} {value}')
    return lines


def _render_histograms(histograms, namespace):
    name = f"{namespace}_stage_latency_seconds"
    lines = [
        f"# HELP {name} Wall seconds billed to each request pipeline stage.",
        f"# TYPE {name} histogram",
    ]
    for stage, series in histograms.snapshot().items():
        for bound, cumulative in series["buckets"]:
            le = bound if isinstance(bound, str) else repr(float(bound))
            lines.append(f'{name}_bucket{{stage="{stage}",le="{le}"}} {cumulative}')
        lines.append(f'{name}_sum{{stage="{stage}"}} {repr(series["sum"])}')
        lines.append(f'{name}_count{{stage="{stage}"}} {series["count"]}')
    return lines


__all__ = ["render_metrics"]
