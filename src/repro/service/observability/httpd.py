"""The HTTP observability sidecar: /metrics, /healthz, /readyz, /stats, /traces.

A stdlib :class:`http.server.ThreadingHTTPServer` running on its own daemon
thread next to the JSONL socket front end (``serve --http-port``).  It is a
*read-only* window: every endpoint snapshots live service state and never
touches the serving path.

Endpoints
---------
``/metrics``
    Prometheus text format: every service gauge, the per-shard breakdown
    and the per-stage latency histograms
    (:func:`~repro.service.observability.prometheus.render_metrics`).
``/healthz``
    Liveness: 200 as long as the sidecar answers (the process is up).
``/readyz``
    Readiness: 200 once the readiness probe passes (service accepting,
    every shard's runner pool alive, snapshot load settled), 503 with a
    JSON detail body otherwise.
``/stats``
    The ``ServiceStats.as_dict()`` JSON — byte-for-byte the same mapping
    the JSONL ``{"op": "stats"}`` control line returns.
``/traces``
    The recent finished span trees from the tracer ring
    (``?limit=N`` caps the count), newest last.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.observability.prometheus import render_metrics

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server`` (the sidecar)."""

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a scraped /metrics
    # endpoint would turn that into a log line per scrape interval.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self):  # noqa: N802 - stdlib handler naming
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._metrics()
        elif route == "/healthz":
            self._send(200, "text/plain; charset=utf-8", "ok\n")
        elif route == "/readyz":
            self._readyz()
        elif route == "/stats":
            self._json(200, self.server.owner.service.stats().as_dict())
        elif route == "/traces":
            self._traces(parsed)
        else:
            self._json(404, {"error": f"no such endpoint {parsed.path!r}"})

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _metrics(self):
        owner = self.server.owner
        tracer = owner.tracer
        body = render_metrics(
            owner.service.stats(),
            histograms=tracer.histograms if tracer is not None else None,
        )
        self._send(200, PROMETHEUS_CONTENT_TYPE, body)

    def _readyz(self):
        ready, detail = self.server.owner.readiness()
        self._json(200 if ready else 503, {"ready": ready, "detail": detail})

    def _traces(self, parsed):
        tracer = self.server.owner.tracer
        if tracer is None:
            self._json(404, {"error": "tracing is not enabled"})
            return
        limit = None
        values = parse_qs(parsed.query).get("limit")
        if values:
            try:
                limit = max(1, int(values[0]))
            except ValueError:
                self._json(400, {"error": f"bad limit {values[0]!r}"})
                return
        self._json(200, {"traces": tracer.recent(limit)})

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    def _json(self, status, payload):
        self._send(status, "application/json; charset=utf-8", json.dumps(payload) + "\n")

    def _send(self, status, content_type, body):
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response


class ObservabilityServer:  # repro-lint: ignore[pickle-safety] never pickled — owns a listening socket and a thread
    """The HTTP sidecar wrapping one service (and optionally its tracer).

    Parameters
    ----------
    service:
        The :class:`~repro.service.OptimizerService` to expose (never
        owned: stopping the sidecar never shuts the service down).
    tracer:
        Optional :class:`~repro.service.observability.tracing.Tracer`;
        enables the ``/traces`` endpoint and the ``/metrics`` histograms.
    host / port:
        Bind address; ``port=0`` (default) lets the OS pick — read it back
        from :attr:`port` (the ``--http-port-file`` flag relies on this).
    readiness:
        Optional zero-arg callable returning ``(ready, detail)`` for
        ``/readyz``; defaults to the service's own
        :meth:`~repro.service.OptimizerService.readiness` probe.
    """

    def __init__(self, service, tracer=None, host="127.0.0.1", port=0, readiness=None):
        self.service = service
        self.tracer = tracer
        self._readiness = readiness
        self._httpd = ThreadingHTTPServer((host, port), _Handler)  # released-by: stop
        self._httpd.daemon_threads = True
        self._httpd.owner = self
        self.address = self._httpd.server_address
        self._thread = threading.Thread(  # released-by: stop
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="svc-observability",
            daemon=True,
        )
        self._stopped = threading.Event()
        self._thread.start()

    @property
    def port(self):
        return self.address[1]

    def readiness(self):
        """Evaluate the readiness probe; never raises (a probe crash is 503)."""
        probe = self._readiness
        try:
            if probe is not None:
                return probe()
            return self.service.readiness()
        except Exception as error:  # noqa: BLE001 - a broken probe reads as unready
            return False, {"error": str(error)}

    def stop(self):
        """Stop serving and release the socket + thread (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


__all__ = ["ObservabilityServer", "PROMETHEUS_CONTENT_TYPE"]
