"""Structured JSONL event log for the serving tier.

Every operationally interesting transition — request admitted, rejected or
completed; a runner crash and its replacement; a snapshot saved, loaded or
failed — is one JSON object per line with a monotonic-enough wall-clock
timestamp and free-form fields.  This replaces the ad-hoc
``print(..., file=sys.stderr)`` warnings the CLI and snapshot loop used to
emit: machines can tail a JSONL stream, humans still can too.

Event records look like::

    {"ts": 1723111845.12, "event": "request.completed", "request_id": "r1",
     "shard": 0, "status": "ok", "latency_s": 0.0021}

The log is optional everywhere: emitters take ``event_log=None`` and call
:func:`log_event`, which is a no-op on ``None`` — tracing the "events are
off" path costs one ``is None`` test.
"""

from __future__ import annotations

import json
import threading
import time


class EventLog:  # repro-lint: ignore[pickle-safety] never pickled — wraps a live output stream
    """Thread-safe JSONL event writer (to an open stream or a file path).

    Completion events arrive from shard runner threads concurrently with
    admission events from the submitting thread, so every write is taken
    under one lock.  ``emit`` never raises: a full disk or a closed stream
    must not take the serving path down with it — failed writes are counted
    on :attr:`dropped` instead.
    """

    def __init__(self, stream=None, path=None):
        if stream is not None and path is not None:
            raise ValueError("EventLog takes a stream or a path, not both")
        self._owns_stream = path is not None
        self._stream = (
            open(path, "a", encoding="utf-8") if path is not None else stream
        )
        self._lock = threading.Lock()
        self.dropped = 0  # guarded-by: _lock
        self.emitted = 0  # guarded-by: _lock

    def emit(self, event, **fields):
        """Append one event record; returns the record (for tests)."""
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._lock:
            if self._stream is None:
                self.dropped += 1
                return record
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
                self.emitted += 1
            except (OSError, ValueError):
                self.dropped += 1
        return record

    def close(self):
        """Close the underlying stream when this log opened it (idempotent)."""
        with self._lock:
            stream, self._stream = self._stream, None
        if self._owns_stream and stream is not None:
            try:
                stream.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def log_event(event_log, event, **fields):
    """Emit ``event`` on ``event_log``; a no-op when the log is ``None``.

    Every emitter in the serving tier funnels through this helper so
    call sites never branch on whether structured logging is configured.
    """
    if event_log is None:
        return None
    return event_log.emit(event, **fields)


__all__ = ["EventLog", "log_event"]
