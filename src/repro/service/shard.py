"""Shards: warm per-catalog sessions plus a request runner pool.

A shard is the unit of placement in the optimizer service: it owns one
:class:`~repro.service.scheduler.WaveScheduler` (persistent worker pool +
cross-query wave batching), a small pool of *runner* threads that execute
whole requests, and a registry of :class:`ShardSession` objects — one per
distinct constraint-set signature routed to the shard.  A session holds the
warm :class:`~repro.chase.implication.ChaseCacheRegistry` whose chase
fixpoints survive across requests *and* the warm
:class:`~repro.cq.memo.ContainmentMemo` whose containment verdicts do; since
the admission layer routes a catalog to the same shard every time, the
second request against a catalog finds the first one's fixpoints and
verdicts already cached.

Admission control: a shard accepts at most ``max_queue_depth`` requests at a
time (queued on the runner pool plus executing).  Past the bound,
:meth:`Shard.submit` raises :class:`~repro.errors.ServiceOverloaded` instead
of buffering — bounded queues are what keep tail latency and memory flat
under overload; callers (the socket front end) translate the rejection into
a typed ``overloaded`` response the client can retry on.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ServiceOverloaded
from repro.chase.implication import ChaseCacheRegistry, constraint_signature
from repro.chase.optimizer import CBOptimizer
from repro.cq.memo import ContainmentMemo
from repro.service.metrics import RequestMetrics, ShardStats
from repro.service.scheduler import ScheduledPool, WaveScheduler


def shard_index(constraints, shard_count):
    """Deterministically map a constraint set to a shard.

    Uses a CRC over the sorted dependency names so the placement is stable
    across processes and runs (``hash()`` is salted per process).
    """
    digest = zlib.crc32("|".join(sorted(dep.name for dep in constraints)).encode("utf-8"))
    return digest % max(1, shard_count)


def session_label(constraints):
    """Short human-readable identity for a session (stats / JSONL output)."""
    names = sorted(dep.name for dep in constraints)
    digest = zlib.crc32("|".join(names).encode("utf-8"))
    return f"{len(names)}c-{digest:08x}"


@dataclass
class ShardSession:
    """Warm per-constraint-set state kept alive between requests."""

    label: str
    signature: object
    registry: ChaseCacheRegistry
    memo: ContainmentMemo
    requests: int = 0
    created_at: float = field(default_factory=time.monotonic)


class Shard:
    """One shard: scheduler + runner threads + warm sessions.

    Parameters
    ----------
    shard_id:
        Position in the service's shard list (also reported in stats).
    executor / workers / batch_window / max_batch:
        Forwarded to the shard's :class:`WaveScheduler`.
    max_inflight:
        Runner threads, i.e. how many requests the shard executes
        concurrently (their wave chunks interleave on the scheduler — this
        is what creates cross-request waves).
    max_queue_depth:
        Admission bound: maximum requests admitted at a time (executing plus
        waiting for a runner thread).  ``None`` (the default) preserves the
        unbounded in-process behaviour; the socket front end sets it so an
        overloaded server rejects instead of queueing without bound.  Must
        be ``>= max_inflight`` to be useful (lower values just cap
        concurrency earlier).
    max_cache_entries:
        LRU bound applied to every per-constraint-set
        :class:`~repro.chase.implication.ChaseCache` of every session
        (``None`` = unbounded).
    max_memo_entries:
        LRU bound on every session's containment memo (``None`` =
        unbounded).
    max_sessions:
        LRU bound on warm sessions per shard (``None`` = unbounded).  A
        long-lived service receiving many distinct catalogs would otherwise
        accumulate one session (and its cache registry) per configuration
        forever.  Eviction only unlinks the session from the shard — a
        request already running against it keeps its own reference and
        completes safely; the next request for that catalog simply starts
        cold again.
    """

    def __init__(
        self,
        shard_id,
        executor="threads",
        workers=None,
        max_inflight=4,
        batch_window=0.001,
        max_batch=64,
        max_queue_depth=None,
        max_cache_entries=None,
        max_memo_entries=None,
        max_sessions=None,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1 or None, got {max_sessions!r}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth!r}"
            )
        self.shard_id = shard_id
        self.max_queue_depth = max_queue_depth
        self.max_cache_entries = max_cache_entries
        self.max_memo_entries = max_memo_entries
        self.max_sessions = max_sessions
        self.scheduler = WaveScheduler(
            executor=executor,
            workers=workers,
            batch_window=batch_window,
            max_batch=max_batch,
        )
        self._runner = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix=f"svc-shard{shard_id}"
        )
        self._sessions = OrderedDict()
        self._lock = threading.Lock()
        self._requests = 0
        self._sessions_evicted = 0
        self._queue_depth = 0
        self._queue_peak = 0
        self._rejected = 0

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def session_for(self, constraints):
        """Return (creating on first use) the session for ``constraints``."""
        signature = constraint_signature(constraints)
        with self._lock:
            session = self._sessions.get(signature)
            if session is None:
                session = ShardSession(
                    label=session_label(constraints),
                    signature=signature,
                    registry=ChaseCacheRegistry(max_entries=self.max_cache_entries),
                    memo=ContainmentMemo(max_entries=self.max_memo_entries),
                )
                self._sessions[signature] = session
                while self.max_sessions is not None and len(self._sessions) > self.max_sessions:
                    self._sessions.popitem(last=False)
                    self._sessions_evicted += 1
            else:
                self._sessions.move_to_end(signature)
            return session

    def export_sessions(self):
        """Snapshot every warm session's persistent state (for save_caches).

        Returns ``[(signature, label, registry, memo), ...]``; the signature
        *is* the constraint set (a frozenset of dependencies), so a loader
        can re-route each entry without extra bookkeeping.
        """
        with self._lock:
            return [
                (session.signature, session.label, session.registry, session.memo)
                for session in self._sessions.values()
            ]

    def restore_session(self, signature, label, registry, memo):
        """Install a previously exported session (idempotent per signature).

        Loaded state replaces any existing session for the signature — the
        loader runs at startup, before traffic, so nothing is in flight.
        LRU bounds of this shard are re-applied to the loaded structures and
        their accounting is zeroed: the restored process's stats (and the
        warm-restart benchmark) describe *this* life, not the saving one's.
        """
        registry.max_entries = self.max_cache_entries
        for cache in registry._caches.values():
            cache.max_entries = self.max_cache_entries
        registry.reset_counters()
        memo.max_entries = self.max_memo_entries
        memo.reset_counters()
        with self._lock:
            self._sessions[signature] = ShardSession(
                label=label, signature=signature, registry=registry, memo=memo
            )
            while self.max_sessions is not None and len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self._sessions_evicted += 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, request, on_done):
        """Admit ``request`` onto a runner thread; resolve through ``on_done``.

        Raises :class:`~repro.errors.ServiceOverloaded` when the shard's
        queue depth bound is reached — the request is *not* queued and
        ``on_done`` will never be called for it.
        """
        with self._lock:
            if (
                self.max_queue_depth is not None
                and self._queue_depth >= self.max_queue_depth
            ):
                self._rejected += 1
                raise ServiceOverloaded(
                    f"shard {self.shard_id} is at its queue depth bound "
                    f"({self._queue_depth}/{self.max_queue_depth})",
                    shard=self.shard_id,
                    queue_depth=self._queue_depth,
                )
            self._requests += 1
            self._queue_depth += 1
            self._queue_peak = max(self._queue_peak, self._queue_depth)
        try:
            return self._runner.submit(self._execute, request, on_done)
        except BaseException:
            with self._lock:
                self._queue_depth -= 1
            raise

    def _execute(self, request, on_done):
        start = time.perf_counter()
        session = None
        try:
            constraints = request.resolved_constraints()
            session = self.session_for(constraints)
            with self._lock:
                session.requests += 1
            stats_before = session.registry.stats()
            memo_before = (session.memo.hits, session.memo.misses)
            optimizer = CBOptimizer(
                catalog=request.catalog,
                constraints=request.constraints,
                timeout=request.timeout,
                cache_registry=session.registry,
                containment_memo=session.memo,
                pool=ScheduledPool(self.scheduler, request.request_id),
            )
            result = optimizer.optimize(request.query, strategy=request.strategy)
            registry_stats = session.registry.stats()
            metrics = RequestMetrics(
                request_id=request.request_id,
                shard=self.shard_id,
                session=session.label,
                strategy=request.strategy,
                latency=time.perf_counter() - start,
                plan_count=result.plan_count,
                cache_hits=registry_stats["hits"] - stats_before["hits"],
                cache_misses=registry_stats["misses"] - stats_before["misses"],
                memo_hits=session.memo.hits - memo_before[0],
                memo_misses=session.memo.misses - memo_before[1],
                timed_out=result.timed_out,
            )
            outcome = (result, metrics, None)
        except Exception as exc:  # noqa: BLE001 - reported on the response
            metrics = RequestMetrics(
                request_id=request.request_id,
                shard=self.shard_id,
                session=session.label if session is not None else "",
                strategy=request.strategy,
                latency=time.perf_counter() - start,
                error=str(exc),
            )
            outcome = (None, metrics, exc)
        # Release the admission slot *before* resolving the future: a caller
        # that wakes from future.result() and immediately submits again must
        # find the capacity its completed request held already freed.
        with self._lock:
            self._queue_depth -= 1
        on_done(request, *outcome)

    # ------------------------------------------------------------------ #
    # stats / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self):
        """Snapshot this shard's sessions, batching, queue and cache counters."""
        with self._lock:
            sessions = list(self._sessions.values())
            requests = self._requests
            sessions_evicted = self._sessions_evicted
            queue_depth = self._queue_depth
            queue_peak = self._queue_peak
            rejected = self._rejected
        scheduler = self.scheduler.stats()
        cache = {"caches": 0, "entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        memo = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        for session in sessions:
            for key, value in session.registry.stats().items():
                cache[key] += value
            for key, value in session.memo.stats().items():
                memo[key] += value
        return ShardStats(
            shard=self.shard_id,
            sessions=len(sessions),
            sessions_evicted=sessions_evicted,
            requests=requests,
            queue_depth=queue_depth,
            queue_peak=queue_peak,
            rejected=rejected,
            waves=scheduler.waves,
            batched_items=scheduler.items,
            cross_request_waves=scheduler.cross_request_waves,
            cache_caches=cache["caches"],
            cache_entries=cache["entries"],
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
            memo_entries=memo["entries"],
            memo_hits=memo["hits"],
            memo_misses=memo["misses"],
            memo_evictions=memo["evictions"],
        )

    def shutdown(self, wait=True):
        """Drain the runner pool, then stop the scheduler (idempotent)."""
        self._runner.shutdown(wait=wait)
        self.scheduler.shutdown(wait=wait)


__all__ = ["Shard", "ShardSession", "session_label", "shard_index"]
