"""Shards: warm per-catalog sessions plus a supervised request runner pool.

A shard is the unit of placement in the optimizer service: it owns one
:class:`~repro.service.scheduler.WaveScheduler` (persistent worker pool +
cross-query wave batching), a small pool of *runner* threads that execute
whole requests, and a registry of :class:`ShardSession` objects — one per
distinct constraint-set signature routed to the shard.  A session holds the
warm :class:`~repro.chase.implication.ChaseCacheRegistry` whose chase
fixpoints survive across requests *and* the warm
:class:`~repro.cq.memo.ContainmentMemo` whose containment verdicts do; since
the admission layer routes a catalog to the same shard every time, the
second request against a catalog finds the first one's fixpoints and
verdicts already cached.

Admission control: a shard accepts at most ``max_queue_depth`` requests at a
time (queued on the runner pool plus executing).  Past the bound,
:meth:`Shard.submit` raises :class:`~repro.errors.ServiceOverloaded` instead
of buffering — bounded queues are what keep tail latency and memory flat
under overload; callers (the socket front end) translate the rejection into
a typed ``overloaded`` response the client can retry on.

Supervision: runner threads are owned by the shard (not a
``ThreadPoolExecutor``) and watched two ways.  A runner that dies with an
unhandled executor failure (anything that escapes the per-request
``except Exception`` — a ``BaseException``, an injected crash, a failure in
the resolution path) reports itself: the in-flight request's future is
resolved with a typed :class:`~repro.errors.RunnerCrash` (never a hung
future), the admission slot is released exactly once, and a replacement
runner is spawned before the thread exits.  A background supervisor sweep
additionally detects runners that died *without* reporting (however
improbable) and restarts them.  Both paths are counted
(``runner_failures`` / ``runner_restarts``) and exported through
:class:`~repro.service.metrics.ShardStats`.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import RunnerCrash, ServiceOverloaded
from repro.chase.implication import (
    ChaseCacheRegistry,
    constraint_signature,
    constraints_digest,
)
from repro.chase.optimizer import CBOptimizer
from repro.cq.memo import ContainmentMemo
from repro.service.faults import maybe_fail
from repro.service.metrics import RequestMetrics, ShardStats
from repro.service.observability.events import log_event
from repro.service.scheduler import ScheduledPool, WaveScheduler
from repro.trace import activate

#: Queue sentinel that makes a runner thread exit its loop.
_SHUTDOWN = object()


def shard_index(constraints, shard_count):
    """Deterministically map a constraint set to a shard.

    Hashes the *structural* :func:`constraints_digest` (name + body of every
    dependency, sorted) so the placement is stable across processes and runs
    (``hash()`` is salted per process).  It used to hash only the sorted
    dependency *names*, so two constraint sets with identical names but
    different bodies aliased to the same placement — wrong for anything that
    keys cache validity on the set's structure (snapshots, the fleet ring,
    cross-process sync all use the same digest).
    """
    digest = constraints_digest(constraints)
    return int(digest[:16], 16) % max(1, shard_count)


def session_label(constraints):
    """Short human-readable identity for a session (stats / JSONL output).

    Built from the structural digest so same-name/different-body constraint
    sets get distinct labels (they are distinct sessions).
    """
    constraints = list(constraints)
    return f"{len(constraints)}c-{constraints_digest(constraints)[:8]}"


@dataclass
class ShardSession:
    """Warm per-constraint-set state kept alive between requests."""

    label: str
    signature: object
    registry: ChaseCacheRegistry
    memo: ContainmentMemo
    requests: int = 0
    created_at: float = field(default_factory=time.monotonic)


class _RunnerTask:
    """One admitted request travelling through the runner queue.

    ``slot_released`` makes admission-slot release idempotent: the normal
    completion path and the crash path can both reach it, but exactly one
    decrements the gauge.  ``trace`` is the request's span tree (or
    ``None``); ``enqueued_at`` stamps admission time so the runner that
    picks the task up can bill the queue wait.
    """

    __slots__ = ("request", "on_done", "slot_released", "trace", "enqueued_at")

    def __init__(self, request, on_done, trace=None):
        self.request = request
        self.on_done = on_done
        self.slot_released = False
        self.trace = trace
        self.enqueued_at = time.perf_counter()


class Shard:  # repro-lint: ignore[pickle-safety] never pickled — snapshots export session state (export_sessions), not shard objects
    """One shard: scheduler + supervised runner threads + warm sessions.

    Locking invariant (checked mechanically by ``repro-lint``'s
    lock-discipline rule): every mutable counter and container on the shard
    is annotated ``# guarded-by: _lock`` and only touched inside
    ``with self._lock``.  The session table, admission gauges and runner
    bookkeeping are all read by three thread families at once (runners,
    the supervisor sweep, stats callers), so *every* access — including
    "harmless" reads in stats paths — goes through the lock.

    Parameters
    ----------
    shard_id:
        Position in the service's shard list (also reported in stats).
    executor / workers / batch_window / max_batch:
        Forwarded to the shard's :class:`WaveScheduler`.
    max_inflight:
        Runner threads, i.e. how many requests the shard executes
        concurrently (their wave chunks interleave on the scheduler — this
        is what creates cross-request waves).
    max_queue_depth:
        Admission bound: maximum requests admitted at a time (executing plus
        waiting for a runner thread).  ``None`` (the default) preserves the
        unbounded in-process behaviour; the socket front end sets it so an
        overloaded server rejects instead of queueing without bound.  Must
        be ``>= max_inflight`` to be useful (lower values just cap
        concurrency earlier).
    max_cache_entries:
        LRU bound applied to every per-constraint-set
        :class:`~repro.chase.implication.ChaseCache` of every session
        (``None`` = unbounded).
    max_memo_entries:
        LRU bound on every session's containment memo (``None`` =
        unbounded).
    max_sessions:
        LRU bound on warm sessions per shard (``None`` = unbounded).  A
        long-lived service receiving many distinct catalogs would otherwise
        accumulate one session (and its cache registry) per configuration
        forever.  Eviction only unlinks the session from the shard — a
        request already running against it keeps its own reference and
        completes safely; the next request for that catalog simply starts
        cold again.
    overload_retry_after:
        Optional back-off hint (seconds) attached to admission rejections
        and surfaced on ``overloaded`` responses for retrying clients.
    fault_injector:
        Optional :class:`~repro.service.faults.FaultInjector`; the shard
        consults the ``shard.execute`` site once per executed request.
    event_log:
        Optional :class:`~repro.service.observability.events.EventLog`;
        the shard emits ``runner.crashed`` / ``runner.restarted`` events.
    supervisor_interval:
        Seconds between supervisor sweeps for silently-dead runners.
    """

    def __init__(
        self,
        shard_id,
        executor="threads",
        workers=None,
        max_inflight=4,
        batch_window=0.001,
        max_batch=64,
        max_queue_depth=None,
        max_cache_entries=None,
        max_memo_entries=None,
        max_sessions=None,
        overload_retry_after=None,
        fault_injector=None,
        event_log=None,
        supervisor_interval=0.25,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1 or None, got {max_sessions!r}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth!r}"
            )
        self.shard_id = shard_id
        self.max_queue_depth = max_queue_depth
        self.max_cache_entries = max_cache_entries
        self.max_memo_entries = max_memo_entries
        self.max_sessions = max_sessions
        self.overload_retry_after = overload_retry_after
        self.scheduler = WaveScheduler(
            executor=executor,
            workers=workers,
            batch_window=batch_window,
            max_batch=max_batch,
        )
        self._faults = fault_injector
        self._event_log = event_log
        self._tasks = queue.SimpleQueue()
        self._sessions = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._requests = 0  # guarded-by: _lock
        self._sessions_evicted = 0  # guarded-by: _lock
        self._queue_depth = 0  # guarded-by: _lock
        self._queue_peak = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._runner_restarts = 0  # guarded-by: _lock
        self._runner_failures = 0  # guarded-by: _lock
        self._runner_serial = 0  # guarded-by: _lock
        self._runners = []  # guarded-by: _lock
        self._stopping = threading.Event()
        for _ in range(max_inflight):
            self._spawn_runner()
        self._supervisor_interval = supervisor_interval
        self._supervisor = threading.Thread(  # released-by: shutdown
            target=self._supervise, name=f"svc-shard{shard_id}-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def session_for(self, constraints):
        """Return (creating on first use) the session for ``constraints``."""
        signature = constraint_signature(constraints)
        with self._lock:
            session = self._sessions.get(signature)
            if session is None:
                session = ShardSession(
                    label=session_label(constraints),
                    signature=signature,
                    registry=ChaseCacheRegistry(max_entries=self.max_cache_entries),
                    memo=ContainmentMemo(max_entries=self.max_memo_entries),
                )
                self._sessions[signature] = session
                while self.max_sessions is not None and len(self._sessions) > self.max_sessions:
                    self._sessions.popitem(last=False)
                    self._sessions_evicted += 1
            else:
                self._sessions.move_to_end(signature)
            return session

    def export_sessions(self):
        """Snapshot every warm session's persistent state (for save_caches).

        Returns ``[(signature, label, registry, memo), ...]``; the signature
        *is* the constraint set (a frozenset of dependencies), so a loader
        can re-route each entry without extra bookkeeping.
        """
        with self._lock:
            return [
                (session.signature, session.label, session.registry, session.memo)
                for session in self._sessions.values()
            ]

    def restore_session(self, signature, label, registry, memo):
        """Install a previously exported session (idempotent per signature).

        Loaded state replaces any existing session for the signature — the
        loader runs at startup, before traffic, so nothing is in flight.
        LRU bounds of this shard are re-applied to the loaded structures and
        their accounting is zeroed: the restored process's stats (and the
        warm-restart benchmark) describe *this* life, not the saving one's.
        """
        registry.set_max_entries(self.max_cache_entries)
        registry.reset_counters()
        memo.max_entries = self.max_memo_entries
        memo.reset_counters()
        with self._lock:
            self._sessions[signature] = ShardSession(
                label=label, signature=signature, registry=registry, memo=memo
            )
            while self.max_sessions is not None and len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self._sessions_evicted += 1

    # ------------------------------------------------------------------ #
    # runner pool + supervision
    # ------------------------------------------------------------------ #
    def _spawn_runner(self):
        """Start one runner thread (must be called *without* the lock held).

        Registration and start happen under the lock so the supervisor sweep
        never observes a registered-but-not-yet-started thread (it would
        read as dead and be spuriously replaced).
        """
        with self._lock:
            self._runner_serial += 1
            runner = threading.Thread(
                target=self._runner_loop,
                name=f"svc-shard{self.shard_id}-runner{self._runner_serial}",
                daemon=True,
            )
            self._runners.append(runner)
            runner.start()
        return runner

    def _runner_loop(self):
        while True:
            task = self._tasks.get()
            if task is _SHUTDOWN:
                return
            try:
                self._execute(task)
            except BaseException as exc:
                # The runner dies (cleanly — it already reported, so no
                # noisy threading.excepthook); its replacement is running.
                self._runner_crashed(task, exc)
                return

    def _runner_crashed(self, task, exc):
        """A runner died executing ``task``: fail the request, self-replace."""
        error = RunnerCrash(
            f"shard {self.shard_id} runner died executing request "
            f"{task.request.request_id!r}: {exc!r}",
            shard=self.shard_id,
            request_id=task.request.request_id,
        )
        with self._lock:
            self._runner_failures += 1
            if not task.slot_released:
                task.slot_released = True
                self._queue_depth -= 1
        current = threading.current_thread()
        with self._lock:
            if current in self._runners:
                self._runners.remove(current)
            replace = not self._stopping.is_set()
            if replace:
                self._runner_restarts += 1
        log_event(
            self._event_log,
            "runner.crashed",
            shard=self.shard_id,
            request_id=task.request.request_id,
            error=repr(exc),
        )
        if replace:
            self._spawn_runner()
            log_event(
                self._event_log,
                "runner.restarted",
                shard=self.shard_id,
                reported=True,
            )
        metrics = RequestMetrics(
            request_id=task.request.request_id,
            shard=self.shard_id,
            session="",
            strategy=task.request.strategy,
            latency=0.0,
            error=str(error),
        )
        try:
            # Never a hung future: resolve it with the typed crash record.
            # If the crash struck *after* the normal path resolved it, the
            # second resolution is a no-op error we swallow.
            task.on_done(task.request, None, metrics, error)
        except Exception:
            pass

    def _supervise(self):
        """Periodically restart runners that died without reporting."""
        while not self._stopping.wait(timeout=self._supervisor_interval):
            with self._lock:
                dead = [runner for runner in self._runners if not runner.is_alive()]
                for runner in dead:
                    self._runners.remove(runner)
                    self._runner_restarts += 1
            for _ in dead:
                self._spawn_runner()
                log_event(
                    self._event_log,
                    "runner.restarted",
                    shard=self.shard_id,
                    reported=False,
                )

    def live_runners(self):
        """Count of live runner threads (the readiness probe's signal)."""
        with self._lock:
            return sum(1 for runner in self._runners if runner.is_alive())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, request, on_done, trace=None):
        """Admit ``request`` onto the runner queue; resolve through ``on_done``.

        Raises :class:`~repro.errors.ServiceOverloaded` when the shard's
        queue depth bound is reached — the request is *not* queued and
        ``on_done`` will never be called for it.  ``trace`` (when given)
        rides the task through the queue so the runner bills the queue
        wait and activates it around the engine run.
        """
        with self._lock:
            if (
                self.max_queue_depth is not None
                and self._queue_depth >= self.max_queue_depth
            ):
                self._rejected += 1
                raise ServiceOverloaded(
                    f"shard {self.shard_id} is at its queue depth bound "
                    f"({self._queue_depth}/{self.max_queue_depth})",
                    shard=self.shard_id,
                    queue_depth=self._queue_depth,
                    retry_after=self.overload_retry_after,
                )
            self._requests += 1
            self._queue_depth += 1
            self._queue_peak = max(self._queue_peak, self._queue_depth)
        task = _RunnerTask(request, on_done, trace=trace)
        try:
            self._tasks.put(task)
        except BaseException:
            self._release_slot(task)
            raise
        return task

    def _release_slot(self, task):
        with self._lock:
            if not task.slot_released:
                task.slot_released = True
                self._queue_depth -= 1

    def _execute(self, task):
        request, on_done = task.request, task.on_done
        start = time.perf_counter()
        if task.trace is not None:
            # Queue wait: admission (submit stamping enqueued_at) until a
            # runner thread picked the task up.
            task.trace.record("queue_wait", start - task.enqueued_at)
        session = None
        try:
            maybe_fail(self._faults, "shard.execute", detail=request.request_id)
            constraints = request.resolved_constraints()
            session = self.session_for(constraints)
            with self._lock:
                session.requests += 1
            stats_before = session.registry.stats()
            memo_before = session.memo.stats()
            optimizer = CBOptimizer(
                catalog=request.catalog,
                constraints=request.constraints,
                timeout=request.timeout,
                cache_registry=session.registry,
                containment_memo=session.memo,
                pool=ScheduledPool(self.scheduler, request.request_id),
            )
            # The trace is ambient on this runner thread for the whole
            # engine run: chase/containment/restrict work executed inline
            # here records directly, and the ScheduledPool re-activates the
            # same trace on every wave worker for the batched chunks.
            with activate(task.trace):
                result = optimizer.optimize(request.query, strategy=request.strategy)
            registry_stats = session.registry.stats()
            memo_after = session.memo.stats()
            metrics = RequestMetrics(
                request_id=request.request_id,
                shard=self.shard_id,
                session=session.label,
                strategy=request.strategy,
                latency=time.perf_counter() - start,
                plan_count=result.plan_count,
                cache_hits=registry_stats["hits"] - stats_before["hits"],
                cache_misses=registry_stats["misses"] - stats_before["misses"],
                memo_hits=memo_after["hits"] - memo_before["hits"],
                memo_misses=memo_after["misses"] - memo_before["misses"],
                timed_out=result.timed_out,
            )
            if task.trace is not None:
                # Cache/memo attribution on the stage spans: the same
                # best-effort deltas the per-request metrics report.
                task.trace.annotate(
                    "chase",
                    cache_hits=metrics.cache_hits,
                    cache_misses=metrics.cache_misses,
                )
                task.trace.annotate(
                    "containment",
                    memo_hits=metrics.memo_hits,
                    memo_misses=metrics.memo_misses,
                )
            outcome = (result, metrics, None)
        except Exception as exc:  # noqa: BLE001 - reported on the response
            metrics = RequestMetrics(
                request_id=request.request_id,
                shard=self.shard_id,
                session=session.label if session is not None else "",
                strategy=request.strategy,
                latency=time.perf_counter() - start,
                error=str(exc),
            )
            outcome = (None, metrics, exc)
        # Release the admission slot *before* resolving the future: a caller
        # that wakes from future.result() and immediately submits again must
        # find the capacity its completed request held already freed.
        self._release_slot(task)
        on_done(request, *outcome)

    # ------------------------------------------------------------------ #
    # stats / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self):
        """Snapshot this shard's sessions, batching, queue and cache counters."""
        with self._lock:
            sessions = list(self._sessions.values())
            requests = self._requests
            sessions_evicted = self._sessions_evicted
            queue_depth = self._queue_depth
            queue_peak = self._queue_peak
            rejected = self._rejected
            runner_restarts = self._runner_restarts
            runner_failures = self._runner_failures
        scheduler = self.scheduler.stats()
        cache = {"caches": 0, "entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        memo = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        for session in sessions:
            for key, value in session.registry.stats().items():
                cache[key] += value
            for key, value in session.memo.stats().items():
                memo[key] += value
        return ShardStats(
            shard=self.shard_id,
            sessions=len(sessions),
            sessions_evicted=sessions_evicted,
            requests=requests,
            queue_depth=queue_depth,
            queue_peak=queue_peak,
            rejected=rejected,
            runner_restarts=runner_restarts,
            runner_failures=runner_failures,
            waves=scheduler.waves,
            batched_items=scheduler.items,
            cross_request_waves=scheduler.cross_request_waves,
            cache_caches=cache["caches"],
            cache_entries=cache["entries"],
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
            memo_entries=memo["entries"],
            memo_hits=memo["hits"],
            memo_misses=memo["misses"],
            memo_evictions=memo["evictions"],
        )

    def shutdown(self, wait=True):
        """Drain the runner queue, stop supervision + scheduler (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        with self._lock:
            runners = list(self._runners)
        # Sentinels queue *behind* already-admitted tasks, so wait=True
        # drains exactly like ThreadPoolExecutor.shutdown(wait=True) did.
        for _ in runners:
            self._tasks.put(_SHUTDOWN)
        if wait:
            for runner in runners:
                runner.join(timeout=60.0)
            self._supervisor.join(timeout=5.0)
        self.scheduler.shutdown(wait=wait)


__all__ = ["Shard", "ShardSession", "session_label", "shard_index"]
