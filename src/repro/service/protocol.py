"""The JSONL request/response protocol of the optimizer serving layer.

One codec, three transports: the CLI's ``batch``/``serve`` subcommands read
the protocol from files/stdin, the TCP front end
(:mod:`repro.service.server`) speaks it over a socket, and the client
(:mod:`repro.service.client`) demultiplexes it back into futures.  Keeping
encode/decode here — rather than in the CLI — is what makes the
differential test harness meaningful: every path serialises through exactly
the same functions.

Request line (one JSON object per line; ``#`` lines are comments)::

    {"id": "r1",                  # optional; defaults to the line number
     "workload": "ec2",           # ec1 | ec2 | ec3
     "params": {"stars": 2, "corners": 3, "views": 1},   # builder kwargs
     "strategy": "fb",            # fb | oqf | ocs (default fb)
     "timeout": 30.0}             # optional per-request budget (s)

Control lines: ``{"op": "stats", "id": ...}`` asks the server for a
service-stats record; ``{"op": "ping", "id": ...}`` for a liveness echo.

Response lines carry ``status``: ``"ok"`` (plan digests + serving
metadata), ``"error"`` (decode or engine failure), or ``"overloaded"``
(admission rejected the request — retry after backing off; nothing was
executed).

Fleet sync (PR 10): ``{"op": "sync", "mode": "export"}`` asks a backend for
the cache/memo deltas of its hot sessions; ``{"op": "sync", "mode":
"merge", "sessions": [...]}`` offers a peer's deltas for merging.  Each
session entry is ``{"digest": <constraints_digest>, "label": ...,
"data": <base64 pickle>}`` — the pickled payload carries the exact
constraint-set signature plus per-cache entry dicts and memo verdicts
(engine objects are not JSON-representable, so they ride base64-encoded
inside the JSONL frame).  The receiver *recomputes* the structural digest
from the payload's signature and rejects entries whose recomputed digest
disagrees with the advertised one — the same staleness discipline snapshot
loading applies, because exchanged fixpoints and verdicts are only valid
under the dependency set they were computed with.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle

from repro.chase.implication import constraints_digest
from repro.workloads import build_ec1, build_ec2, build_ec3

#: workload name -> (builder, parameter names accepted in a request's "params")
WORKLOAD_BUILDERS = {
    "ec1": (build_ec1, ("relations", "secondary_indexes")),
    "ec2": (build_ec2, ("stars", "corners", "views")),
    "ec3": (build_ec3, ("classes", "asrs")),
}


def decode_request(line, default_id, build=True):
    """Parse one JSONL request line into ``(request_id, workload, strategy, timeout)``.

    ``build=False`` validates the record without constructing the workload
    (``workload`` comes back ``None``): the socket client forwards requests
    for the *server* to build, so paying catalog construction per line on
    the client would only gate submission throughput.
    """
    record = json.loads(line) if isinstance(line, str) else line
    if not isinstance(record, dict):
        raise ValueError("request line must be a JSON object")
    name = record.get("workload")
    if name not in WORKLOAD_BUILDERS:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOAD_BUILDERS)}"
        )
    builder, accepted = WORKLOAD_BUILDERS[name]
    params = record.get("params") or {}
    unknown = set(params) - set(accepted)
    if unknown:
        raise ValueError(f"unknown {name} params {sorted(unknown)}; accepted: {accepted}")
    workload = builder(**params) if build else None
    return (
        record.get("id", default_id),
        workload,
        record.get("strategy", "fb"),
        record.get("timeout"),
    )


def plan_digest(plans):
    """Stable short digests of a plan set (sorted, whitespace-insensitive).

    This is the protocol's plan-set signature: two responses describe the
    same plan set iff their digest lists are equal, whichever transport or
    engine produced them — the differential harness compares exactly this.
    """
    texts = sorted(" ".join(str(plan.query).split()) for plan in plans)
    return [hashlib.sha256(text.encode("utf-8")).hexdigest()[:16] for text in texts]


def encode_response(request_id, workload, strategy, response, checked=None):
    """Serialize one service response as a JSONL record.

    Traced responses (the service ran with a tracer) come back with their
    span tree under ``trace`` and reuse the ``plan_digests`` the resolver
    already computed inside the trace's serialize span — the digests are
    identical either way (same :func:`plan_digest` over the same plans),
    so differential checks are unaffected.
    """
    record = {"id": request_id, "workload": workload.name, "strategy": strategy}
    trace = getattr(response, "trace", None)
    if trace is not None:
        record["trace"] = trace.as_dict()
    if not response.ok:
        record["status"] = "error"
        record["error"] = response.error
        error_type = getattr(response, "error_type", None)
        if error_type is not None:
            record["error_type"] = error_type
        return record
    result = response.result
    digests = getattr(response, "plan_digests", None)
    record.update(
        status="ok",
        plan_count=result.plan_count,
        plan_digests=digests if digests is not None else plan_digest(result.plans),
        total_time_s=round(result.total_time, 6),
        timed_out=result.timed_out,
        shard=response.metrics.shard,
        session=response.metrics.session,
        cache_hits=response.metrics.cache_hits,
        cache_misses=response.metrics.cache_misses,
        memo_hits=response.metrics.memo_hits,
        memo_misses=response.metrics.memo_misses,
        latency_s=round(response.metrics.latency, 6),
    )
    if checked is not None:
        record["matches_single_shot"] = checked
    return record


def stats_request(request_id=None):
    """The control line asking the server for a service-stats record."""
    record = {"op": "stats"}
    if request_id is not None:
        record["id"] = request_id
    return record


def ping_request(request_id=None):
    """The control line asking the server for a liveness echo."""
    record = {"op": "ping"}
    if request_id is not None:
        record["id"] = request_id
    return record


def stats_record(stats, request_id=None):
    """The typed reply to ``{"op": "stats"}`` (also the CLI's stats trailer)."""
    record = {"stats": stats}
    if request_id is not None:
        record["id"] = request_id
    return record


def pong_record(request_id):
    """The typed reply to ``{"op": "ping"}``."""
    return {"id": request_id, "pong": True}


def serving_record(host, port):
    """The CLI's startup announcement: where the server is listening."""
    return {"serving": {"host": host, "port": port}}


# --------------------------------------------------------------------- #
# fleet sync (cross-process cache/memo exchange)
# --------------------------------------------------------------------- #
def encode_sync_session(signature, caches, memo_entries, label=None):
    """Encode one session's deltas for the wire.

    ``signature`` is the exact constraint set (frozenset of dependencies),
    ``caches`` maps per-constraint-set cache signatures to their exported
    entry dicts (:meth:`ChaseCacheRegistry.export_entries`), ``memo_entries``
    is the memo's :meth:`~repro.cq.memo.ContainmentMemo.export_since` list.
    The advertised ``digest`` is recomputed by the receiver before merging.
    """
    payload = {
        "signature": signature,
        "caches": caches,
        "memo": memo_entries,
    }
    return {
        "digest": constraints_digest(signature),
        "label": label,
        "data": base64.b64encode(pickle.dumps(payload)).decode("ascii"),
    }


def decode_sync_session(session):
    """Decode one wire session entry back to ``(advertised_digest, payload)``.

    Raises ``ValueError`` on a malformed entry; the *semantic* guard
    (recomputed digest vs. advertised) is the receiver's job — it needs the
    decoded payload either way, and a mismatch is counted, not raised.
    """
    try:
        data = base64.b64decode(session["data"])
        payload = pickle.loads(data)
        advertised = session["digest"]
    except (
        KeyError,
        TypeError,
        ValueError,
        EOFError,  # pickle.loads on truncated/empty payloads
        AttributeError,  # pickled classes the receiver cannot resolve
        pickle.UnpicklingError,
    ) as error:
        raise ValueError(f"malformed sync session entry: {error}") from error
    if not isinstance(payload, dict) or "signature" not in payload:
        raise ValueError("malformed sync session entry: payload has no signature")
    return advertised, payload


def sync_export_request(request_id=None):
    """The control line asking a backend for its hot sessions' deltas."""
    record = {"op": "sync", "mode": "export"}
    if request_id is not None:
        record["id"] = request_id
    return record


def sync_merge_request(sessions, request_id=None):
    """The control line offering a peer's exported deltas for merging."""
    record = {"op": "sync", "mode": "merge", "sessions": list(sessions)}
    if request_id is not None:
        record["id"] = request_id
    return record


def sync_record(request_id, sessions=None, merged=None, rejected=None):
    """The typed reply to ``{"op": "sync"}`` (both modes).

    An export reply carries ``sessions`` (the wire entries); a merge reply
    carries ``merged`` (sessions folded in) and ``rejected``
    (digest-mismatch or malformed entries skipped and counted).
    """
    record = {"id": request_id, "sync": True}
    if sessions is not None:
        record["sessions"] = sessions
    if merged is not None:
        record["merged"] = merged
    if rejected is not None:
        record["rejected"] = rejected
    return record


def obs_check_record(problems):
    """The ``obs-check`` subcommand's verdict line (empty problems = pass)."""
    return {
        "obs_check": "failed" if problems else "ok",
        "problems": list(problems),
    }


def error_record(request_id, error):
    """The typed record for a request that could not be decoded or executed."""
    record = {"id": request_id, "status": "error", "error": str(error)}
    if isinstance(error, BaseException):
        record["error_type"] = type(error).__name__
    return record


def overloaded_record(request_id, error=None):
    """The typed record for a request shed by admission control.

    When the service advertises a backoff hint
    (``ServiceOverloaded.retry_after``), it rides along as ``retry_after``
    so retrying clients wait exactly as long as the operator configured
    instead of guessing.
    """
    record = {"id": request_id, "status": "overloaded"}
    if error is not None:
        record["detail"] = str(error)
        shard = getattr(error, "shard", None)
        if shard is not None:
            record["shard"] = shard
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            record["retry_after"] = retry_after
    return record


__all__ = [
    "WORKLOAD_BUILDERS",
    "decode_request",
    "decode_sync_session",
    "encode_response",
    "encode_sync_session",
    "error_record",
    "obs_check_record",
    "overloaded_record",
    "ping_request",
    "plan_digest",
    "pong_record",
    "serving_record",
    "stats_record",
    "stats_request",
    "sync_export_request",
    "sync_merge_request",
    "sync_record",
]
