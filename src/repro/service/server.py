"""TCP front end for the optimizer service: JSONL over a socket.

:class:`OptimizerServer` binds a listening socket and serves the JSONL
protocol of :mod:`repro.service.protocol` over it: every connection is an
independent request stream, every request line is submitted to the shared
:class:`~repro.service.service.OptimizerService`, and responses are written
back *as they complete* (out of order — clients correlate by ``id``, which
is what :class:`~repro.service.client.OptimizerClient` does).

Overload semantics: when admission control sheds a request
(:class:`~repro.errors.ServiceOverloaded`), the connection immediately
receives a typed ``{"status": "overloaded"}`` record — the request was never
queued, so clients can back off and retry without wondering whether it ran.
Every request line therefore gets *exactly one* response line (``ok``,
``error`` or ``overloaded``); the stress suite asserts this under
concurrent hammering.

Shutdown is graceful by default: :meth:`stop` closes the listener (no new
connections), waits for every in-flight request to resolve and its response
line to be written (*drain*), then closes the connections and — when the
server owns it — shuts the service down.

Usage::

    from repro.service import OptimizerServer

    with OptimizerServer(shards=2, workers=2, max_queue_depth=8) as server:
        print("listening on", server.address)   # ('127.0.0.1', <port>)
        ...                                     # clients connect and stream
    # leaving the block drains and stops the server
"""

from __future__ import annotations

import json
import socket
import threading

from repro.errors import InjectedFault, ServiceOverloaded
from repro.service.faults import maybe_fail
from repro.service.protocol import (
    decode_request,
    encode_response,
    error_record,
    overloaded_record,
    pong_record,
    stats_record,
    sync_record,
)
from repro.service.service import OptimizerService


class _Connection:  # repro-lint: ignore[pickle-safety] never pickled — wraps a live accepted socket
    """Book-keeping for one client connection."""

    def __init__(self, sock, address, faults=None):
        self.sock = sock
        self.address = address
        self.faults = faults
        self.write_lock = threading.Lock()
        self.pending = 0  # guarded-by: pending_lock
        self.pending_lock = threading.Lock()
        self.drained = threading.Event()
        self.drained.set()

    def began(self):
        with self.pending_lock:
            self.pending += 1
            self.drained.clear()

    def finished(self):
        with self.pending_lock:
            self.pending -= 1
            if self.pending == 0:
                self.drained.set()

    def send(self, record):
        """Write one JSONL record (thread-safe; drops on a dead socket)."""
        try:
            maybe_fail(self.faults, "server.write", detail=record.get("id"))
        except InjectedFault:
            # Simulated response lost in transit.  Dropping the record
            # silently would leave the client waiting forever, so tear the
            # connection down too: the client's reader observes the close
            # (ConnectionLost), and a retrying client replays the request
            # over a fresh connection.
            self.abort()
            return
        data = (json.dumps(record) + "\n").encode("utf-8")
        try:
            with self.write_lock:
                self.sock.sendall(data)
        except OSError:
            # The client went away; its in-flight work still completes in the
            # service (results are simply unobserved), matching how a JSONL
            # batch degrades per-request instead of aborting.
            pass

    def abort(self):
        """Hard-close the socket (fault injection / fatal read failure)."""
        for closer in (lambda: self.sock.shutdown(socket.SHUT_RDWR), self.sock.close):
            try:
                closer()
            except OSError:
                pass


class OptimizerServer:  # repro-lint: ignore[pickle-safety] never pickled — owns a listening socket and live threads
    """Socket server wrapping an :class:`OptimizerService`.

    Parameters
    ----------
    service:
        An existing service to expose.  When ``None``, the server builds one
        from ``service_kwargs`` (every :class:`OptimizerService` knob —
        ``shards``, ``workers``, ``max_queue_depth``, ``max_cache_entries``,
        ...) and owns its lifecycle (shut down with the server).
    host / port:
        Bind address.  ``port=0`` (the default) lets the OS pick a free
        port; read it back from :attr:`address` — this is what the tests and
        the ``--port-file`` CLI flag rely on.
    backlog:
        Listen backlog for pending TCP connects.
    """

    def __init__(
        self,
        service=None,
        host="127.0.0.1",
        port=0,
        backlog=32,
        fault_injector=None,
        **service_kwargs,
    ):
        self._owns_service = service is None
        if service is None:
            # One injector covers the whole stack: a server-owned service
            # inherits the server's injector, so a single FaultInjector
            # reaches shard.execute/snapshot.* as well as server.read/write.
            service_kwargs.setdefault("fault_injector", fault_injector)
            service = OptimizerService(**service_kwargs)
        self.service = service
        # Symmetrically, a server that isn't handed its own injector adopts
        # the (pre-built) service's, so the CLI configures faults in one spot.
        self.fault_injector = (
            fault_injector
            if fault_injector is not None
            else getattr(self.service, "fault_injector", None)
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # released-by: stop
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.address = self._listener.getsockname()
        self._connections = []  # guarded-by: _connections_lock
        self._connections_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(  # released-by: stop
            target=self._accept_loop, name="svc-accept", daemon=True
        )
        self._handler_threads = []  # guarded-by: _connections_lock
        self._accept_thread.start()

    @property
    def port(self):
        return self.address[1]

    # ------------------------------------------------------------------ #
    # accept / per-connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self):
        while not self._closed.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            connection = _Connection(sock, address, faults=self.fault_injector)
            with self._connections_lock:
                self._connections.append(connection)
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name=f"svc-conn-{address[1]}",
                daemon=True,
            )
            # Prune finished handlers so a long-lived server doesn't grow a
            # thread-object list with every connection ever accepted.  Under
            # the lock: stop() snapshots this list from another thread, and
            # the prune-and-append used to race that read.
            with self._connections_lock:
                self._handler_threads = [
                    thread for thread in self._handler_threads if thread.is_alive()
                ]
                self._handler_threads.append(handler)
            handler.start()

    def _handle_connection(self, connection):
        reader = connection.sock.makefile("r", encoding="utf-8", newline="\n")
        try:
            for number, line in enumerate(reader, start=1):
                if self._closed.is_set():
                    # stop() has begun: admit nothing more — a client that
                    # keeps pipelining must not extend the drain forever.
                    # The line already in hand gets a typed rejection, then
                    # the connection stops reading; everything admitted
                    # before stop() still gets its response via the drain.
                    line = line.strip()
                    if line and not line.startswith("#"):
                        try:
                            probe = json.loads(line)
                            rid = probe.get("id", number) if isinstance(probe, dict) else number
                        except json.JSONDecodeError:
                            rid = number
                        connection.send(
                            overloaded_record(rid, "server is draining for shutdown")
                        )
                    break
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    maybe_fail(self.fault_injector, "server.read", detail=number)
                except InjectedFault:
                    # Simulated torn read: drop the connection as a real
                    # recv() failure would.  Requests admitted earlier still
                    # drain; the client reconnects and replays this one.
                    break
                self._handle_line(connection, line, number)
        except OSError:
            pass  # connection reset mid-read; in-flight work still completes
        finally:
            # EOF: the client sent everything it will.  Wait for in-flight
            # responses so the final lines are written before close.
            connection.drained.wait()
            try:
                reader.close()
            except OSError:
                pass
            try:
                connection.sock.close()
            except OSError:
                pass
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _handle_line(self, connection, line, number):
        # Control ops are answered inline (they never hit admission).
        try:
            probe = json.loads(line)
        except json.JSONDecodeError as error:
            connection.send(error_record(number, error))
            return
        if isinstance(probe, dict) and "op" in probe:
            self._handle_op(connection, probe, number)
            return
        try:
            request_id, workload, strategy, timeout = decode_request(line, number)
        except (ValueError, TypeError) as error:
            connection.send(error_record(probe.get("id", number) if isinstance(probe, dict) else number, error))
            return
        connection.began()
        try:
            future = self.service.submit(
                workload.query,
                strategy=strategy,
                catalog=workload.catalog,
                timeout=timeout,
                request_id=request_id,
            )
        except ServiceOverloaded as error:
            connection.finished()
            connection.send(overloaded_record(request_id, error))
            return
        except Exception as error:  # noqa: BLE001 - every line gets one response
            connection.finished()
            connection.send(error_record(request_id, error))
            return

        def _on_done(done, rid=request_id, w=workload, s=strategy):
            try:
                connection.send(encode_response(rid, w, s, done.result()))
            except Exception as error:  # noqa: BLE001 - never lose the response
                connection.send(error_record(rid, error))
            finally:
                connection.finished()

        future.add_done_callback(_on_done)

    def _handle_op(self, connection, record, number):
        op = record.get("op")
        request_id = record.get("id", number)
        if op == "stats":
            connection.send(stats_record(self.service.stats().as_dict(), request_id))
        elif op == "ping":
            connection.send(pong_record(request_id))
        elif op == "sync":
            self._handle_sync(connection, record, request_id)
        else:
            connection.send(error_record(request_id, f"unknown op {op!r}"))

    def _handle_sync(self, connection, record, request_id):
        """The fleet exchange op: export this backend's deltas or merge a peer's.

        Answered inline like the other control ops — exports and merges are
        marker-bounded delta work, not engine runs, so they never contend
        with admission.  A malformed merge payload degrades per-entry (the
        service counts rejections); only a structurally invalid record (no
        usable ``sessions`` list) earns an error response.
        """
        mode = record.get("mode")
        if mode == "export":
            connection.send(
                sync_record(request_id, sessions=self.service.export_sync())
            )
        elif mode == "merge":
            sessions = record.get("sessions")
            if not isinstance(sessions, list):
                connection.send(
                    error_record(request_id, "sync merge needs a 'sessions' list")
                )
                return
            merged, rejected = self.service.merge_sync(sessions)
            connection.send(sync_record(request_id, merged=merged, rejected=rejected))
        else:
            connection.send(error_record(request_id, f"unknown sync mode {mode!r}"))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def stop(self, drain=True, timeout=None):
        """Stop accepting, optionally drain in-flight requests, close (idempotent).

        ``drain=True`` waits (up to ``timeout`` seconds per connection) for
        every admitted request's response line to be written before the
        connections are closed; ``drain=False`` closes immediately — admitted
        work still completes inside the service, but clients may miss
        responses.  The owned service (if any) is shut down afterwards.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown() wakes an accept() blocked in another thread (a bare
        # close() does not, on Linux), so the accept loop exits promptly.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._connections)
        if drain:
            for connection in connections:
                connection.drained.wait(timeout=timeout)
        for connection in connections:
            # shutdown() (not just close()) forces the handler's reader off
            # the fd even while the makefile wrapper still references the
            # socket, so handler threads cannot outlive stop().
            try:
                connection.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.sock.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)
        with self._connections_lock:
            handlers = list(self._handler_threads)
        for handler in handlers:
            handler.join(timeout=5.0)
        if self._owns_service:
            self.service.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


__all__ = ["OptimizerServer"]
