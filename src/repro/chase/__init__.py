"""The Chase & Backchase optimizer (the paper's primary contribution).

* :mod:`repro.chase.chase` -- chase steps and the construction of the
  universal plan.
* :mod:`repro.chase.implication` -- chase-based dependency implication and
  constraint-aware containment/equivalence.
* :mod:`repro.chase.backchase` -- the full backchase (FB): top-down
  enumeration of the minimal equivalent subqueries of the universal plan.
* :mod:`repro.chase.stratify` -- the two stratification strategies: On-line
  Query Fragmentation (OQF, Algorithm 3.1/B.1) and Off-line Constraint
  Stratification (OCS, Algorithm 3.3/C.1).
* :mod:`repro.chase.plans` -- plan objects and plan assembly.
* :mod:`repro.chase.optimizer` -- the :class:`CBOptimizer` façade.
"""

from repro.chase.chase import ChaseResult, chase, chase_step
from repro.chase.backchase import BackchaseResult, FullBackchase
from repro.chase.implication import contained_under, equivalent_under, implies
from repro.chase.optimizer import CBOptimizer, OptimizationResult
from repro.chase.plans import Plan
from repro.chase.stratify import (
    QueryFragment,
    decompose_query,
    stratify_constraints,
)

__all__ = [
    "BackchaseResult",
    "CBOptimizer",
    "ChaseResult",
    "FullBackchase",
    "OptimizationResult",
    "Plan",
    "QueryFragment",
    "chase",
    "chase_step",
    "contained_under",
    "decompose_query",
    "equivalent_under",
    "implies",
    "stratify_constraints",
]
