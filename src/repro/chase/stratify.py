"""Stratification strategies for the backchase: OQF and OCS.

The full backchase explores exponentially many subqueries of the universal
plan.  Section 3.2 of the paper introduces two ways of cutting the search
space by grouping constraints that do not interact:

* **On-line Query Fragmentation (OQF, Algorithm 3.1 / B.1)** -- decompose the
  *query* into fragments induced by the connected components of an
  interaction graph whose nodes are (skeleton, homomorphism-into-the-query)
  pairs, optimize each fragment independently, and assemble the cartesian
  product of fragment plans.  Complete for skeleton schemas (Theorem 3.2).

* **Off-line Constraint Stratification (OCS, Algorithm 3.3 / C.1)** --
  partition the *constraints* into strata using a query-independent
  interaction graph (homomorphisms between constraint tableaux) and pipeline
  the whole query through one chase/backchase stage per stratum.  A
  heuristic: faster, but may miss plans.

This module contains the two decomposition algorithms and the OQF plan
assembly; the strategy drivers live in :mod:`repro.chase.optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.homomorphism import find_homomorphism, find_homomorphisms
from repro.cq.query import PCQuery
from repro.lang.ast import Eq, path_variables


# ---------------------------------------------------------------------- #
# small union-find used by both algorithms
# ---------------------------------------------------------------------- #
class _UnionFind:
    def __init__(self, items):
        self._parent = {item: item for item in items}

    def find(self, item):
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left, right):
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def groups(self):
        by_root = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())


# ---------------------------------------------------------------------- #
# OQF: query decomposition into fragments (Algorithm B.1)
# ---------------------------------------------------------------------- #
@dataclass
class QueryFragment:
    """One fragment of the input query, optimised independently under OQF.

    Attributes
    ----------
    index:
        Position of the fragment in the decomposition.
    variables:
        The binding variables of the original query covered by this fragment.
    query:
        The fragment as a query: the induced bindings and conditions, with an
        output consisting of the original output fields rooted in the
        fragment plus one *link path* per cross-fragment join condition.
    skeletons:
        The skeletons whose homomorphic images fall inside this fragment;
        their constraints are the physical constraints used when optimising
        the fragment.
    """

    index: int
    variables: frozenset
    query: PCQuery
    skeletons: list = field(default_factory=list)


@dataclass
class Decomposition:
    """The result of Algorithm B.1: fragments plus cross-fragment join info."""

    original: PCQuery
    fragments: list
    cross_conditions: list
    # each cross condition is a tuple
    # (left_fragment_index, left_label, right_fragment_index, right_label)

    @property
    def fragment_count(self):
        return len(self.fragments)

    def fragment_of_output(self, label):
        """Return the fragment that carries the original output field ``label``."""
        for fragment in self.fragments:
            if any(field_label == label for field_label, _ in fragment.query.output):
                return fragment
        raise KeyError(label)


def decompose_query(query, skeletons):
    """Decompose ``query`` into fragments based on the skeleton interaction graph.

    Implements Algorithm B.1: one node per (skeleton, homomorphism into the
    query), an edge whenever the images of two homomorphisms share a binding,
    fragments from the connected components, and a final fragment holding the
    bindings not covered by any skeleton image.
    """
    variables = list(query.variables)
    union = _UnionFind(variables)

    # 1. Skeleton homomorphism images: bindings reached by the same image (or
    #    by overlapping images) end up in the same fragment.
    covered = set()
    image_records = []  # (skeleton, image variable set)
    closure = query.congruence()
    for skeleton in skeletons:
        forward = skeleton.forward
        for mapping in find_homomorphisms(
            forward.universal, forward.premise, query, target_closure=closure
        ):
            image = {mapping[var].name for var in forward.universal_variables}
            image_records.append((skeleton, frozenset(image)))
            covered |= image
            anchor = next(iter(image))
            for var in image:
                union.union(anchor, var)

    # 2. Structural merges: a binding whose range navigates through a variable
    #    of another component, an output path or a condition side spanning two
    #    components all force the components to be optimised together.
    for binding in query.bindings:
        for var in path_variables(binding.range):
            union.union(binding.var, var)
    for _, path in query.output:
        names = sorted(path_variables(path))
        for var in names[1:]:
            union.union(names[0], var)
    for condition in query.conditions:
        for side in (condition.left, condition.right):
            names = sorted(path_variables(side))
            for var in names[1:]:
                union.union(names[0], var)

    # 3. Connected components containing at least one covered binding become
    #    skeleton fragments; everything else is pooled into one leftover
    #    fragment (Step 4 of Algorithm B.1).
    component_groups = []
    leftover = []
    for group in union.groups():
        if covered & set(group):
            component_groups.append(frozenset(group))
        else:
            leftover.extend(group)
    component_groups.sort(key=lambda group: min(variables.index(var) for var in group))
    if leftover:
        component_groups.append(frozenset(leftover))

    fragment_of_var = {}
    for index, group in enumerate(component_groups):
        for var in group:
            fragment_of_var[var] = index

    # 4. Cross-fragment join conditions become link paths on both sides.
    cross_conditions = []
    link_outputs = [[] for _ in component_groups]
    for cond_index, condition in enumerate(query.conditions):
        left_vars = path_variables(condition.left)
        right_vars = path_variables(condition.right)
        if not left_vars or not right_vars:
            continue
        left_fragment = fragment_of_var[min(left_vars)]
        right_fragment = fragment_of_var[min(right_vars)]
        if left_fragment == right_fragment:
            continue
        left_label = f"__link{cond_index}L"
        right_label = f"__link{cond_index}R"
        link_outputs[left_fragment].append((left_label, condition.left))
        link_outputs[right_fragment].append((right_label, condition.right))
        cross_conditions.append((left_fragment, left_label, right_fragment, right_label))

    # 5. Build the fragment queries: original outputs rooted in the fragment
    #    plus the fragment's link paths.
    fragments = []
    for index, group in enumerate(component_groups):
        outputs = [
            (label, path)
            for label, path in query.output
            if path_variables(path) <= group or (not path_variables(path) and index == 0)
        ]
        outputs += link_outputs[index]
        fragment_query = query.with_output(tuple(outputs)).restrict_to(group)
        if fragment_query is None:
            # Restriction can only fail if an output we assigned to the
            # fragment is not expressible over it, which the assignment above
            # prevents; guard anyway.
            fragment_query = query.with_output(tuple(outputs))
        fragment_skeletons = [
            skeleton for skeleton, image in image_records if image <= group
        ]
        # The same skeleton may have several homomorphisms into one fragment;
        # its constraints are only needed once.
        unique_skeletons = []
        seen = set()
        for skeleton in fragment_skeletons:
            if skeleton.name not in seen:
                seen.add(skeleton.name)
                unique_skeletons.append(skeleton)
        fragments.append(QueryFragment(index, group, fragment_query, unique_skeletons))

    return Decomposition(query, fragments, cross_conditions)


def assemble_plan(decomposition, fragment_plan_queries):
    """Join one plan per fragment back into a plan for the original query.

    ``fragment_plan_queries`` holds one :class:`PCQuery` per fragment, in
    fragment order.  The assembled plan is their join on the link paths, with
    the original output labels recovered from whichever fragment carries them.
    """
    original = decomposition.original
    taken = set()
    renamed_plans = []
    for plan_query in fragment_plan_queries:
        renamed, _ = plan_query.freshen(taken)
        taken |= set(renamed.variables)
        renamed_plans.append(renamed)

    bindings = []
    conditions = []
    for renamed in renamed_plans:
        bindings.extend(renamed.bindings)
        conditions.extend(renamed.conditions)
    for left_fragment, left_label, right_fragment, right_label in decomposition.cross_conditions:
        conditions.append(
            Eq(
                renamed_plans[left_fragment].output_path(left_label),
                renamed_plans[right_fragment].output_path(right_label),
            )
        )

    output = []
    for label, _ in original.output:
        fragment = decomposition.fragment_of_output(label)
        output.append((label, renamed_plans[fragment.index].output_path(label)))

    return PCQuery.create(output, bindings, conditions)


# ---------------------------------------------------------------------- #
# OCS: off-line constraint stratification (Algorithm C.1)
# ---------------------------------------------------------------------- #
def constraints_interact(first, second):
    """Return ``True`` when two dependencies interact (Algorithm C.1, step 1.2).

    Interaction is witnessed by an injective homomorphism between the tableau
    of one constraint and the tableau of the other (in either direction).
    The injectivity requirement keeps an EGD such as a key constraint (two
    bindings over the same relation) from spuriously linking every view that
    mentions that relation, which would collapse all strata into one and
    contradict the stratifications reported in the paper.
    """
    return _tableau_maps_into(first, second) or _tableau_maps_into(second, first)


def _tableau_maps_into(source, target):
    source_bindings, source_conditions = source.tableau()
    target_bindings, target_conditions = target.tableau()
    target_query = PCQuery.create((), target_bindings, target_conditions)
    mapping = find_homomorphism(
        source_bindings, source_conditions, target_query, injective=True
    )
    return mapping is not None


def stratify_constraints(dependencies, egd_in_every_stratum=True):
    """Partition ``dependencies`` into strata (Algorithm C.1).

    TGDs are grouped by the connected components of the interaction graph.
    EGDs (key constraints) are not structural: by default they are appended
    to every stratum so that each stage can still reason with them (see
    DESIGN.md, design choice 4).  With ``egd_in_every_stratum=False`` they
    are stratified like any other constraint.

    Returns a list of lists of dependencies; the order of strata follows the
    order of first appearance in the input.
    """
    dependencies = list(dependencies)
    if egd_in_every_stratum:
        structural = [dep for dep in dependencies if dep.is_tgd]
        egds = [dep for dep in dependencies if dep.is_egd]
    else:
        structural = dependencies
        egds = []

    if not structural:
        return [list(egds)] if egds else []

    union = _UnionFind(range(len(structural)))
    for i in range(len(structural)):
        for j in range(i + 1, len(structural)):
            if constraints_interact(structural[i], structural[j]):
                union.union(i, j)

    groups = union.groups()
    groups.sort(key=min)
    strata = []
    for group in groups:
        stratum = [structural[index] for index in sorted(group)]
        stratum.extend(egds)
        strata.append(stratum)
    return strata


__all__ = [
    "Decomposition",
    "QueryFragment",
    "assemble_plan",
    "constraints_interact",
    "decompose_query",
    "stratify_constraints",
]
