"""The C&B optimizer façade: chase, then backchase under a chosen strategy.

:class:`CBOptimizer` glues the pieces together:

* build the constraint set from a :class:`~repro.schema.catalog.Catalog` (or
  accept an explicit list),
* chase the input query into the universal plan,
* enumerate plans with one of the three strategies evaluated in the paper:
  the full backchase (``"fb"``), on-line query fragmentation (``"oqf"``) or
  off-line constraint stratification (``"ocs"``),
* optionally rank the plans with a cost model and pick the best one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ChaseError
from repro.chase.backchase import FullBackchase
from repro.chase.chase import chase
from repro.chase.plans import Plan, dedupe_plans
from repro.chase.stratify import assemble_plan, decompose_query, stratify_constraints

STRATEGIES = ("fb", "oqf", "ocs")


@dataclass
class OptimizationResult:
    """Everything the experiments measure about one optimizer run.

    Attributes
    ----------
    original:
        The input query.
    strategy:
        ``"fb"``, ``"oqf"`` or ``"ocs"``.
    plans:
        The generated plans (:class:`Plan` objects).  The original query is
        always among them (possibly rewritten over the physical schema).
    universal_plan:
        The chased query (for ``"fb"``; fragment/stage universal plans are
        not retained).
    chase_time / backchase_time:
        Wall-clock seconds spent in each phase.
    subqueries_explored / equivalence_checks:
        Search-effort counters summed over fragments/stages.
    timed_out:
        ``True`` when a timeout interrupted the search (plan list may be
        incomplete).
    fragment_count / stratum_count:
        Decomposition sizes for OQF / OCS (0 otherwise).
    closure_queries / cache_hits / cache_misses:
        Engine-effort counters summed over the run's chases and backchases
        (benchmarks record these to track the perf trajectory across PRs).
    """

    original: object
    strategy: str
    plans: list = field(default_factory=list)
    universal_plan: object = None
    chase_time: float = 0.0
    backchase_time: float = 0.0
    subqueries_explored: int = 0
    equivalence_checks: int = 0
    timed_out: bool = False
    fragment_count: int = 0
    stratum_count: int = 0
    closure_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def plan_count(self):
        return len(self.plans)

    @property
    def total_time(self):
        """Total optimization time (chase + backchase)."""
        return self.chase_time + self.backchase_time

    def time_per_plan(self):
        """The paper's normalised measure: optimization time per generated plan."""
        if not self.plans:
            return float("inf")
        return self.total_time / len(self.plans)

    def plan_queries(self):
        """Return the plans as plain queries."""
        return [plan.query for plan in self.plans]

    def best_plan(self, cost_function):
        """Return the cheapest plan according to ``cost_function(query) -> float``."""
        if not self.plans:
            return None
        best = min(self.plans, key=lambda plan: cost_function(plan.query))
        best.cost = cost_function(best.query)
        return best


class CBOptimizer:
    """Chase & Backchase optimizer over a catalog (or explicit constraint set).

    Parameters
    ----------
    catalog:
        A :class:`~repro.schema.catalog.Catalog`; provides both the
        constraints and the skeletons needed by OQF.
    constraints:
        Optional explicit constraint list overriding the catalog's.
    timeout:
        Default per-optimization wall-clock budget in seconds (``None`` for
        unlimited); can be overridden per call.
    """

    def __init__(self, catalog=None, constraints=None, timeout=None):
        if catalog is None and constraints is None:
            raise ValueError("CBOptimizer needs a catalog or an explicit constraint list")
        self.catalog = catalog
        self._constraints = list(constraints) if constraints is not None else None
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # constraint access
    # ------------------------------------------------------------------ #
    def constraints(self):
        """Return the constraint set used for chasing and equivalence checks."""
        if self._constraints is not None:
            return list(self._constraints)
        return list(self.catalog.constraints())

    def skeletons(self):
        """Return the skeletons available for OQF fragmentation."""
        if self.catalog is None:
            return []
        return self.catalog.skeletons()

    def semantic_constraints(self):
        """Return the semantic (non-skeleton) constraints."""
        if self.catalog is None:
            skeleton_names = set()
        else:
            skeleton_names = {
                dep.name for skeleton in self.skeletons() for dep in skeleton.constraints
            }
        return [dep for dep in self.constraints() if dep.name not in skeleton_names]

    # ------------------------------------------------------------------ #
    # chase phase
    # ------------------------------------------------------------------ #
    def universal_plan(self, query, constraints=None):
        """Chase ``query`` with the constraint set and return the ChaseResult."""
        return chase(query, constraints if constraints is not None else self.constraints())

    # ------------------------------------------------------------------ #
    # optimization
    # ------------------------------------------------------------------ #
    def optimize(self, query, strategy="fb", constraints=None, timeout=None):
        """Generate alternative plans for ``query`` under the given strategy."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        query.validate()
        timeout = timeout if timeout is not None else self.timeout
        constraints = constraints if constraints is not None else self.constraints()
        if strategy == "fb":
            return self._optimize_fb(query, constraints, timeout)
        if strategy == "oqf":
            return self._optimize_oqf(query, constraints, timeout)
        return self._optimize_ocs(query, constraints, timeout)

    def optimize_with_strata(self, query, strata, timeout=None):
        """Run the OCS pipeline with an explicitly chosen stratification.

        Used by the stratification-granularity experiment (Figure 8), which
        varies the number of strata for a fixed query, and available to users
        who want to hand-tune the constraint grouping.
        """
        query.validate()
        timeout = timeout if timeout is not None else self.timeout
        constraints = [dependency for stratum in strata for dependency in stratum]
        return self._optimize_ocs(query, constraints, timeout, strata=[list(s) for s in strata])

    # ------------------------------------------------------------------ #
    # FB
    # ------------------------------------------------------------------ #
    def _optimize_fb(self, query, constraints, timeout, strategy_label="fb"):
        chase_result = chase(query, constraints)
        backchaser = FullBackchase(query, constraints, timeout=timeout, strategy_label=strategy_label)
        backchase_result = backchaser.run(chase_result.query)
        return OptimizationResult(
            original=query,
            strategy=strategy_label,
            plans=backchase_result.plans,
            universal_plan=chase_result.query,
            chase_time=chase_result.elapsed,
            backchase_time=backchase_result.elapsed,
            subqueries_explored=backchase_result.subqueries_explored,
            equivalence_checks=backchase_result.equivalence_checks,
            timed_out=backchase_result.timed_out,
            closure_queries=chase_result.counters.closure_queries
            + backchase_result.closure_queries,
            cache_hits=backchase_result.cache_hits,
            cache_misses=backchase_result.cache_misses,
        )

    # ------------------------------------------------------------------ #
    # OQF
    # ------------------------------------------------------------------ #
    def _optimize_oqf(self, query, constraints, timeout):
        start = time.perf_counter()
        skeletons = self.skeletons()
        semantic = self.semantic_constraints() if self.catalog is not None else [
            dep for dep in constraints if dep.kind == "semantic"
        ]
        decomposition = decompose_query(query, skeletons)
        chase_time = 0.0
        backchase_time = 0.0
        explored = 0
        checks = 0
        closure_queries = 0
        cache_hits = 0
        cache_misses = 0
        timed_out = False
        fragment_plan_sets = []
        deadline = (start + timeout) if timeout is not None else None
        for fragment in decomposition.fragments:
            fragment_constraints = list(semantic)
            for skeleton in fragment.skeletons:
                fragment_constraints.extend(skeleton.constraints)
                fragment_constraints.extend(self._extra_constraints_for(skeleton))
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            chase_result = chase(fragment.query, fragment_constraints)
            chase_time += chase_result.elapsed
            closure_queries += chase_result.counters.closure_queries
            backchaser = FullBackchase(
                fragment.query, fragment_constraints, timeout=remaining, strategy_label="oqf"
            )
            fragment_result = backchaser.run(chase_result.query)
            backchase_time += fragment_result.elapsed
            explored += fragment_result.subqueries_explored
            checks += fragment_result.equivalence_checks
            closure_queries += fragment_result.closure_queries
            cache_hits += fragment_result.cache_hits
            cache_misses += fragment_result.cache_misses
            timed_out = timed_out or fragment_result.timed_out
            fragment_plan_sets.append([plan.query for plan in fragment_result.plans])

        plans = []
        for combination in _product(fragment_plan_sets):
            assembled = assemble_plan(decomposition, list(combination))
            plans.append(Plan(assembled, strategy="oqf"))
        plans = dedupe_plans(plans)
        total = time.perf_counter() - start
        return OptimizationResult(
            original=query,
            strategy="oqf",
            plans=plans,
            universal_plan=None,
            chase_time=chase_time,
            backchase_time=total - chase_time,
            subqueries_explored=explored,
            equivalence_checks=checks,
            timed_out=timed_out,
            fragment_count=decomposition.fragment_count,
            closure_queries=closure_queries,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def _extra_constraints_for(self, skeleton):
        """Return the auxiliary constraints of a structure (e.g. non-emptiness)."""
        if self.catalog is None or skeleton.structure is None:
            return []
        from repro.schema.compile import compile_structure

        _, extras = compile_structure(skeleton.structure)
        return list(extras)

    # ------------------------------------------------------------------ #
    # OCS
    # ------------------------------------------------------------------ #
    def _optimize_ocs(self, query, constraints, timeout, strata=None):
        start = time.perf_counter()
        strata = strata if strata is not None else stratify_constraints(constraints)
        deadline = (start + timeout) if timeout is not None else None
        chase_time = 0.0
        explored = 0
        checks = 0
        closure_queries = 0
        cache_hits = 0
        cache_misses = 0
        timed_out = False
        current = [query]
        for stratum in strata:
            next_stage = []
            for stage_query in current:
                remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
                chase_result = chase(stage_query, stratum)
                chase_time += chase_result.elapsed
                closure_queries += chase_result.counters.closure_queries
                backchaser = FullBackchase(
                    stage_query, stratum, timeout=remaining, strategy_label="ocs"
                )
                stage_result = backchaser.run(chase_result.query)
                explored += stage_result.subqueries_explored
                checks += stage_result.equivalence_checks
                closure_queries += stage_result.closure_queries
                cache_hits += stage_result.cache_hits
                cache_misses += stage_result.cache_misses
                timed_out = timed_out or stage_result.timed_out
                next_stage.extend(plan.query for plan in stage_result.plans)
            current = _dedupe_queries(next_stage) if next_stage else current
        plans = dedupe_plans([Plan(plan_query, strategy="ocs") for plan_query in current])
        total = time.perf_counter() - start
        return OptimizationResult(
            original=query,
            strategy="ocs",
            plans=plans,
            universal_plan=None,
            chase_time=chase_time,
            backchase_time=total - chase_time,
            subqueries_explored=explored,
            equivalence_checks=checks,
            timed_out=timed_out,
            stratum_count=len(strata),
            closure_queries=closure_queries,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )


def _product(list_of_lists):
    """Cartesian product that degrades gracefully on empty inputs."""
    if not list_of_lists:
        return
    if any(not options for options in list_of_lists):
        return
    import itertools

    yield from itertools.product(*list_of_lists)


def _dedupe_queries(queries):
    seen = set()
    unique = []
    for query in queries:
        key = query.signature()
        if key not in seen:
            seen.add(key)
            unique.append(query)
    return unique


__all__ = ["CBOptimizer", "OptimizationResult", "STRATEGIES"]
