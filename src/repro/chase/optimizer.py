"""The C&B optimizer façade: chase, then backchase under a chosen strategy.

:class:`CBOptimizer` glues the pieces together:

* build the constraint set from a :class:`~repro.schema.catalog.Catalog` (or
  accept an explicit list),
* chase the input query into the universal plan,
* enumerate plans with one of the three strategies evaluated in the paper:
  the full backchase (``"fb"``), on-line query fragmentation (``"oqf"``) or
  off-line constraint stratification (``"ocs"``),
* optionally rank the plans with a cost model and pick the best one.

Parallelism: the ``executor`` / ``workers`` knobs select how the subquery
lattice is explored (``"fb"`` uses the wave-parallel
:class:`~repro.chase.backchase.ParallelBackchase`) and fan the independent
OQF fragments and OCS stage queries of a stratum across the same kind of
worker pool.  Timeouts are enforced as absolute deadlines threaded through
the chase phase as well, so an optimize call never exceeds its budget by
more than the granularity of the engines' deadline checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chase.backchase import (
    EXECUTORS,
    FullBackchase,
    ParallelBackchase,
    make_executor,
    resolve_worker_count,
)
from repro.chase.chase import chase
from repro.chase.plans import Plan, dedupe_plans
from repro.chase.stratify import assemble_plan, decompose_query, stratify_constraints

STRATEGIES = ("fb", "oqf", "ocs")


@dataclass
class OptimizationResult:
    """Everything the experiments measure about one optimizer run.

    Attributes
    ----------
    original:
        The input query.
    strategy:
        ``"fb"``, ``"oqf"`` or ``"ocs"``.
    plans:
        The generated plans (:class:`Plan` objects).  The original query is
        always among them (possibly rewritten over the physical schema) —
        even on a timeout, when the fallback is the original query itself.
    universal_plan:
        The chased query (for ``"fb"``; fragment/stage universal plans are
        not retained).
    chase_time / backchase_time:
        Wall-clock seconds spent in each phase.  For OQF/OCS under a pooled
        executor, ``chase_time`` sums the *per-stage* chase times across
        concurrent workers and may therefore exceed the wall-clock total;
        ``backchase_time`` (the wall-clock remainder) is clamped at zero in
        that case.
    subqueries_explored / equivalence_checks:
        Search-effort counters summed over fragments/stages.
    timed_out:
        ``True`` when a timeout interrupted the search (plan list may be
        incomplete).
    fragment_count / stratum_count:
        Decomposition sizes for OQF / OCS (0 otherwise).
    closure_queries / cache_hits / cache_misses:
        Engine-effort counters summed over the run's chases and backchases
        (benchmarks record these to track the perf trajectory across PRs).
    executor / workers:
        The executor kind and worker count the run was configured with.
    """

    original: object
    strategy: str
    plans: list = field(default_factory=list)
    universal_plan: object | None = None
    chase_time: float = 0.0
    backchase_time: float = 0.0
    subqueries_explored: int = 0
    equivalence_checks: int = 0
    timed_out: bool = False
    fragment_count: int = 0
    stratum_count: int = 0
    closure_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executor: str = "serial"
    workers: int = 1

    @property
    def plan_count(self):
        return len(self.plans)

    @property
    def total_time(self):
        """Total optimization time (chase + backchase)."""
        return self.chase_time + self.backchase_time

    def time_per_plan(self):
        """The paper's normalised measure: optimization time per generated plan."""
        if not self.plans:
            return float("inf")
        return self.total_time / len(self.plans)

    def plan_queries(self):
        """Return the plans as plain queries."""
        return [plan.query for plan in self.plans]

    def best_plan(self, cost_function):
        """Return the cheapest plan according to ``cost_function(query) -> float``."""
        if not self.plans:
            return None
        best = min(self.plans, key=lambda plan: cost_function(plan.query))
        best.cost = cost_function(best.query)
        return best


# ---------------------------------------------------------------------- #
# picklable per-fragment / per-stage work unit (OQF and OCS fan-out)
# ---------------------------------------------------------------------- #
@dataclass
class _StageTask:
    """One independent chase+backchase unit: an OQF fragment or an OCS stage.

    ``request_id`` identifies the originating service request when stage
    tasks from several concurrently in-flight queries are batched into the
    same executor waves (the scheduler stamps it and demuxes outcomes back to
    per-request futures).  ``chase_cache`` is an optional warm
    :class:`~repro.chase.implication.ChaseCache` built for *exactly*
    ``constraints`` (never set on the pickled process-pool path — worker
    processes keep their own caches).
    """

    query: object
    constraints: list
    deadline: float | None
    label: str
    request_id: object = None
    chase_cache: object = None
    containment_memo: object = None


@dataclass
class _StageOutcome:
    """Picklable summary of one stage's chase+backchase, merged in order."""

    plan_queries: list = field(default_factory=list)
    chase_time: float = 0.0
    subqueries_explored: int = 0
    equivalence_checks: int = 0
    closure_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    timed_out: bool = False


def _run_stage_task(task):
    """Chase a stage query and backchase its universal plan (worker-safe).

    The remaining budget is recomputed *after* the chase (the chase itself is
    deadline-bounded), so the backchase never starts with a stale budget and
    the stage as a whole stays inside the optimizer's deadline.  A warm
    ``task.chase_cache`` short-circuits both the stage chase and the
    backchase's equivalence chases without changing any result (cache entries
    are exact fixpoints for exactly ``task.constraints``).
    """
    if task.chase_cache is not None:
        chase_result = task.chase_cache.chase_result(task.query, deadline=task.deadline)
    else:
        chase_result = chase(task.query, task.constraints, deadline=task.deadline)
    if chase_result.timed_out:
        return _StageOutcome(
            chase_time=chase_result.elapsed,
            closure_queries=chase_result.counters.closure_queries,
            timed_out=True,
        )
    remaining = (
        None if task.deadline is None else max(0.0, task.deadline - time.perf_counter())
    )
    backchaser = FullBackchase(
        task.query,
        task.constraints,
        timeout=remaining,
        strategy_label=task.label,
        chase_cache=task.chase_cache,
        containment_memo=task.containment_memo,
    )
    result = backchaser.run(chase_result.query)
    return _StageOutcome(
        plan_queries=[plan.query for plan in result.plans],
        chase_time=chase_result.elapsed,
        subqueries_explored=result.subqueries_explored,
        equivalence_checks=result.equivalence_checks,
        closure_queries=chase_result.counters.closure_queries + result.closure_queries,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        timed_out=result.timed_out,
    )


class CBOptimizer:
    """Chase & Backchase optimizer over a catalog (or explicit constraint set).

    Parameters
    ----------
    catalog:
        A :class:`~repro.schema.catalog.Catalog`; provides both the
        constraints and the skeletons needed by OQF.
    constraints:
        Optional explicit constraint list overriding the catalog's.
    timeout:
        Default per-optimization wall-clock budget in seconds (``None`` for
        unlimited); can be overridden per call.  The budget covers the chase
        phase as well as the backchase.
    workers:
        Worker count for the pooled executors (``None`` = CPU count).
    executor:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``; drives the
        wave-parallel backchase for ``"fb"`` and the fragment/stage fan-out
        for ``"oqf"`` / ``"ocs"``.
    cache_registry:
        Optional :class:`~repro.chase.implication.ChaseCacheRegistry` of
        warm chase caches keyed by exact constraint set.  When given, the
        chase phase, the backchase equivalence chases and the OQF/OCS stage
        chases all read/write the registry's caches, so fixpoints survive
        across optimize calls (the optimizer service shares one registry per
        catalog session).  Plan sets are unaffected — cached entries are
        exact fixpoints for exactly the constraint set they are keyed under.
    pool:
        Optional externally managed executor-protocol object used for both
        the wave-parallel backchase and the fragment/stage fan-out instead of
        per-call pools built from ``executor`` / ``workers``.  Never closed
        by this class; the service passes its long-lived, cross-query
        batching pool here.
    containment_memo:
        Optional shared :class:`~repro.cq.memo.ContainmentMemo`.  Verdicts
        are independent of the constraint set (they compare two concrete
        queries), so a single memo serves every strategy, fragment and
        stage; the optimizer service shares one per catalog session, so warm
        requests stop redoing the containment searches.  Like the warm chase
        caches, it is never shipped onto pickled process-pool tasks.
    """

    def __init__(
        self,
        catalog=None,
        constraints=None,
        timeout=None,
        workers=1,
        executor="serial",
        cache_registry=None,
        pool=None,
        containment_memo=None,
    ):
        if catalog is None and constraints is None:
            raise ValueError("CBOptimizer needs a catalog or an explicit constraint list")
        if pool is None and executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
        self.catalog = catalog
        self._constraints = list(constraints) if constraints is not None else None
        self.timeout = timeout
        self.workers = workers
        self.executor = executor
        self.cache_registry = cache_registry
        self.pool = pool
        self.containment_memo = containment_memo

    # ------------------------------------------------------------------ #
    # constraint access
    # ------------------------------------------------------------------ #
    def constraints(self):
        """Return the constraint set used for chasing and equivalence checks."""
        if self._constraints is not None:
            return list(self._constraints)
        return list(self.catalog.constraints())

    def skeletons(self):
        """Return the skeletons available for OQF fragmentation."""
        if self.catalog is None:
            return []
        return self.catalog.skeletons()

    def semantic_constraints(self):
        """Return the semantic (non-skeleton) constraints."""
        if self.catalog is None:
            skeleton_names = set()
        else:
            skeleton_names = {
                dep.name for skeleton in self.skeletons() for dep in skeleton.constraints
            }
        return [dep for dep in self.constraints() if dep.name not in skeleton_names]

    # ------------------------------------------------------------------ #
    # chase phase
    # ------------------------------------------------------------------ #
    def universal_plan(self, query, constraints=None):
        """Chase ``query`` with the constraint set and return the ChaseResult."""
        return chase(query, constraints if constraints is not None else self.constraints())

    # ------------------------------------------------------------------ #
    # optimization
    # ------------------------------------------------------------------ #
    def optimize(self, query, strategy="fb", constraints=None, timeout=None):
        """Generate alternative plans for ``query`` under the given strategy."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        query.validate()
        timeout = timeout if timeout is not None else self.timeout
        constraints = constraints if constraints is not None else self.constraints()
        if strategy == "fb":
            result = self._optimize_fb(query, constraints, timeout)
        elif strategy == "oqf":
            result = self._optimize_oqf(query, constraints, timeout)
        else:
            result = self._optimize_ocs(query, constraints, timeout)
        return self._stamp(result)

    def optimize_with_strata(self, query, strata, timeout=None):
        """Run the OCS pipeline with an explicitly chosen stratification.

        Used by the stratification-granularity experiment (Figure 8), which
        varies the number of strata for a fixed query, and available to users
        who want to hand-tune the constraint grouping.
        """
        query.validate()
        timeout = timeout if timeout is not None else self.timeout
        constraints = [dependency for stratum in strata for dependency in stratum]
        return self._stamp(
            self._optimize_ocs(query, constraints, timeout, strata=[list(s) for s in strata])
        )

    # ------------------------------------------------------------------ #
    # parallelism helpers
    # ------------------------------------------------------------------ #
    def _stamp(self, result):
        """Record the run's actual parallel configuration on the result.

        The ``serial`` executor always runs single-worker, whatever the
        ``workers`` knob says; an external pool reports its own kind/size.
        """
        if self.pool is not None:
            result.executor = self.pool.kind
            result.workers = self.pool.workers
            return result
        result.executor = self.executor
        result.workers = 1 if self.executor == "serial" else resolve_worker_count(self.workers)
        return result

    def _stage_cache(self, constraints):
        """Return the warm cache for exactly ``constraints``, or ``None``."""
        if self.cache_registry is None:
            return None
        return self.cache_registry.for_constraints(constraints)

    def _detached_stages(self):
        """Whether fragment/stage tasks run on a detached (process) pool."""
        if self.pool is not None:
            return getattr(self.pool, "detached", False)
        return self.executor == "processes"

    def _stage_task_cache(self, constraints):
        """The warm cache for a fragment/stage task, or ``None``.

        Stage tasks dispatched to a detached (process) pool are pickled, so a
        shared cache would be copied rather than shared — those tasks run
        with their own per-worker caches instead.
        """
        if self._detached_stages():
            return None
        return self._stage_cache(constraints)

    def _stage_task_memo(self):
        """The shared containment memo for a stage task, or ``None``.

        Same pickling rule as :meth:`_stage_task_cache`: never shipped to
        detached process pools.
        """
        if self._detached_stages():
            return None
        return self.containment_memo

    def _chase(self, query, constraints, deadline):
        """Chase ``query``, through the warm cache registry when configured."""
        cache = self._stage_cache(constraints)
        if cache is not None:
            return cache.chase_result(query, deadline=deadline)
        return chase(query, constraints, deadline=deadline)

    def _make_backchaser(self, original, constraints, timeout, label):
        """Build the configured backchase engine for one universal plan."""
        chase_cache = self._stage_cache(constraints)
        if self.pool is not None:
            return ParallelBackchase(
                original,
                constraints,
                timeout=timeout,
                strategy_label=label,
                pool=self.pool,
                chase_cache=chase_cache,
                containment_memo=self.containment_memo,
            )
        if self.executor != "serial":
            return ParallelBackchase(
                original,
                constraints,
                timeout=timeout,
                strategy_label=label,
                executor=self.executor,
                workers=self.workers,
                chase_cache=chase_cache,
                containment_memo=self.containment_memo,
            )
        return FullBackchase(
            original,
            constraints,
            timeout=timeout,
            strategy_label=label,
            chase_cache=chase_cache,
            containment_memo=self.containment_memo,
        )

    def _make_stage_pool(self):
        """Build the fragment/stage fan-out pool, or ``None`` when serial.

        Callers create one pool per optimize call and reuse it across every
        stratum/fragment wave (pool startup is not free, especially for
        process pools), closing it in a ``finally`` — except for an external
        ``pool``, whose lifecycle belongs to its owner (the service).
        """
        if self.pool is not None:
            return self.pool
        if self.executor == "serial":
            return None
        return make_executor(self.executor, self.workers)

    def _close_stage_pool(self, pool):
        if pool is not None and pool is not self.pool:
            pool.close()

    @staticmethod
    def _map_stage_tasks(tasks, pool=None):
        """Run independent stage tasks, on ``pool`` when one is configured."""
        if pool is None:
            return [_run_stage_task(task) for task in tasks]
        return pool.map(_run_stage_task, tasks)

    @staticmethod
    def _remaining(deadline):
        return None if deadline is None else max(0.0, deadline - time.perf_counter())

    # ------------------------------------------------------------------ #
    # FB
    # ------------------------------------------------------------------ #
    def _optimize_fb(self, query, constraints, timeout, strategy_label="fb"):
        start = time.perf_counter()
        deadline = (start + timeout) if timeout is not None else None
        chase_result = self._chase(query, constraints, deadline)
        if chase_result.timed_out:
            # The chase itself ran out of budget: the partially chased query
            # is not a universal plan, so backchasing it could yield
            # non-equivalent "plans".  Fall back to the original query.
            return OptimizationResult(
                original=query,
                strategy=strategy_label,
                plans=[Plan(query, strategy=strategy_label)],
                universal_plan=None,
                chase_time=chase_result.elapsed,
                timed_out=True,
                closure_queries=chase_result.counters.closure_queries,
            )
        backchaser = self._make_backchaser(
            query, constraints, self._remaining(deadline), strategy_label
        )
        backchase_result = backchaser.run(chase_result.query)
        plans = backchase_result.plans or [Plan(query, strategy=strategy_label)]
        return OptimizationResult(
            original=query,
            strategy=strategy_label,
            plans=plans,
            universal_plan=chase_result.query,
            chase_time=chase_result.elapsed,
            backchase_time=backchase_result.elapsed,
            subqueries_explored=backchase_result.subqueries_explored,
            equivalence_checks=backchase_result.equivalence_checks,
            timed_out=backchase_result.timed_out,
            closure_queries=chase_result.counters.closure_queries
            + backchase_result.closure_queries,
            cache_hits=backchase_result.cache_hits,
            cache_misses=backchase_result.cache_misses,
        )

    # ------------------------------------------------------------------ #
    # OQF
    # ------------------------------------------------------------------ #
    def _optimize_oqf(self, query, constraints, timeout):
        start = time.perf_counter()
        skeletons = self.skeletons()
        semantic = self.semantic_constraints() if self.catalog is not None else [
            dep for dep in constraints if dep.kind == "semantic"
        ]
        decomposition = decompose_query(query, skeletons)
        deadline = (start + timeout) if timeout is not None else None
        tasks = []
        for fragment in decomposition.fragments:
            fragment_constraints = list(semantic)
            for skeleton in fragment.skeletons:
                fragment_constraints.extend(skeleton.constraints)
                fragment_constraints.extend(self._extra_constraints_for(skeleton))
            tasks.append(
                _StageTask(
                    fragment.query,
                    fragment_constraints,
                    deadline,
                    "oqf",
                    chase_cache=self._stage_task_cache(fragment_constraints),
                    containment_memo=self._stage_task_memo(),
                )
            )

        chase_time = 0.0
        explored = 0
        checks = 0
        closure_queries = 0
        cache_hits = 0
        cache_misses = 0
        timed_out = False
        fragment_plan_sets = []
        pool = self._make_stage_pool()
        try:
            outcomes = self._map_stage_tasks(tasks, pool)
        finally:
            self._close_stage_pool(pool)
        for fragment, outcome in zip(decomposition.fragments, outcomes):
            chase_time += outcome.chase_time
            explored += outcome.subqueries_explored
            checks += outcome.equivalence_checks
            closure_queries += outcome.closure_queries
            cache_hits += outcome.cache_hits
            cache_misses += outcome.cache_misses
            timed_out = timed_out or outcome.timed_out
            plan_set = outcome.plan_queries
            if not plan_set:
                # A timed-out (or otherwise empty) fragment would erase the
                # whole cartesian product; fall back to the fragment's own
                # query so the assembled plans still cover the original.
                plan_set = [fragment.query]
                timed_out = True
            fragment_plan_sets.append(plan_set)

        plans = []
        for combination in _product(fragment_plan_sets):
            assembled = assemble_plan(decomposition, list(combination))
            plans.append(Plan(assembled, strategy="oqf"))
        plans = dedupe_plans(plans) or [Plan(query, strategy="oqf")]
        total = time.perf_counter() - start
        return OptimizationResult(
            original=query,
            strategy="oqf",
            plans=plans,
            universal_plan=None,
            chase_time=chase_time,
            backchase_time=max(0.0, total - chase_time),
            subqueries_explored=explored,
            equivalence_checks=checks,
            timed_out=timed_out,
            fragment_count=decomposition.fragment_count,
            closure_queries=closure_queries,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def _extra_constraints_for(self, skeleton):
        """Return the auxiliary constraints of a structure (e.g. non-emptiness)."""
        if self.catalog is None or skeleton.structure is None:
            return []
        from repro.schema.compile import compile_structure

        _, extras = compile_structure(skeleton.structure)
        return list(extras)

    # ------------------------------------------------------------------ #
    # OCS
    # ------------------------------------------------------------------ #
    def _optimize_ocs(self, query, constraints, timeout, strata=None):
        start = time.perf_counter()
        strata = strata if strata is not None else stratify_constraints(constraints)
        deadline = (start + timeout) if timeout is not None else None
        chase_time = 0.0
        explored = 0
        checks = 0
        closure_queries = 0
        cache_hits = 0
        cache_misses = 0
        timed_out = False
        current = [query]
        pool = self._make_stage_pool()
        try:
            for stratum in strata:
                stratum_constraints = list(stratum)
                stratum_cache = self._stage_task_cache(stratum_constraints)
                tasks = [
                    _StageTask(
                        stage_query,
                        stratum_constraints,
                        deadline,
                        "ocs",
                        chase_cache=stratum_cache,
                        containment_memo=self._stage_task_memo(),
                    )
                    for stage_query in current
                ]
                next_stage = []
                for stage_query, outcome in zip(current, self._map_stage_tasks(tasks, pool)):
                    chase_time += outcome.chase_time
                    explored += outcome.subqueries_explored
                    checks += outcome.equivalence_checks
                    closure_queries += outcome.closure_queries
                    cache_hits += outcome.cache_hits
                    cache_misses += outcome.cache_misses
                    timed_out = timed_out or outcome.timed_out
                    if outcome.plan_queries:
                        next_stage.extend(outcome.plan_queries)
                    else:
                        # A timed-out stage keeps its input query so the
                        # pipeline (and the final plan list) never goes empty.
                        next_stage.append(stage_query)
                current = _dedupe_queries(next_stage)
        finally:
            self._close_stage_pool(pool)
        plans = dedupe_plans([Plan(plan_query, strategy="ocs") for plan_query in current])
        plans = plans or [Plan(query, strategy="ocs")]
        total = time.perf_counter() - start
        return OptimizationResult(
            original=query,
            strategy="ocs",
            plans=plans,
            universal_plan=None,
            chase_time=chase_time,
            backchase_time=max(0.0, total - chase_time),
            subqueries_explored=explored,
            equivalence_checks=checks,
            timed_out=timed_out,
            stratum_count=len(strata),
            closure_queries=closure_queries,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )


def _product(list_of_lists):
    """Cartesian product that degrades gracefully on empty inputs."""
    if not list_of_lists:
        return
    if any(not options for options in list_of_lists):
        return
    import itertools

    yield from itertools.product(*list_of_lists)


def _dedupe_queries(queries):
    seen = set()
    unique = []
    for query in queries:
        key = query.signature()
        if key not in seen:
            seen.add(key)
            unique.append(query)
    return unique


__all__ = ["CBOptimizer", "OptimizationResult", "STRATEGIES"]
