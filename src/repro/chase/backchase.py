"""The full backchase (FB): minimal equivalent subqueries of the universal plan.

Two engines implement the top-down exploration described in Section 4 of the
paper:

* :class:`FullBackchase` — the original recursive (depth-first) walk:
  starting from the universal plan, repeatedly try to remove one binding at a
  time and recursively minimise every equivalent subquery reached.  A
  subquery with no equivalent strict subquery is minimal and is emitted as a
  plan.

* :class:`ParallelBackchase` — a frontier-based, level-wise walk of the same
  subquery lattice driven by a pluggable executor (``serial`` / ``threads``
  / ``processes``).  Each wave collects every untried ``variables - {var}``
  subset across the whole frontier, evaluates the equivalence checks
  concurrently (they are independent given a shared
  :class:`~repro.chase.implication.ChaseCache`), merges the verdict maps,
  :class:`~repro.cq.homomorphism.SearchStats`,
  :class:`~repro.chase.chase.ChaseCounters` and newly chased cache entries
  back into shared state, and then expands the next frontier.  Both engines
  visit exactly the same lattice nodes and therefore produce identical plan
  sets (asserted by the test suite and the scaling benchmark).

Equivalence of a candidate subquery with the original query is checked with
the chase-based containment test of :mod:`repro.chase.implication`; one of
the two containments always holds for subqueries of the universal plan (the
original query maps into them), so only the other direction is chased.  The
chase results are memoised across candidates (:class:`ChaseCache`), and the
set of explored binding subsets is memoised so each subquery is inspected at
most once.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ChaseTimeout
from repro.chase.chase import ChaseCounters, deadline_passed
from repro.chase.implication import ChaseCache, _has_containment_mapping
from repro.chase.plans import Plan, dedupe_isomorphic_plans
from repro.cq.homomorphism import SearchStats

#: The executor kinds understood by :func:`make_executor`.
EXECUTORS = ("serial", "threads", "processes")


@dataclass
class BackchaseResult:
    """Outcome of a backchase run.

    Attributes
    ----------
    plans:
        The minimal equivalent subqueries found, as :class:`Plan` objects.
    subqueries_explored:
        Number of distinct binding subsets inspected.
    equivalence_checks:
        Number of chase-based equivalence tests performed.
    elapsed:
        Wall-clock seconds spent in the backchase.
    timed_out:
        ``True`` when the exploration hit the timeout and the plan list may
        be incomplete.
    cache_hits / cache_misses:
        :class:`~repro.chase.implication.ChaseCache` accounting for the run.
    closure_queries / candidates_tried:
        Search effort summed over the containment-mapping searches of this
        run plus every cache-miss chase performed for it.
    executor / workers / waves:
        How the lattice was explored: the executor kind, the worker count,
        and (for the wave engine) the number of frontier waves dispatched.
    chunk_policy:
        How wave payloads were split across workers (``"inline"`` for the
        serial executor, ``"size-ordered"`` for the pooled ones); also
        recorded on the run's :class:`SearchStats`.
    """

    plans: list = field(default_factory=list)
    subqueries_explored: int = 0
    equivalence_checks: int = 0
    elapsed: float = 0.0
    timed_out: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    closure_queries: int = 0
    candidates_tried: int = 0
    executor: str = "serial"
    workers: int = 1
    waves: int = 0
    chunk_policy: str = ""

    @property
    def plan_count(self):
        return len(self.plans)

    def time_per_plan(self):
        """The paper's normalised measure: optimization time / generated plans."""
        if not self.plans:
            return float("inf")
        return self.elapsed / len(self.plans)


class BackchaseTimeout(Exception):
    """Internal signal used to unwind the exploration when the timeout hits."""


# ---------------------------------------------------------------------- #
# the equivalence check shared by both engines
# ---------------------------------------------------------------------- #
def _check_equivalence(original, universal_plan, subquery, cache, stats, deadline=None, memo=None):
    """Return ``True`` when ``subquery`` is equivalent to ``original``.

    Direction 1: the subquery is contained in the original under the
    constraints (chase the subquery, map the original into it).  Direction 2:
    the original is contained in the subquery; for subqueries of the
    universal plan this always holds (the universal plan is the chased
    original and the subquery maps into it by construction of the
    restriction), so it is checked cheaply against the universal plan itself.

    ``memo`` is an optional :class:`~repro.cq.memo.ContainmentMemo`: both
    containment searches then go through it, so a warm service request whose
    (subquery, fixpoint) pairs were already decided by an earlier request
    skips the homomorphism searches entirely.  Memo hits do not add to
    ``stats`` — the saved search effort is exactly what the serving metrics
    measure.

    Raises :class:`~repro.errors.ChaseTimeout` when ``deadline`` expires
    during the cache-miss chase.
    """
    chased = cache.chase(subquery, deadline=deadline)
    if memo is not None:
        if not memo.check(original, chased, stats=stats):
            return False
        return memo.check(subquery, universal_plan, stats=stats)
    if not _has_containment_mapping(original, chased, stats=stats):
        return False
    return _has_containment_mapping(subquery, universal_plan, stats=stats)


def _ordered_plan_items(plans_by_key):
    """Deterministic plan order: by subset size, then by sorted variable names.

    Both engines sort their emitted plans this way before the isomorphism
    dedupe, so the representative kept for each isomorphism class does not
    depend on the (engine-specific) order in which the lattice was walked —
    this is what makes the sequential and wave-parallel plan sets
    signature-identical.
    """
    return sorted(plans_by_key.items(), key=lambda item: (len(item[0]), tuple(sorted(item[0]))))


class FullBackchase:
    """Top-down backchase of a universal plan against the original query.

    Parameters
    ----------
    original:
        The original query ``Q``.
    dependencies:
        The constraint set used for the equivalence checks (typically the
        same set used to build the universal plan).
    timeout:
        Optional wall-clock budget in seconds; on expiry the plans found so
        far are returned with ``timed_out=True`` (this mirrors the timeouts
        in the paper's experiments).
    strategy_label:
        Label recorded on the produced :class:`Plan` objects.
    chase_cache:
        Optional shared (possibly warm) :class:`ChaseCache` built for the
        *same* dependency set; the engine creates a private one when omitted.
        The optimizer service passes a per-constraint-set cache here so chase
        fixpoints survive across requests.
    containment_memo:
        Optional shared :class:`~repro.cq.memo.ContainmentMemo`; when given,
        every containment search of the equivalence checks is memoised by
        canonical query-pair signature, so repeated requests skip the
        homomorphism searches as well as the chases.  Verdicts are
        constraint-independent, so one memo is safely shared across sessions.
    """

    def __init__(
        self,
        original,
        dependencies,
        timeout=None,
        strategy_label="fb",
        chase_cache=None,
        containment_memo=None,
    ):
        self.original = original
        self.dependencies = list(dependencies)
        self.timeout = timeout
        self.strategy_label = strategy_label
        self.chase_cache = chase_cache if chase_cache is not None else ChaseCache(self.dependencies)
        self.containment_memo = containment_memo

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, universal_plan):
        """Enumerate the minimal equivalent subqueries of ``universal_plan``."""
        start = time.perf_counter()
        deadline = start + self.timeout if self.timeout is not None else None
        state = _ExplorationState(deadline)
        cache_hits = self.chase_cache.hits
        cache_misses = self.chase_cache.misses
        chase_queries = self.chase_cache.counters.closure_queries
        chase_candidates = self.chase_cache.counters.candidates_tried
        try:
            self._explore(universal_plan, universal_plan.variable_set, state)
        except BackchaseTimeout:
            state.timed_out = True
        elapsed = time.perf_counter() - start
        plans = dedupe_isomorphic_plans(
            [
                Plan(query, strategy=self.strategy_label)
                for _, query in _ordered_plan_items(state.plans)
            ]
        )
        return BackchaseResult(
            plans=plans,
            subqueries_explored=state.explored,
            equivalence_checks=state.equivalence_checks,
            elapsed=elapsed,
            timed_out=state.timed_out,
            cache_hits=self.chase_cache.hits - cache_hits,
            cache_misses=self.chase_cache.misses - cache_misses,
            closure_queries=(
                state.stats.closure_queries
                + self.chase_cache.counters.closure_queries
                - chase_queries
            ),
            candidates_tried=(
                state.stats.candidates_tried
                + self.chase_cache.counters.candidates_tried
                - chase_candidates
            ),
        )

    # ------------------------------------------------------------------ #
    # exploration
    # ------------------------------------------------------------------ #
    def _explore(self, universal_plan, variables, state):
        """Minimise the subquery induced by ``variables`` (known equivalent)."""
        if deadline_passed(state.deadline):
            raise BackchaseTimeout()
        found_smaller = False
        for var in sorted(variables):
            remaining = variables - {var}
            verdict = self._equivalent_subset(universal_plan, remaining, state)
            if verdict is None:
                continue
            found_smaller = True
            if not state.is_visited(remaining):
                state.mark_visited(remaining)
                self._explore(universal_plan, remaining, state)
        if not found_smaller:
            subquery = universal_plan.restrict_to(variables)
            if subquery is not None:
                state.plans[frozenset(variables)] = subquery

    def _equivalent_subset(self, universal_plan, variables, state):
        """Return the restricted subquery when it is equivalent to the original."""
        key = frozenset(variables)
        cached = state.verdicts.get(key)
        if cached is not None:
            return cached if cached is not _NOT_EQUIVALENT else None
        if deadline_passed(state.deadline):
            raise BackchaseTimeout()
        state.explored += 1
        subquery = universal_plan.restrict_to(key)
        if subquery is None:
            state.verdicts[key] = _NOT_EQUIVALENT
            return None
        state.equivalence_checks += 1
        try:
            equivalent = _check_equivalence(
                self.original,
                universal_plan,
                subquery,
                self.chase_cache,
                state.stats,
                state.deadline,
                memo=self.containment_memo,
            )
        except ChaseTimeout:
            raise BackchaseTimeout()
        if not equivalent:
            state.verdicts[key] = _NOT_EQUIVALENT
            return None
        state.verdicts[key] = subquery
        return subquery


class _ExplorationState:
    """Mutable bookkeeping shared across the recursive exploration."""

    def __init__(self, deadline):
        self.deadline = deadline
        self.visited = set()
        self.verdicts = {}
        self.plans = {}
        self.explored = 0
        self.equivalence_checks = 0
        self.timed_out = False
        self.stats = SearchStats()

    def is_visited(self, variables):
        return frozenset(variables) in self.visited

    def mark_visited(self, variables):
        self.visited.add(frozenset(variables))


_NOT_EQUIVALENT = object()


# ---------------------------------------------------------------------- #
# wave evaluation (shared by every executor)
# ---------------------------------------------------------------------- #
@dataclass
class WaveContext:
    """Picklable description of one backchase run, shared with the workers.

    ``request_id`` identifies the originating service request when waves from
    several concurrently in-flight queries share one executor (the scheduler
    stamps it in :meth:`~repro.service.scheduler.ScheduledPool.start` and
    uses it to demultiplex outcomes back to per-request futures); ``None``
    for plain single-query runs.
    """

    original: object
    universal_plan: object
    dependencies: list
    chase_kwargs: dict = field(default_factory=dict)
    request_id: object = None


@dataclass
class WaveOutcome:
    """Mergeable result of evaluating one chunk of subquery-lattice nodes.

    ``verdicts`` maps each evaluated subset to its restricted subquery when
    it is equivalent to the original, or ``None`` otherwise.  The remaining
    fields carry the chunk's search effort and (for detached executors) the
    worker cache's newly chased entries so the coordinator can merge them
    into the shared :class:`ChaseCache`.
    """

    verdicts: dict = field(default_factory=dict)
    explored: int = 0
    equivalence_checks: int = 0
    stats: SearchStats = field(default_factory=SearchStats)
    counters: ChaseCounters = field(default_factory=ChaseCounters)
    cache_hits: int = 0
    cache_misses: int = 0
    new_entries: dict = field(default_factory=dict)
    timed_out: bool = False
    #: Echo of the context's request id, so schedulers batching chunks from
    #: several requests into one wave can demux outcomes defensively.
    request_id: object = None


def _counters_delta(after, before):
    return ChaseCounters(
        closure_queries=after.closure_queries - before.closure_queries,
        candidates_tried=after.candidates_tried - before.candidates_tried,
        conditions_checked=after.conditions_checked - before.conditions_checked,
        deps_checked=after.deps_checked - before.deps_checked,
        deps_skipped=after.deps_skipped - before.deps_skipped,
        trigger_misses=after.trigger_misses - before.trigger_misses,
    )


def _counters_copy(counters):
    fresh = ChaseCounters()
    fresh.add(counters)
    return fresh


def _evaluate_chunk(context, keys, deadline, cache, export_cache=False, memo=None):
    """Evaluate the equivalence checks for ``keys`` against ``context``.

    Runs in the coordinating process (serial / thread executors, sharing the
    engine's cache) or in a worker process (with a worker-local cache and
    ``export_cache=True``).  Respects ``deadline``; a chunk that runs out of
    budget returns the verdicts computed so far with ``timed_out=True``.
    ``memo`` is the optional shared containment memo (see
    :func:`_check_equivalence`); worker processes keep their own.

    Cache accounting (hit/miss/counter deltas, new entries) is only
    meaningful — and only computed — for detached worker caches: against a
    cache shared by concurrent chunks the before/after deltas would include
    the other chunks' activity.  Shared-cache engines read the accounting
    off the cache itself instead.
    """
    outcome = WaveOutcome(request_id=getattr(context, "request_id", None))
    if export_cache:
        hits_before, misses_before = cache.hits, cache.misses
        counters_before = _counters_copy(cache.counters)
        marker = cache.snapshot()
    for key in keys:
        if deadline_passed(deadline):
            outcome.timed_out = True
            break
        outcome.explored += 1
        subquery = context.universal_plan.restrict_to(key)
        if subquery is None:
            outcome.verdicts[key] = None
            continue
        outcome.equivalence_checks += 1
        try:
            equivalent = _check_equivalence(
                context.original,
                context.universal_plan,
                subquery,
                cache,
                outcome.stats,
                deadline,
                memo=memo,
            )
        except ChaseTimeout:
            outcome.timed_out = True
            break
        outcome.verdicts[key] = subquery if equivalent else None
    if export_cache:
        outcome.cache_hits = cache.hits - hits_before
        outcome.cache_misses = cache.misses - misses_before
        outcome.counters = _counters_delta(cache.counters, counters_before)
        outcome.new_entries = cache.export_since(marker)
    return outcome


def _round_robin(items, buckets):
    """Deterministically split ``items`` into at most ``buckets`` chunks."""
    return [items[start::buckets] for start in range(buckets) if items[start::buckets]]


def size_ordered_chunks(keys, buckets):
    """Split lattice keys into at most ``buckets`` size-balanced chunks.

    A subset's chase cost grows with the size of the restricted subquery, so
    the keys are sorted by estimated chase size (their cardinality) before
    being dealt round-robin — the longest-processing-time-first heuristic
    that keeps skewed waves from serialising behind one overloaded chunk.
    Ties break on the sorted variable names so the split is deterministic.
    Verdict merging is order-insensitive, so the chunking policy never
    changes the produced plan set.
    """
    ordered = sorted(keys, key=lambda key: (-len(key), tuple(sorted(key))))
    return _round_robin(ordered, buckets)


def resolve_worker_count(workers):
    """Resolve the ``workers`` knob: ``None`` means the machine's CPU count."""
    return max(1, workers if workers is not None else (os.cpu_count() or 1))


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #
class SerialExecutor:
    """Evaluates every wave inline; the reference executor."""

    kind = "serial"
    #: Whether chunk outcomes come from a detached (worker-local) cache and
    #: must be merged back into the shared one.
    detached = False
    #: How run_wave splits its keys across workers (recorded in SearchStats).
    chunk_policy = "inline"

    def __init__(self, workers=None):
        self.workers = 1

    def start(self, context, cache, memo=None):
        self._context = context
        self._cache = cache
        self._memo = memo

    def run_wave(self, keys, deadline, seed_entries=None):
        # seed_entries is ignored: the chunk evaluates against the shared
        # cache, which already holds everything the coordinator merged.
        return [_evaluate_chunk(self._context, keys, deadline, self._cache, memo=self._memo)]

    def map(self, fn, payloads):
        return [fn(payload) for payload in payloads]

    def close(self):
        pass


class ThreadExecutor:
    """Evaluates wave chunks on a thread pool sharing one :class:`ChaseCache`.

    CPython's GIL serialises the pure-Python equivalence checks, so this
    executor mainly exercises the wave machinery (and helps when a future
    backend releases the GIL); dictionary reads/writes on the shared cache
    are atomic under the GIL, the cache's own accounting is lock-protected,
    and the per-chunk search counters are collected in chunk-local objects
    and merged afterwards.
    """

    kind = "threads"
    detached = False
    chunk_policy = "size-ordered"

    def __init__(self, workers=None):
        self.workers = resolve_worker_count(workers)
        self._pool = ThreadPoolExecutor(max_workers=self.workers, thread_name_prefix="backchase")

    def start(self, context, cache, memo=None):
        self._context = context
        self._cache = cache
        self._memo = memo

    def run_wave(self, keys, deadline, seed_entries=None):
        # seed_entries is ignored: every chunk shares the coordinator's cache.
        chunks = size_ordered_chunks(keys, self.workers)
        futures = [
            self._pool.submit(
                _evaluate_chunk, self._context, chunk, deadline, self._cache, memo=self._memo
            )
            for chunk in chunks
        ]
        return [future.result() for future in futures]

    def map(self, fn, payloads):
        return list(self._pool.map(fn, payloads))

    def close(self):
        self._pool.shutdown(wait=True)


#: Per-worker-process state installed by :func:`_init_process_worker`.
_PROCESS_STATE = None


def _init_process_worker(context):
    global _PROCESS_STATE
    from repro.cq.memo import ContainmentMemo

    _PROCESS_STATE = (
        context,
        ChaseCache(context.dependencies, **context.chase_kwargs),
        ContainmentMemo(),
    )


def _process_chunk(payload):
    keys, deadline, seed_entries = payload
    context, cache, memo = _PROCESS_STATE
    if seed_entries:
        # Entries other workers chased in earlier waves, relayed by the
        # coordinator.  Merged before the chunk's export marker is taken, so
        # they are not shipped back again.
        cache.merge_exported(seed_entries)
    return _evaluate_chunk(context, keys, deadline, cache, export_cache=True, memo=memo)


class ProcessExecutor:
    """Evaluates wave chunks on a process pool with worker-local caches.

    Each worker process is initialised once per run with the (picklable)
    :class:`WaveContext` and keeps its own :class:`ChaseCache` warm across
    waves; newly chased entries are exported back with every chunk outcome,
    merged into the coordinator's cache, and relayed to the other workers
    with the next wave's payloads (so a subquery is chased at most once per
    wave across the pool, not once per worker).
    """

    kind = "processes"
    detached = True
    chunk_policy = "size-ordered"

    def __init__(self, workers=None):
        self.workers = resolve_worker_count(workers)
        self._pool = None
        self._map_pool = None

    def start(self, context, cache, memo=None):
        # ``memo`` is accepted for protocol uniformity but not shipped to the
        # workers: each keeps a worker-local memo (like its worker-local
        # cache) — verdicts are cheap to recompute and never merged back.
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_process_worker, initargs=(context,)
        )

    def run_wave(self, keys, deadline, seed_entries=None):
        chunks = size_ordered_chunks(keys, self.workers)
        futures = [
            self._pool.submit(_process_chunk, (chunk, deadline, seed_entries))
            for chunk in chunks
        ]
        return [future.result() for future in futures]

    def map(self, fn, payloads):
        if self._map_pool is None:
            self._map_pool = ProcessPoolExecutor(max_workers=self.workers)
        return list(self._map_pool.map(fn, payloads))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._map_pool is not None:
            self._map_pool.shutdown(wait=True)
            self._map_pool = None


_EXECUTOR_CLASSES = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def make_executor(executor="serial", workers=None):
    """Build an executor by kind (``"serial"``, ``"threads"``, ``"processes"``)."""
    try:
        executor_class = _EXECUTOR_CLASSES[executor]
    except KeyError:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    return executor_class(workers=workers)


# ---------------------------------------------------------------------- #
# the wave engine
# ---------------------------------------------------------------------- #
class ParallelBackchase:
    """Frontier-based, level-wise backchase over the subquery lattice.

    Explores the same lattice as :class:`FullBackchase`, but one *wave* at a
    time: the untried ``variables - {var}`` subsets of the whole frontier are
    evaluated concurrently by the configured executor, the verdict maps and
    work counters are merged back into shared state, and the nodes whose
    children are all inequivalent are emitted as minimal plans.  Produces
    plan sets signature-identical to the sequential engine (both sort their
    plans canonically before the isomorphism dedupe).

    Parameters
    ----------
    original / dependencies / timeout / strategy_label:
        As for :class:`FullBackchase`.
    executor:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    workers:
        Worker count for the pooled executors (defaults to the CPU count).
    pool:
        Optional externally managed executor-protocol object (``start`` /
        ``run_wave`` / ``map`` / ``close`` plus ``kind`` / ``workers`` /
        ``detached``).  When given, it is used instead of building one from
        ``executor`` / ``workers`` and is **not** closed by :meth:`run` —
        the optimizer service passes its long-lived, cross-query batching
        pool here.
    chase_cache:
        Optional shared (possibly warm) :class:`ChaseCache` built for the
        same dependency set, as for :class:`FullBackchase`.
    containment_memo:
        Optional shared :class:`~repro.cq.memo.ContainmentMemo`, as for
        :class:`FullBackchase`; handed to the pool alongside the cache so
        every chunk's containment searches are memoised.
    """

    def __init__(
        self,
        original,
        dependencies,
        timeout=None,
        strategy_label="fb",
        executor="serial",
        workers=None,
        pool=None,
        chase_cache=None,
        containment_memo=None,
    ):
        if pool is None and executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
        self.original = original
        self.dependencies = list(dependencies)
        self.timeout = timeout
        self.strategy_label = strategy_label
        self.executor = executor
        self.workers = workers
        self.pool = pool
        self.chase_cache = chase_cache if chase_cache is not None else ChaseCache(self.dependencies)
        self.containment_memo = containment_memo

    def run(self, universal_plan):
        """Enumerate the minimal equivalent subqueries of ``universal_plan``."""
        start = time.perf_counter()
        deadline = start + self.timeout if self.timeout is not None else None
        hits_before = self.chase_cache.hits
        misses_before = self.chase_cache.misses
        chase_queries = self.chase_cache.counters.closure_queries
        chase_candidates = self.chase_cache.counters.candidates_tried

        verdicts = {}
        plans = {}
        explored = 0
        equivalence_checks = 0
        stats = SearchStats()
        timed_out = False
        waves = 0

        top = frozenset(universal_plan.variable_set)
        visited = {top}
        frontier = [top]
        owns_pool = self.pool is None
        pool = make_executor(self.executor, self.workers) if owns_pool else self.pool
        pool.start(
            WaveContext(self.original, universal_plan, self.dependencies),
            self.chase_cache,
            memo=self.containment_memo,
        )
        stats.chunk_policy = getattr(pool, "chunk_policy", pool.kind)
        # Cache entries already relayed to the workers (detached pools only):
        # each wave ships the delta merged since the previous wave, so every
        # worker benefits from every other worker's chases.
        relayed = self.chase_cache.snapshot()
        try:
            while frontier and not timed_out:
                children = {node: [node - {var} for var in sorted(node)] for node in frontier}
                pending = []
                queued = set()
                for node in frontier:
                    for child in children[node]:
                        if child in verdicts or child in queued:
                            continue
                        queued.add(child)
                        pending.append(child)
                pending.sort(key=lambda key: tuple(sorted(key)))
                if pending:
                    if deadline_passed(deadline):
                        timed_out = True
                        break
                    waves += 1
                    seed_entries = None
                    if pool.detached:
                        seed_entries = self.chase_cache.export_since(relayed)
                    for outcome in pool.run_wave(pending, deadline, seed_entries):
                        for key, subquery in outcome.verdicts.items():
                            verdicts[key] = subquery if subquery is not None else _NOT_EQUIVALENT
                        explored += outcome.explored
                        equivalence_checks += outcome.equivalence_checks
                        stats.add(outcome.stats)
                        if pool.detached:
                            self.chase_cache.merge_exported(
                                outcome.new_entries,
                                hits=outcome.cache_hits,
                                misses=outcome.cache_misses,
                                counters=outcome.counters,
                            )
                        timed_out = timed_out or outcome.timed_out
                    if pool.detached:
                        relayed = self.chase_cache.snapshot()

                next_frontier = []
                for node in frontier:
                    kids = children[node]
                    if any(kid not in verdicts for kid in kids):
                        # The wave timed out before this node's children were
                        # all evaluated; its minimality is unknown, so it is
                        # neither expanded nor emitted (the serial engine
                        # abandons such nodes the same way).
                        continue
                    equivalent_kids = [kid for kid in kids if verdicts[kid] is not _NOT_EQUIVALENT]
                    if equivalent_kids:
                        for kid in equivalent_kids:
                            if kid not in visited:
                                visited.add(kid)
                                next_frontier.append(kid)
                    else:
                        subquery = verdicts.get(node)
                        if subquery is None or subquery is _NOT_EQUIVALENT:
                            # Only the lattice top has no verdict of its own.
                            subquery = universal_plan.restrict_to(node)
                        if subquery is not None:
                            plans[node] = subquery
                frontier = sorted(next_frontier, key=lambda key: tuple(sorted(key)))
        finally:
            if owns_pool:
                pool.close()

        elapsed = time.perf_counter() - start
        plan_objects = dedupe_isomorphic_plans(
            [
                Plan(query, strategy=self.strategy_label)
                for _, query in _ordered_plan_items(plans)
            ]
        )
        return BackchaseResult(
            plans=plan_objects,
            subqueries_explored=explored,
            equivalence_checks=equivalence_checks,
            elapsed=elapsed,
            timed_out=timed_out,
            cache_hits=self.chase_cache.hits - hits_before,
            cache_misses=self.chase_cache.misses - misses_before,
            closure_queries=(
                stats.closure_queries
                + self.chase_cache.counters.closure_queries
                - chase_queries
            ),
            candidates_tried=(
                stats.candidates_tried
                + self.chase_cache.counters.candidates_tried
                - chase_candidates
            ),
            executor=pool.kind,
            workers=pool.workers,
            waves=waves,
            chunk_policy=stats.chunk_policy,
        )


__all__ = [
    "BackchaseResult",
    "EXECUTORS",
    "FullBackchase",
    "ParallelBackchase",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WaveContext",
    "WaveOutcome",
    "deadline_passed",
    "make_executor",
    "resolve_worker_count",
    "size_ordered_chunks",
]
