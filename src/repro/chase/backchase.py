"""The full backchase (FB): minimal equivalent subqueries of the universal plan.

The backchase is implemented top-down, exactly as described in Section 4 of
the paper: starting from the universal plan, it repeatedly tries to remove
one binding at a time and recursively minimises every equivalent subquery it
reaches.  A subquery with no equivalent strict subquery is minimal and is
emitted as a plan.

Equivalence of a candidate subquery with the original query is checked with
the chase-based containment test of :mod:`repro.chase.implication`; one of
the two containments always holds for subqueries of the universal plan (the
original query maps into them), so only the other direction is chased.  The
chase results are memoised across candidates (:class:`ChaseCache`), and the
set of explored binding subsets is memoised so each subquery is inspected at
most once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chase.implication import ChaseCache, _has_containment_mapping
from repro.chase.plans import Plan, dedupe_isomorphic_plans
from repro.cq.homomorphism import SearchStats


@dataclass
class BackchaseResult:
    """Outcome of a backchase run.

    Attributes
    ----------
    plans:
        The minimal equivalent subqueries found, as :class:`Plan` objects.
    subqueries_explored:
        Number of distinct binding subsets inspected.
    equivalence_checks:
        Number of chase-based equivalence tests performed.
    elapsed:
        Wall-clock seconds spent in the backchase.
    timed_out:
        ``True`` when the exploration hit the timeout and the plan list may
        be incomplete.
    cache_hits / cache_misses:
        :class:`~repro.chase.implication.ChaseCache` accounting for the run.
    closure_queries / candidates_tried:
        Search effort summed over the containment-mapping searches of this
        run plus every cache-miss chase performed for it.
    """

    plans: list = field(default_factory=list)
    subqueries_explored: int = 0
    equivalence_checks: int = 0
    elapsed: float = 0.0
    timed_out: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    closure_queries: int = 0
    candidates_tried: int = 0

    @property
    def plan_count(self):
        return len(self.plans)

    def time_per_plan(self):
        """The paper's normalised measure: optimization time / generated plans."""
        if not self.plans:
            return float("inf")
        return self.elapsed / len(self.plans)


class BackchaseTimeout(Exception):
    """Internal signal used to unwind the exploration when the timeout hits."""


class FullBackchase:
    """Top-down backchase of a universal plan against the original query.

    Parameters
    ----------
    original:
        The original query ``Q``.
    dependencies:
        The constraint set used for the equivalence checks (typically the
        same set used to build the universal plan).
    timeout:
        Optional wall-clock budget in seconds; on expiry the plans found so
        far are returned with ``timed_out=True`` (this mirrors the timeouts
        in the paper's experiments).
    strategy_label:
        Label recorded on the produced :class:`Plan` objects.
    """

    def __init__(self, original, dependencies, timeout=None, strategy_label="fb"):
        self.original = original
        self.dependencies = list(dependencies)
        self.timeout = timeout
        self.strategy_label = strategy_label
        self.chase_cache = ChaseCache(self.dependencies)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, universal_plan):
        """Enumerate the minimal equivalent subqueries of ``universal_plan``."""
        start = time.perf_counter()
        deadline = start + self.timeout if self.timeout is not None else None
        state = _ExplorationState(deadline)
        cache_hits = self.chase_cache.hits
        cache_misses = self.chase_cache.misses
        chase_queries = self.chase_cache.counters.closure_queries
        chase_candidates = self.chase_cache.counters.candidates_tried
        try:
            self._explore(universal_plan, universal_plan.variable_set, state)
        except BackchaseTimeout:
            state.timed_out = True
        elapsed = time.perf_counter() - start
        plans = dedupe_isomorphic_plans(
            [Plan(query, strategy=self.strategy_label) for query in state.plans.values()]
        )
        return BackchaseResult(
            plans=plans,
            subqueries_explored=state.explored,
            equivalence_checks=state.equivalence_checks,
            elapsed=elapsed,
            timed_out=state.timed_out,
            cache_hits=self.chase_cache.hits - cache_hits,
            cache_misses=self.chase_cache.misses - cache_misses,
            closure_queries=(
                state.stats.closure_queries
                + self.chase_cache.counters.closure_queries
                - chase_queries
            ),
            candidates_tried=(
                state.stats.candidates_tried
                + self.chase_cache.counters.candidates_tried
                - chase_candidates
            ),
        )

    # ------------------------------------------------------------------ #
    # exploration
    # ------------------------------------------------------------------ #
    def _explore(self, universal_plan, variables, state):
        """Minimise the subquery induced by ``variables`` (known equivalent)."""
        if deadline_passed(state.deadline):
            raise BackchaseTimeout()
        found_smaller = False
        for var in sorted(variables):
            remaining = variables - {var}
            verdict = self._equivalent_subset(universal_plan, remaining, state)
            if verdict is None:
                continue
            found_smaller = True
            if not state.is_visited(remaining):
                state.mark_visited(remaining)
                self._explore(universal_plan, remaining, state)
        if not found_smaller:
            subquery = universal_plan.restrict_to(variables)
            if subquery is not None:
                state.plans[frozenset(variables)] = subquery

    def _equivalent_subset(self, universal_plan, variables, state):
        """Return the restricted subquery when it is equivalent to the original."""
        key = frozenset(variables)
        cached = state.verdicts.get(key)
        if cached is not None:
            return cached if cached is not _NOT_EQUIVALENT else None
        if deadline_passed(state.deadline):
            raise BackchaseTimeout()
        state.explored += 1
        subquery = universal_plan.restrict_to(variables)
        if subquery is None:
            state.verdicts[key] = _NOT_EQUIVALENT
            return None
        state.equivalence_checks += 1
        # Direction 1: the subquery is contained in the original under the
        # constraints (chase the subquery, map the original into it).
        chased = self.chase_cache.chase(subquery)
        if not _has_containment_mapping(self.original, chased, stats=state.stats):
            state.verdicts[key] = _NOT_EQUIVALENT
            return None
        # Direction 2: the original is contained in the subquery.  For
        # subqueries of the universal plan this always holds (the universal
        # plan is the chased original and the subquery maps into it by
        # construction of the restriction), so it is checked cheaply against
        # the universal plan itself.
        if not _has_containment_mapping(subquery, universal_plan, stats=state.stats):
            state.verdicts[key] = _NOT_EQUIVALENT
            return None
        state.verdicts[key] = subquery
        return subquery


class _ExplorationState:
    """Mutable bookkeeping shared across the recursive exploration."""

    def __init__(self, deadline):
        self.deadline = deadline
        self.visited = set()
        self.verdicts = {}
        self.plans = {}
        self.explored = 0
        self.equivalence_checks = 0
        self.timed_out = False
        self.stats = SearchStats()

    def is_visited(self, variables):
        return frozenset(variables) in self.visited

    def mark_visited(self, variables):
        self.visited.add(frozenset(variables))


_NOT_EQUIVALENT = object()


def deadline_passed(deadline):
    """Return ``True`` when the optional deadline has expired."""
    return deadline is not None and time.perf_counter() > deadline


__all__ = ["BackchaseResult", "FullBackchase", "deadline_passed"]
