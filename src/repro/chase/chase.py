"""The chase: rewriting a query with embedded dependencies.

Given a query ``Q`` and a set of dependencies ``D``, the chase repeatedly
finds a homomorphism from the universal part of a dependency into ``Q`` that
cannot be extended to its existential part, and extends ``Q`` with the
missing bindings and conditions (for TGDs) or the missing equalities (for
EGDs).  When no dependency applies any more, the result is the *universal
plan*: a query equivalent to ``Q`` under ``D`` that explicitly mentions every
physical structure and semantically related collection relevant to ``Q``.

The implementation follows the feasibility techniques of Section 3.1 of the
paper:

* equality reasoning via congruence closure (:mod:`repro.cq.congruence`);
* incremental pruning of candidate variable mappings
  (:mod:`repro.cq.homomorphism`);
* the satisfaction check before each step (a chase step only fires when the
  existential part cannot already be matched), which both guarantees
  termination on the paper's workloads and avoids redundant rechasing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ChaseError
from repro.cq.homomorphism import find_homomorphism, find_homomorphisms
from repro.cq.query import PCQuery, fresh_name
from repro.lang.ast import Binding, Var, substitute


@dataclass
class ChaseStep:
    """Record of one applied chase step (for tracing and reports)."""

    dependency: str
    added_variables: tuple
    added_conditions: tuple


@dataclass
class ChaseResult:
    """The outcome of chasing a query with a set of dependencies.

    Attributes
    ----------
    query:
        The chased query (the universal plan when chasing with the full set).
    steps:
        The chase steps that were applied, in order.
    rounds:
        Number of passes over the dependency set.
    elapsed:
        Wall-clock time spent, in seconds.
    """

    query: PCQuery
    steps: list = field(default_factory=list)
    rounds: int = 0
    elapsed: float = 0.0

    @property
    def applied(self):
        """Number of chase steps applied."""
        return len(self.steps)


def applicable_homomorphisms(query, dependency, closure=None):
    """Yield homomorphisms under which ``dependency`` is *violated* by ``query``.

    A homomorphism from the universal part into the query is violated when it
    cannot be extended to the existential part (TGD) or when some conclusion
    equality does not follow from the query's where clause (EGD).
    """
    closure = closure if closure is not None else query.congruence()
    for mapping in find_homomorphisms(
        dependency.universal, dependency.premise, query, target_closure=closure
    ):
        if dependency.is_egd:
            violated = [
                condition
                for condition in dependency.conclusion
                if not closure.equal(
                    substitute(condition.left, mapping), substitute(condition.right, mapping)
                )
            ]
            if violated:
                yield mapping, violated
        else:
            extension = find_homomorphism(
                dependency.existential,
                dependency.conclusion,
                query,
                target_closure=closure,
                initial=mapping,
            )
            if extension is None:
                yield mapping, None


def chase_step(query, dependency, closure=None):
    """Apply one chase step of ``dependency`` to ``query`` if it is violated.

    Returns ``(new_query, step)`` when a step was applied, or ``None`` when
    the dependency is satisfied (no violated homomorphism exists).
    """
    closure = closure if closure is not None else query.congruence()
    for mapping, violated in applicable_homomorphisms(query, dependency, closure):
        return _apply(query, dependency, mapping, violated)
    return None


def _apply(query, dependency, mapping, violated_conclusions):
    """Extend ``query`` according to one violated homomorphism."""
    if dependency.is_egd:
        new_conditions = tuple(condition.substitute(mapping) for condition in violated_conclusions)
        step = ChaseStep(dependency.name, (), new_conditions)
        return query.add(conditions=new_conditions), step

    taken = set(query.variables) | set(mapping)
    extended = dict(mapping)
    new_bindings = []
    for binding in dependency.existential:
        fresh = fresh_name(binding.var, taken)
        taken.add(fresh)
        extended[binding.var] = Var(fresh)
        new_bindings.append(Binding(fresh, substitute(binding.range, extended)))
    new_conditions = tuple(condition.substitute(extended) for condition in dependency.conclusion)
    step = ChaseStep(
        dependency.name,
        tuple(binding.var for binding in new_bindings),
        new_conditions,
    )
    return query.add(bindings=new_bindings, conditions=new_conditions), step


def collapse_duplicate_bindings(query):
    """Merge bindings that denote the same element of the same collection.

    The paper's prototype compiles queries into a congruence-closure based
    canonical database in which two loop variables that are provably equal
    and range over provably equal collections are a single node.  The chase
    implemented here always introduces fresh variables, so after the fixpoint
    this pass merges every later binding that duplicates an earlier one
    (equal variable and equal range under the where clause), rewriting the
    remaining ranges, conditions and outputs accordingly.  Without this merge
    the backchase would enumerate spurious isomorphic variants of the same
    minimal plan.
    """
    closure = query.congruence()
    mapping = {}
    kept = []
    for binding in query.bindings:
        range_path = substitute(binding.range, mapping)
        duplicate = None
        for existing in kept:
            if closure.equal(Var(existing.var), Var(binding.var)) and closure.equal(
                existing.range, range_path
            ):
                duplicate = existing
                break
        if duplicate is None:
            kept.append(Binding(binding.var, range_path))
        else:
            mapping[binding.var] = Var(duplicate.var)
    if not mapping:
        return query
    conditions = []
    seen = set()
    for condition in query.conditions:
        rewritten = condition.substitute(mapping).normalized()
        if rewritten.left == rewritten.right or rewritten in seen:
            continue
        seen.add(rewritten)
        conditions.append(rewritten)
    output = tuple((label, substitute(path, mapping)) for label, path in query.output)
    return PCQuery(output, tuple(kept), tuple(conditions))


def chase(query, dependencies, max_rounds=100, max_size=500):
    """Chase ``query`` with ``dependencies`` to a fixpoint.

    Parameters
    ----------
    query:
        The query to chase.
    dependencies:
        Iterable of :class:`~repro.schema.constraints.Dependency`.
    max_rounds:
        Safety bound on the number of passes over the dependency set; the
        chase terminates on the paper's constraint classes, but arbitrary
        dependency sets may diverge.
    max_size:
        Safety bound on the number of bindings of the chased query.

    Returns
    -------
    ChaseResult

    Raises
    ------
    ChaseError
        If the fixpoint is not reached within the safety bounds.
    """
    start = time.perf_counter()
    dependencies = list(dependencies)
    current = query
    steps = []
    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise ChaseError(f"chase did not terminate within {max_rounds} rounds")
        changed = False
        for dependency in dependencies:
            # Re-apply the same dependency until it is satisfied before moving
            # on; each application may enable new homomorphisms.
            while True:
                outcome = chase_step(current, dependency)
                if outcome is None:
                    break
                current, step = outcome
                steps.append(step)
                changed = True
                if current.size() > max_size:
                    raise ChaseError(
                        f"chased query exceeded {max_size} bindings; "
                        "the dependency set is probably not terminating"
                    )
        if not changed:
            break
    current = collapse_duplicate_bindings(current)
    return ChaseResult(current, steps, rounds, time.perf_counter() - start)


def universal_plan(query, dependencies, **kwargs):
    """Convenience wrapper returning just the chased query (the universal plan)."""
    return chase(query, dependencies, **kwargs).query


__all__ = [
    "ChaseResult",
    "ChaseStep",
    "applicable_homomorphisms",
    "chase",
    "chase_step",
    "collapse_duplicate_bindings",
    "universal_plan",
]
