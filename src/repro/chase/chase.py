"""The chase: rewriting a query with embedded dependencies.

Given a query ``Q`` and a set of dependencies ``D``, the chase repeatedly
finds a homomorphism from the universal part of a dependency into ``Q`` that
cannot be extended to its existential part, and extends ``Q`` with the
missing bindings and conditions (for TGDs) or the missing equalities (for
EGDs).  When no dependency applies any more, the result is the *universal
plan*: a query equivalent to ``Q`` under ``D`` that explicitly mentions every
physical structure and semantically related collection relevant to ``Q``.

The implementation follows the feasibility techniques of Section 3.1 of the
paper:

* equality reasoning via congruence closure (:mod:`repro.cq.congruence`);
* incremental pruning of candidate variable mappings with indexed candidate
  lookup (:mod:`repro.cq.homomorphism`);
* the satisfaction check before each step (a chase step only fires when the
  existential part cannot already be matched), which both guarantees
  termination on the paper's workloads and avoids redundant rechasing.

The default fixpoint engine is *incremental* (semi-naive): one congruence
closure and one candidate index evolve across all chase steps instead of
being rebuilt from scratch per step, and a dependency **trigger index** maps
range-head collection names to the dependencies whose universal part could
newly match when those collections are touched.  After a step fires, only
the dependencies whose triggers intersect the step's touched heads (the
heads of the added bindings and of every congruence class the step's merges
disturbed) are re-checked; everything else is skipped.  Because trigger
propagation is head-based and therefore conservative-but-approximate, the
engine finishes with one full verification pass over all dependencies — any
fire during verification is counted in ``ChaseCounters.trigger_misses`` —
so the fixpoint is always exactly the one the restart engine computes.  Pass
``incremental=False`` (optionally with ``use_index=False``) to run the
original restart-per-step engine, kept for the ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ChaseError
from repro.cq.homomorphism import (
    BindingIndex,
    SearchStats,
    find_homomorphism,
    find_homomorphisms,
)
from repro.cq.query import PCQuery, fresh_name
from repro.lang.ast import Binding, Var, path_variables, schema_names, substitute


@dataclass
class ChaseStep:
    """Record of one applied chase step (for tracing and reports)."""

    dependency: str
    added_variables: tuple
    added_conditions: tuple


@dataclass
class ChaseCounters:
    """Work counters for one chase run (benchmarks read these).

    Attributes
    ----------
    closure_queries:
        Congruence-closure queries issued (equality tests and class lookups).
    candidates_tried:
        Target bindings tried as images during homomorphism search.
    conditions_checked:
        Source conditions verified against the closure.
    deps_checked:
        ``chase_step`` invocations (dependency satisfaction checks).
    deps_skipped:
        Dependency checks skipped by the semi-naive trigger index.
    trigger_misses:
        Steps that fired only during the final verification pass, i.e. fires
        the trigger index failed to predict (0 on all known workloads).
    """

    closure_queries: int = 0
    candidates_tried: int = 0
    conditions_checked: int = 0
    deps_checked: int = 0
    deps_skipped: int = 0
    trigger_misses: int = 0

    def add(self, other):
        """Accumulate another counter set (used by :class:`ChaseCache`)."""
        self.closure_queries += other.closure_queries
        self.candidates_tried += other.candidates_tried
        self.conditions_checked += other.conditions_checked
        self.deps_checked += other.deps_checked
        self.deps_skipped += other.deps_skipped
        self.trigger_misses += other.trigger_misses


@dataclass
class ChaseResult:
    """The outcome of chasing a query with a set of dependencies.

    Attributes
    ----------
    query:
        The chased query (the universal plan when chasing with the full set).
    steps:
        The chase steps that were applied, in order.
    rounds:
        Number of passes over the dependency set.
    elapsed:
        Wall-clock time spent, in seconds.
    counters:
        :class:`ChaseCounters` with the work the run performed.
    timed_out:
        ``True`` when an optional deadline expired before the fixpoint was
        reached; ``query`` is then the partially chased query (well-formed,
        but not a universal plan).
    """

    query: PCQuery
    steps: list = field(default_factory=list)
    rounds: int = 0
    elapsed: float = 0.0
    counters: ChaseCounters = field(default_factory=ChaseCounters)
    timed_out: bool = False

    @property
    def applied(self):
        """Number of chase steps applied."""
        return len(self.steps)


def applicable_homomorphisms(query, dependency, closure=None, index=None, stats=None, use_index=True):
    """Yield homomorphisms under which ``dependency`` is *violated* by ``query``.

    A homomorphism from the universal part into the query is violated when it
    cannot be extended to the existential part (TGD) or when some conclusion
    equality does not follow from the query's where clause (EGD).
    """
    closure = closure if closure is not None else query.congruence()
    for mapping in find_homomorphisms(
        dependency.universal,
        dependency.premise,
        query,
        target_closure=closure,
        target_index=index,
        stats=stats,
        use_index=use_index,
    ):
        if dependency.is_egd:
            violated = []
            for condition in dependency.conclusion:
                if stats is not None:
                    stats.closure_queries += 1
                    stats.conditions_checked += 1
                if not closure.equal(
                    substitute(condition.left, mapping), substitute(condition.right, mapping)
                ):
                    violated.append(condition)
            if violated:
                yield mapping, violated
        else:
            extension = find_homomorphism(
                dependency.existential,
                dependency.conclusion,
                query,
                target_closure=closure,
                initial=mapping,
                target_index=index,
                stats=stats,
                use_index=use_index,
            )
            if extension is None:
                yield mapping, None


def chase_step(query, dependency, closure=None, index=None, stats=None, use_index=True):
    """Apply one chase step of ``dependency`` to ``query`` if it is violated.

    Returns ``(new_query, step)`` when a step was applied, or ``None`` when
    the dependency is satisfied (no violated homomorphism exists).
    """
    closure = closure if closure is not None else query.congruence()
    for mapping, violated in applicable_homomorphisms(
        query, dependency, closure, index=index, stats=stats, use_index=use_index
    ):
        return _apply(query, dependency, mapping, violated)
    return None


def _apply(query, dependency, mapping, violated_conclusions):
    """Extend ``query`` according to one violated homomorphism."""
    if dependency.is_egd:
        new_conditions = tuple(condition.substitute(mapping) for condition in violated_conclusions)
        step = ChaseStep(dependency.name, (), new_conditions)
        return query.add(conditions=new_conditions), step

    taken = set(query.variables) | set(mapping)
    extended = dict(mapping)
    new_bindings = []
    for binding in dependency.existential:
        fresh = fresh_name(binding.var, taken)
        taken.add(fresh)
        extended[binding.var] = Var(fresh)
        new_bindings.append(Binding(fresh, substitute(binding.range, extended)))
    new_conditions = tuple(condition.substitute(extended) for condition in dependency.conclusion)
    step = ChaseStep(
        dependency.name,
        tuple(binding.var for binding in new_bindings),
        new_conditions,
    )
    return query.add(bindings=new_bindings, conditions=new_conditions), step


def collapse_duplicate_bindings(query, closure=None, stats=None):
    """Merge bindings that denote the same element of the same collection.

    The paper's prototype compiles queries into a congruence-closure based
    canonical database in which two loop variables that are provably equal
    and range over provably equal collections are a single node.  The chase
    implemented here always introduces fresh variables, so after the fixpoint
    this pass merges every later binding that duplicates an earlier one
    (equal variable and equal range under the where clause), rewriting the
    remaining ranges, conditions and outputs accordingly.  Without this merge
    the backchase would enumerate spurious isomorphic variants of the same
    minimal plan.

    Duplicate detection buckets the kept bindings by the congruence roots of
    ``(variable, range)`` — a dictionary probe per binding instead of the
    former pairwise closure-query loop.  Interning a rewritten range can
    merge classes and stale the bucket keys, so the buckets are re-keyed
    whenever the closure generation moves.
    """
    closure = closure if closure is not None else query.congruence()
    mapping = {}
    kept = []
    kept_by_key = {}
    generation = closure.generation
    for binding in query.bindings:
        range_path = substitute(binding.range, mapping)
        if stats is not None:
            stats.closure_queries += 2
        var_root = closure.root_of(Var(binding.var))
        range_root = closure.root_of(range_path)
        if closure.generation != generation:
            kept_by_key = {}
            for existing in kept:
                key = (closure.root_of(Var(existing.var)), closure.root_of(existing.range))
                kept_by_key.setdefault(key, existing)
            generation = closure.generation
            var_root = closure.root_of(Var(binding.var))
            range_root = closure.root_of(range_path)
        duplicate = kept_by_key.get((var_root, range_root))
        if duplicate is None:
            new_binding = Binding(binding.var, range_path)
            kept.append(new_binding)
            kept_by_key.setdefault((var_root, range_root), new_binding)
        else:
            mapping[binding.var] = Var(duplicate.var)
    if not mapping:
        return query
    conditions = []
    seen = set()
    for condition in query.conditions:
        rewritten = condition.substitute(mapping).normalized()
        if rewritten.left == rewritten.right or rewritten in seen:
            continue
        seen.add(rewritten)
        conditions.append(rewritten)
    output = tuple((label, substitute(path, mapping)) for label, path in query.output)
    return PCQuery(output, tuple(kept), tuple(conditions))


def deadline_passed(deadline):
    """Return ``True`` when the optional deadline has expired.

    Deadlines are absolute :func:`time.perf_counter` values.  On every major
    platform ``perf_counter`` reads a system-wide monotonic clock, so a
    deadline computed in one process remains meaningful in a worker process
    on the same machine (the parallel backchase relies on this).
    """
    return deadline is not None and time.perf_counter() > deadline


def chase(query, dependencies, max_rounds=100, max_size=500, incremental=True, use_index=True, deadline=None):
    """Chase ``query`` with ``dependencies`` to a fixpoint.

    Parameters
    ----------
    query:
        The query to chase.
    dependencies:
        Iterable of :class:`~repro.schema.constraints.Dependency`.
    max_rounds:
        Safety bound on the number of passes over the dependency set; the
        chase terminates on the paper's constraint classes, but arbitrary
        dependency sets may diverge.
    max_size:
        Safety bound on the number of bindings of the chased query.
    incremental:
        When ``True`` (the default), run the semi-naive engine: one evolving
        closure plus a trigger index so only affected dependencies are
        re-checked after a step.  When ``False``, restart the scan from the
        query's shared closure on every step (the original engine, kept for
        the ablation benchmark).
    use_index:
        Passed through to the homomorphism search; ``False`` restores the
        per-candidate scan of all target bindings.
    deadline:
        Optional absolute :func:`time.perf_counter` deadline.  On expiry the
        fixpoint loop stops and the partially chased query is returned with
        ``timed_out=True`` (duplicate bindings are still collapsed so the
        result is well-formed).

    Returns
    -------
    ChaseResult

    Raises
    ------
    ChaseError
        If the fixpoint is not reached within the safety bounds.
    """
    start = time.perf_counter()
    dependencies = list(dependencies)
    counters = ChaseCounters()
    stats = SearchStats()
    if incremental:
        final, steps, rounds, timed_out = _chase_incremental(
            query, dependencies, max_rounds, max_size, stats, counters, use_index, deadline
        )
    else:
        final, steps, rounds, timed_out = _chase_restart(
            query, dependencies, max_rounds, max_size, stats, counters, use_index, deadline
        )
    counters.closure_queries = stats.closure_queries
    counters.candidates_tried = stats.candidates_tried
    counters.conditions_checked = stats.conditions_checked
    return ChaseResult(final, steps, rounds, time.perf_counter() - start, counters, timed_out)


def _chase_restart(query, dependencies, max_rounds, max_size, stats, counters, use_index, deadline=None):
    """The original fixpoint loop: full rescan of every dependency per round."""
    current = query
    steps = []
    rounds = 0
    timed_out = False
    while not timed_out:
        rounds += 1
        if rounds > max_rounds:
            raise ChaseError(f"chase did not terminate within {max_rounds} rounds")
        changed = False
        for dependency in dependencies:
            # Re-apply the same dependency until it is satisfied before moving
            # on; each application may enable new homomorphisms.
            while True:
                if deadline_passed(deadline):
                    timed_out = True
                    break
                counters.deps_checked += 1
                outcome = chase_step(current, dependency, stats=stats, use_index=use_index)
                if outcome is None:
                    break
                current, step = outcome
                steps.append(step)
                changed = True
                if current.size() > max_size:
                    raise ChaseError(
                        f"chased query exceeded {max_size} bindings; "
                        "the dependency set is probably not terminating"
                    )
            if timed_out:
                break
        if not changed:
            break
    current = collapse_duplicate_bindings(current, stats=stats)
    return current, steps, rounds, timed_out


def _chase_incremental(query, dependencies, max_rounds, max_size, stats, counters, use_index, deadline=None):
    """Semi-naive fixpoint: evolving closure + trigger-indexed dirty set."""
    current = query
    closure = current.private_congruence()
    index = BindingIndex(current.bindings, closure)

    # Head map: variable -> frozenset of collection names its range reaches
    # (None = unknown head, treated as matching every trigger).
    var_heads = {}
    for binding in current.bindings:
        var_heads[binding.var] = _path_heads(binding.range, var_heads)

    triggers = [_dependency_triggers(dependency) for dependency in dependencies]
    dirty = set(range(len(dependencies)))
    verify_baseline = set()
    verifying = False
    # Step count at each dependency's most recent satisfaction check; a
    # dependency checked after the last applied step is provably still
    # satisfied (the chase only ever adds facts), so the final verification
    # pass can restrict itself to the others.
    last_checked = [-1] * len(dependencies)
    steps = []
    rounds = 0
    timed_out = False

    while not timed_out:
        rounds += 1
        if rounds > max_rounds:
            raise ChaseError(f"chase did not terminate within {max_rounds} rounds")
        changed = False
        for position, dependency in enumerate(dependencies):
            if timed_out:
                break
            if position not in dirty:
                counters.deps_skipped += 1
                continue
            dirty.discard(position)
            artificial = verifying and position in verify_baseline
            verify_baseline.discard(position)
            fired = False
            # Re-apply the same dependency until it is satisfied before moving
            # on; each application may enable new homomorphisms.
            while True:
                if deadline_passed(deadline):
                    timed_out = True
                    break
                counters.deps_checked += 1
                outcome = chase_step(
                    current, dependency, closure=closure, index=index, stats=stats, use_index=use_index
                )
                if outcome is None:
                    break
                new_query, step = outcome
                fired = True
                changed = True
                mark = closure.union_count
                added = new_query.bindings[len(current.bindings):]
                for added_binding in added:
                    closure.add_term(Var(added_binding.var))
                    closure.add_term(added_binding.range)
                    index.add_binding(added_binding, stats=stats)
                    var_heads[added_binding.var] = _path_heads(added_binding.range, var_heads)
                for condition in step.added_conditions:
                    closure.merge(condition.left, condition.right)
                current = new_query
                steps.append(step)
                if current.size() > max_size:
                    raise ChaseError(
                        f"chased query exceeded {max_size} bindings; "
                        "the dependency set is probably not terminating"
                    )
                touched, wildcard = _touched_heads(
                    added, step.added_conditions, var_heads, closure, mark
                )
                for other, (keys, dep_wildcard) in enumerate(triggers):
                    if wildcard or dep_wildcard or (keys & touched):
                        dirty.add(other)
                        verify_baseline.discard(other)
            if fired and artificial:
                counters.trigger_misses += 1
            # The inner loop left this dependency satisfied; propagation from
            # its own steps may have re-marked it, which would be redundant.
            dirty.discard(position)
            last_checked[position] = len(steps)
        if changed:
            verifying = False
            continue
        if verifying:
            break
        # Quiescent on trigger-driven dirt.  Verify with one pass over the
        # dependencies not checked since the last applied step (head-based
        # triggers are conservative but approximate); when every dependency
        # was, the fixpoint is already proven and no extra pass is needed.
        pending = {
            position
            for position in range(len(dependencies))
            if last_checked[position] < len(steps)
        }
        if not pending:
            break
        verifying = True
        dirty = pending
        verify_baseline = set(pending)

    current = collapse_duplicate_bindings(current, closure=closure, stats=stats)
    return current, steps, rounds, timed_out


def _path_heads(path, var_heads):
    """Return the collection names reachable from ``path`` (``None`` = unknown).

    The heads of a path are its own schema references plus, transitively, the
    heads of the ranges of the variables it mentions.  ``None`` signals an
    unresolvable head and is treated as a wildcard by the trigger matching.
    """
    heads = set(schema_names(path))
    for variable in path_variables(path):
        resolved = var_heads.get(variable, None)
        if resolved is None:
            return None
        heads |= resolved
    return frozenset(heads)


def _dependency_triggers(dependency):
    """Return ``(head names, wildcard)`` for a dependency's universal part.

    A dependency needs re-checking only when a chase step touches one of its
    trigger heads: new homomorphisms of the universal part require either a
    new binding over (or a class merge involving) one of these collections.
    An empty/unresolvable head makes the dependency a wildcard that is
    re-checked after every step.
    """
    keys = set()
    wildcard = False
    local_heads = {}
    for binding in dependency.universal:
        heads = _path_heads(binding.range, local_heads)
        if heads is None or not heads:
            wildcard = True
            local_heads[binding.var] = None
        else:
            keys |= heads
            local_heads[binding.var] = heads
    for condition in dependency.premise:
        for side in (condition.left, condition.right):
            heads = _path_heads(side, local_heads)
            if heads is None:
                wildcard = True
            else:
                keys |= heads
    return frozenset(keys), wildcard


def _touched_heads(added_bindings, added_conditions, var_heads, closure, union_mark):
    """Return ``(head names, wildcard)`` describing what a chase step disturbed.

    Covers the three ways a step can enable a new homomorphism: the heads of
    the freshly added bindings, the heads of both sides of the added
    conditions, and the heads of every member of each congruence class the
    step's merges (including congruence cascades) disturbed — read from the
    closure's union log since ``union_mark``.
    """
    touched = set()
    wildcard = False

    def absorb(path):
        nonlocal wildcard
        heads = _path_heads(path, var_heads)
        if heads is None:
            wildcard = True
        else:
            touched.update(heads)

    for binding in added_bindings:
        heads = _path_heads(binding.range, var_heads)
        if heads is None or not heads:
            wildcard = True
        else:
            touched.update(heads)
    for condition in added_conditions:
        absorb(condition.left)
        absorb(condition.right)
    for root in closure.unions_since(union_mark):
        for term in closure.class_terms(root):
            absorb(term)
    return touched, wildcard


def universal_plan(query, dependencies, **kwargs):
    """Convenience wrapper returning just the chased query (the universal plan)."""
    return chase(query, dependencies, **kwargs).query


__all__ = [
    "ChaseCounters",
    "ChaseResult",
    "ChaseStep",
    "applicable_homomorphisms",
    "chase",
    "chase_step",
    "collapse_duplicate_bindings",
    "deadline_passed",
    "universal_plan",
]
