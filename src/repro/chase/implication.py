"""Chase-based dependency implication and constraint-aware equivalence.

The backchase needs to decide, for a candidate subquery ``SQ`` of the
universal plan, whether ``SQ`` is equivalent to the original query ``Q``
under the constraint set ``D``.  Following the paper (Appendix A), this
reduces to chasing: ``Q1 is contained in Q2`` under ``D`` iff there is a
containment mapping from ``Q2`` into ``chase(Q1, D)``.

The same machinery decides dependency implication ``D implies d`` (used to
check that a single backchase step is justified, and exposed for tests): the
premise of ``d`` is frozen into a canonical query, chased with ``D``, and the
conclusion is checked against the result.
"""

from __future__ import annotations

import threading
from itertools import islice

from repro.errors import ChaseTimeout
from repro.cq.containment import outputs_match
from repro.cq.homomorphism import find_homomorphism, find_homomorphisms
from repro.cq.query import PCQuery
from repro.lang.ast import Var, substitute
from repro.chase.chase import ChaseCounters, chase


class ChaseCache:
    """Memoises chase results keyed by query signature.

    The backchase chases many closely related subqueries; reusing results for
    identical subqueries (reached through different removal orders) is one of
    the implementation techniques that keeps the prototype usable.

    The cache is picklable and *mergeable*: the parallel backchase gives each
    worker process its own cache and folds the workers' newly chased entries
    (exported with :meth:`snapshot` / :meth:`export_since`) back into the
    shared cache with :meth:`merge_exported` after every wave.

    Attributes
    ----------
    hits / misses:
        Cache hit/miss counts.
    counters:
        Aggregated :class:`~repro.chase.chase.ChaseCounters` over every
        cache-miss chase performed through this cache.
    """

    def __init__(self, dependencies, **chase_kwargs):
        self.dependencies = list(dependencies)
        self.chase_kwargs = chase_kwargs
        self._cache = {}
        self.hits = 0
        self.misses = 0
        self.counters = ChaseCounters()
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def chase(self, query, deadline=None):
        """Return the chased query (cached).

        ``deadline`` is an optional absolute :func:`time.perf_counter` bound
        threaded through to :func:`repro.chase.chase.chase`; when it expires
        mid-chase a :class:`~repro.errors.ChaseTimeout` is raised and the
        partial result is *not* cached (a later call with a fresh budget must
        redo the chase from scratch rather than trust a truncated fixpoint).

        Thread-safe: the accounting updates are taken under a lock (the chase
        computation itself is not, so two threads missing on the same
        signature may both chase it — idempotent, just duplicated work).
        """
        key = query.signature()
        cached = self._cache.get(key)
        if cached is not None:
            with self._lock:
                self.hits += 1
            return cached
        result = chase(query, self.dependencies, deadline=deadline, **self.chase_kwargs)
        with self._lock:
            self.misses += 1
            self.counters.add(result.counters)
        if result.timed_out:
            raise ChaseTimeout("chase deadline expired during a cached equivalence check")
        self._cache[key] = result.query
        return result.query

    # ------------------------------------------------------------------ #
    # merging (parallel backchase support)
    # ------------------------------------------------------------------ #
    def __len__(self):
        return len(self._cache)

    def snapshot(self):
        """Return an opaque marker for :meth:`export_since`.

        The cache only ever appends entries (it never evicts), so the current
        length identifies everything cached so far.
        """
        return len(self._cache)

    def export_since(self, marker=0):
        """Return the entries added after ``marker`` as a plain dict.

        Used by worker processes to ship their cache misses back to the
        coordinating process without re-serialising the whole cache.
        """
        return dict(islice(self._cache.items(), marker, None))

    def merge_exported(self, entries, hits=0, misses=0, counters=None):
        """Fold a worker's exported entries and accounting into this cache."""
        for key, value in entries.items():
            self._cache.setdefault(key, value)
        self.hits += hits
        self.misses += misses
        if counters is not None:
            self.counters.add(counters)

    def merge(self, other):
        """Merge another :class:`ChaseCache` (entries and accounting)."""
        self.merge_exported(other._cache, other.hits, other.misses, other.counters)


def contained_under(query, other, dependencies, chase_cache=None):
    """Return ``True`` when ``query ⊆ other`` under ``dependencies``.

    Decided by chasing ``query`` with the dependencies and looking for a
    containment mapping (an output-preserving homomorphism) from ``other``
    into the result.
    """
    if chase_cache is not None:
        chased = chase_cache.chase(query)
    else:
        chased = chase(query, dependencies).query
    return _has_containment_mapping(other, chased)


def equivalent_under(query, other, dependencies, chase_cache=None):
    """Return ``True`` when the two queries are equivalent under ``dependencies``."""
    return contained_under(query, other, dependencies, chase_cache) and contained_under(
        other, query, dependencies, chase_cache
    )


def _has_containment_mapping(source, target, stats=None):
    """Check for an output-preserving homomorphism from ``source`` into ``target``."""
    closure = target.congruence()
    for mapping in find_homomorphisms(
        source.bindings, source.conditions, target, target_closure=closure, stats=stats
    ):
        if outputs_match(source, target, mapping, target_closure=closure):
            return True
    return False


def implies(dependencies, candidate, chase_cache=None):
    """Return ``True`` when ``dependencies`` imply the dependency ``candidate``.

    The standard chase-based implication test: freeze the universal part of
    ``candidate`` into a canonical query, chase it with ``dependencies``, and
    check that the existential part (with its conclusion) can be matched, or,
    for an EGD, that the conclusion equalities hold in the chased query.
    """
    premise_query = PCQuery.create(
        output=[(binding.var, Var(binding.var)) for binding in candidate.universal],
        bindings=candidate.universal,
        conditions=candidate.premise,
    )
    if chase_cache is not None:
        chased = chase_cache.chase(premise_query)
    else:
        chased = chase(premise_query, dependencies).query
    closure = chased.congruence()
    # The frozen universal variables must map to their own images.  The chase
    # may have merged provably-equal frozen variables (an EGD firing followed
    # by the duplicate-binding collapse), so the image of each variable is
    # read off the premise query's output rather than assumed to be itself.
    identity = {
        binding.var: chased.output_path(binding.var) for binding in candidate.universal
    }
    if candidate.is_egd:
        return all(
            closure.equal(
                substitute(condition.left, identity), substitute(condition.right, identity)
            )
            for condition in candidate.conclusion
        )
    extension = find_homomorphism(
        candidate.existential,
        candidate.conclusion,
        chased,
        target_closure=closure,
        initial=identity,
    )
    return extension is not None


__all__ = ["ChaseCache", "contained_under", "equivalent_under", "implies"]
