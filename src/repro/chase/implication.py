"""Chase-based dependency implication and constraint-aware equivalence.

The backchase needs to decide, for a candidate subquery ``SQ`` of the
universal plan, whether ``SQ`` is equivalent to the original query ``Q``
under the constraint set ``D``.  Following the paper (Appendix A), this
reduces to chasing: ``Q1 is contained in Q2`` under ``D`` iff there is a
containment mapping from ``Q2`` into ``chase(Q1, D)``.

The same machinery decides dependency implication ``D implies d`` (used to
check that a single backchase step is justified, and exposed for tests): the
premise of ``d`` is frozen into a canonical query, chased with ``D``, and the
conclusion is checked against the result.

Long-lived use: :class:`ChaseCache` instances can now outlive a single
optimize call (the optimizer service keeps one warm per constraint set, see
:mod:`repro.service`), so the cache supports an optional LRU bound
(``max_entries``) with eviction counters, and :class:`ChaseCacheRegistry`
hands out one cache per *exact* constraint set — a chase result is only
valid for the dependency set it was chased with, so sharing is keyed by
:func:`constraint_signature`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.errors import ChaseTimeout
from repro.cq.containment import has_containment_mapping
from repro.cq.homomorphism import find_homomorphism
from repro.cq.query import PCQuery
from repro.lang.ast import Var, substitute
from repro.chase.chase import ChaseCounters, ChaseResult, chase
from repro.trace import traced_stage


def constraint_signature(dependencies):
    """A hashable, order-insensitive identity for a constraint set.

    Chase results are only reusable across calls that chase with the *same*
    dependencies, so every cache-sharing layer (the service's sessions, the
    :class:`ChaseCacheRegistry`) keys by this signature.
    """
    return frozenset(dependencies)


def constraints_digest(constraints):
    """Stable *structural* digest of a constraint set.

    Uses each dependency's pretty-printed form (name + quantifier structure),
    sorted — stable across processes and runs, and it *changes* whenever any
    constraint's definition changes, which is exactly the staleness signal:
    chase fixpoints and containment verdicts are only valid under the
    dependency set they were computed with.

    This is the one constraint-set identity shared by every placement and
    persistence layer: shard routing (:func:`repro.service.shard.shard_index`),
    the fleet router's consistent-hash ring, snapshot staleness manifests and
    the cross-process sync guard all hash this digest.  Hashing anything
    weaker (the sorted dependency *names*, as the pre-fleet shard router did)
    aliases constraint sets whose names collide but whose bodies differ —
    a correctness bug once state is exchanged or re-routed on that identity.
    """
    text = "\n".join(sorted(str(dep) for dep in constraints))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ChaseCache:
    """Memoises chase results keyed by query signature.

    The backchase chases many closely related subqueries; reusing results for
    identical subqueries (reached through different removal orders) is one of
    the implementation techniques that keeps the prototype usable.

    The cache is picklable and *mergeable*: the parallel backchase gives each
    worker process its own cache and folds the workers' newly chased entries
    (exported with :meth:`snapshot` / :meth:`export_since`) back into the
    shared cache with :meth:`merge_exported` after every wave.

    For long-lived use (the optimizer service keeps caches warm across
    optimize calls) the cache accepts an optional ``max_entries`` bound and
    evicts least-recently-used entries once it is exceeded; ``evictions``
    counts the entries dropped.  The default (``None``) is unbounded and
    preserves the historical single-call behaviour exactly.

    Attributes
    ----------
    hits / misses:
        Cache hit/miss counts.
    evictions:
        Entries dropped by the LRU bound (0 when unbounded).
    counters:
        Aggregated :class:`~repro.chase.chase.ChaseCounters` over every
        cache-miss chase performed through this cache.
    """

    def __init__(self, dependencies, max_entries=None, **chase_kwargs):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries!r}")
        self.dependencies = list(dependencies)
        self.max_entries = max_entries
        self.chase_kwargs = chase_kwargs
        self._cache = OrderedDict()  # guarded-by: _lock
        #: Insertion log backing :meth:`snapshot` / :meth:`export_since` — the
        #: cache may evict, so "everything added after a marker" can no longer
        #: be read off the dict length alone.
        self._log = []  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.counters = ChaseCounters()  # guarded-by: _lock
        self._lock = threading.Lock()

    def __getstate__(self):
        # Copy the mutable containers under the lock: caches are pickled
        # live by concurrent snapshots, and pickling an OrderedDict another
        # thread is inserting into raises "mutated during iteration".
        with self._lock:
            state = self.__dict__.copy()
            state["_cache"] = OrderedDict(self._cache)
            state["_log"] = list(self._log)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def chase(self, query, deadline=None):
        """Return the chased query (cached).

        ``deadline`` is an optional absolute :func:`time.perf_counter` bound
        threaded through to :func:`repro.chase.chase.chase`; when it expires
        mid-chase a :class:`~repro.errors.ChaseTimeout` is raised and the
        partial result is *not* cached (a later call with a fresh budget must
        redo the chase from scratch rather than trust a truncated fixpoint).
        """
        result = self.chase_result(query, deadline=deadline)
        if result.timed_out:
            raise ChaseTimeout("chase deadline expired during a cached equivalence check")
        return result.query

    @traced_stage("chase")
    def chase_result(self, query, deadline=None):
        """Return a :class:`~repro.chase.chase.ChaseResult` for ``query`` (cached).

        A hit returns a synthetic zero-cost result around the cached fixpoint
        (``elapsed`` 0, empty counters) — this is what makes warm service
        requests cheap.  A miss chases; a *timed-out* miss returns the partial
        result **without caching it** (truncated fixpoints are never stored).

        Thread-safe: concurrent requests of the service share one cache per
        constraint set.  Lookup, accounting and the LRU bookkeeping are taken
        under a lock; the chase computation itself is not (two threads missing
        on the same signature may both chase it — idempotent, just duplicated
        work).
        """
        key = query.signature()
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                if self.max_entries is not None:
                    self._cache.move_to_end(key)
                return ChaseResult(query=cached)
        result = chase(query, self.dependencies, deadline=deadline, **self.chase_kwargs)
        with self._lock:
            self.misses += 1
            self.counters.add(result.counters)
            if not result.timed_out:
                self._store(key, result.query)
        return result

    def _store(self, key, value):  # holds: _lock
        """Record a fixpoint under the lock, evicting when over the bound."""
        if key not in self._cache:
            self._cache[key] = value
            self._log.append(key)
            self._evict()
            self._compact_log()
        elif self.max_entries is not None:
            self._cache.move_to_end(key)

    def _evict(self):  # holds: _lock
        while self.max_entries is not None and len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1

    def _compact_log(self):  # holds: _lock
        # Under heavy eviction churn the insertion log would otherwise grow
        # without bound.  Compaction rewrites it to the live keys; outstanding
        # snapshot markers then under-report (export_since returns fewer
        # entries than were actually added), which only costs worker processes
        # a re-chase — merge_exported is idempotent, so results are unchanged.
        if self.max_entries is not None and len(self._log) > 4 * self.max_entries + 16:
            self._log = list(self._cache)

    # ------------------------------------------------------------------ #
    # merging (parallel backchase / service support)
    # ------------------------------------------------------------------ #
    def __len__(self):
        # Takes the lock: a bare len(self._cache) can observe a dict
        # mid-resize from a concurrent _store.  Lock-held internals use
        # len(self._cache) directly, so this never self-deadlocks.
        with self._lock:
            return len(self._cache)

    def stats(self):
        """One consistent accounting snapshot (entries, hits, misses, evictions).

        Reading the counters attribute-by-attribute from another thread can
        interleave with a concurrent miss and report hits/misses totals that
        never coexisted; this is the supported way to observe a live cache.
        """
        with self._lock:
            return {
                "entries": len(self._cache),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def snapshot(self):
        """Return an opaque marker for :meth:`export_since`."""
        with self._lock:
            return len(self._log)

    def export_since(self, marker=0):
        """Return the entries added after ``marker`` as a plain dict.

        Used by worker processes to ship their cache misses back to the
        coordinating process without re-serialising the whole cache.  Entries
        evicted since they were logged are skipped; after a log compaction a
        stale marker may under-report (see :meth:`_compact_log`) — callers
        treat the export as a best-effort warm-up, never as ground truth.
        """
        with self._lock:
            return {
                key: self._cache[key] for key in self._log[marker:] if key in self._cache
            }

    def merge_exported(self, entries, hits=0, misses=0, counters=None):
        """Fold a worker's exported entries and accounting into this cache."""
        with self._lock:
            for key, value in entries.items():
                if key not in self._cache:
                    self._cache[key] = value
                    self._log.append(key)
            self._evict()
            self._compact_log()
            self.hits += hits
            self.misses += misses
            if counters is not None:
                self.counters.add(counters)

    def merge(self, other):
        """Merge another :class:`ChaseCache` (entries and accounting).

        ``other``'s state is snapshotted under *its* lock first (a live cache
        can be merged while still being written to, e.g. replica exchange);
        the snapshot is released before this cache's lock is taken, so the
        two locks are never nested and cross-merges cannot deadlock.
        """
        with other._lock:
            entries = dict(other._cache)
            hits, misses = other.hits, other.misses
            counters = ChaseCounters()
            counters.add(other.counters)
        self.merge_exported(entries, hits, misses, counters)

    def reset_counters(self):
        """Zero the accounting (entries stay).  Used when a persisted cache
        is loaded into a fresh process, so stats describe the new life."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.counters = ChaseCounters()


class ChaseCacheRegistry:
    """Warm :class:`ChaseCache` instances keyed by exact constraint set.

    One optimize call chases under several *different* dependency sets (the
    full set for FB, per-fragment sets for OQF, per-stratum sets for OCS);
    reusing a chase result across sets would be unsound.  The registry hands
    out — and keeps warm across calls — one cache per
    :func:`constraint_signature`, which is how the optimizer service shares
    state between requests without changing any plan set.

    Thread-safe; ``max_entries`` bounds each per-set cache individually.
    """

    def __init__(self, max_entries=None, **chase_kwargs):
        self.max_entries = max_entries
        self.chase_kwargs = chase_kwargs
        self._caches = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def __getstate__(self):
        # Copy the cache table under the lock (see ChaseCache.__getstate__).
        with self._lock:
            state = self.__dict__.copy()
            state["_caches"] = dict(self._caches)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def for_constraints(self, dependencies):
        """Return the (shared, warm) cache for exactly ``dependencies``."""
        key = constraint_signature(dependencies)
        with self._lock:
            cache = self._caches.get(key)
            if cache is None:
                cache = ChaseCache(
                    dependencies, max_entries=self.max_entries, **self.chase_kwargs
                )
                self._caches[key] = cache
            return cache

    def __len__(self):
        with self._lock:
            return len(self._caches)

    def stats(self):
        """Aggregate accounting over every cache in the registry.

        Each cache contributes one consistent :meth:`ChaseCache.stats`
        snapshot (taken under that cache's own lock) rather than raw
        attribute reads racing against in-flight misses.
        """
        with self._lock:
            caches = list(self._caches.values())
        per_cache = [cache.stats() for cache in caches]
        return {
            "caches": len(per_cache),
            "entries": sum(stats["entries"] for stats in per_cache),
            "hits": sum(stats["hits"] for stats in per_cache),
            "misses": sum(stats["misses"] for stats in per_cache),
            "evictions": sum(stats["evictions"] for stats in per_cache),
        }

    def reset_counters(self):
        """Zero every cache's accounting (see :meth:`ChaseCache.reset_counters`)."""
        with self._lock:
            caches = list(self._caches.values())
        for cache in caches:
            cache.reset_counters()

    def set_max_entries(self, max_entries):
        """Re-apply an LRU bound to the registry and every existing cache.

        Used when loaded (restored-from-snapshot) registries are installed
        under a shard whose configured bound differs from the saving
        process's; over-bound caches evict down on their next insertion.
        """
        with self._lock:
            self.max_entries = max_entries
            caches = list(self._caches.values())
        for cache in caches:
            cache.max_entries = max_entries

    # ------------------------------------------------------------------ #
    # delta exchange (cross-process fleet sync)
    # ------------------------------------------------------------------ #
    def export_entries(self, markers=None):
        """Delta-export every cache's entries added since ``markers``.

        ``markers`` maps :func:`constraint_signature` to the marker returned
        by the previous call (missing/``None`` = everything).  Returns
        ``(exported, new_markers)`` where ``exported`` maps each signature to
        the plain ``{query_signature: fixpoint}`` dict of new entries (empty
        exports are omitted) and ``new_markers`` is what the *next* call
        should pass.  Markers are taken before the export, so an entry
        landing between the two reads is shipped twice — harmless, because
        :meth:`merge_entries` is idempotent.
        """
        markers = markers or {}
        with self._lock:
            caches = dict(self._caches)
        exported = {}
        new_markers = {}
        for signature, cache in caches.items():
            new_markers[signature] = cache.snapshot()
            entries = cache.export_since(markers.get(signature, 0))
            if entries:
                exported[signature] = entries
        return exported, new_markers

    def merge_entries(self, exported):
        """Fold a peer registry's :meth:`export_entries` payload into this one.

        Creates the per-constraint-set cache on first contact (the receiving
        process may never have chased under that sub-set locally — OQF/OCS
        fragment sets differ per strategy mix).  Returns the number of
        entries offered; duplicates are skipped inside
        :meth:`ChaseCache.merge_exported`, so replaying an export is safe.
        """
        merged = 0
        for signature, entries in exported.items():
            cache = self.for_constraints(list(signature))
            cache.merge_exported(entries)
            merged += len(entries)
        return merged

    # ------------------------------------------------------------------ #
    # persistence (the service's warm-restart snapshots)
    # ------------------------------------------------------------------ #
    def save(self, path):
        """Pickle the registry (every per-constraint-set cache) to ``path``.

        The snapshot is taken under the registry lock; the individual caches
        are pickled through their own ``__getstate__`` (locks stripped).  A
        restarted process can :meth:`load` the file and serve its first
        request against already-warm fixpoints.
        """
        import pickle

        with self._lock:
            payload = {"max_entries": self.max_entries, "caches": dict(self._caches)}
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    @classmethod
    def load(cls, path, max_entries=None, **chase_kwargs):
        """Rebuild a registry from a :meth:`save` snapshot.

        ``max_entries`` overrides the snapshot's bound when given (a restart
        may tighten or loosen the LRU limit); loaded caches over the new
        bound evict down to it on their next insertion.
        """
        import pickle

        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        registry = cls(
            max_entries=max_entries if max_entries is not None else payload["max_entries"],
            **chase_kwargs,
        )
        for signature, cache in payload["caches"].items():
            cache.max_entries = registry.max_entries
            registry._caches[signature] = cache
        return registry


def contained_under(query, other, dependencies, chase_cache=None):
    """Return ``True`` when ``query ⊆ other`` under ``dependencies``.

    Decided by chasing ``query`` with the dependencies and looking for a
    containment mapping (an output-preserving homomorphism) from ``other``
    into the result.
    """
    if chase_cache is not None:
        chased = chase_cache.chase(query)
    else:
        chased = chase(query, dependencies).query
    return _has_containment_mapping(other, chased)


def equivalent_under(query, other, dependencies, chase_cache=None):
    """Return ``True`` when the two queries are equivalent under ``dependencies``."""
    return contained_under(query, other, dependencies, chase_cache) and contained_under(
        other, query, dependencies, chase_cache
    )


def _has_containment_mapping(source, target, stats=None):
    """Check for an output-preserving homomorphism from ``source`` into ``target``.

    Kept as the chase layer's historical entry point; the implementation is
    the shared :func:`repro.cq.containment.has_containment_mapping`, which is
    also what :class:`~repro.cq.memo.ContainmentMemo` computes on a miss —
    one search, one semantics, memoised or not.
    """
    return has_containment_mapping(source, target, stats=stats)


def implies(dependencies, candidate, chase_cache=None):
    """Return ``True`` when ``dependencies`` imply the dependency ``candidate``.

    The standard chase-based implication test: freeze the universal part of
    ``candidate`` into a canonical query, chase it with ``dependencies``, and
    check that the existential part (with its conclusion) can be matched, or,
    for an EGD, that the conclusion equalities hold in the chased query.
    """
    premise_query = PCQuery.create(
        output=[(binding.var, Var(binding.var)) for binding in candidate.universal],
        bindings=candidate.universal,
        conditions=candidate.premise,
    )
    if chase_cache is not None:
        chased = chase_cache.chase(premise_query)
    else:
        chased = chase(premise_query, dependencies).query
    closure = chased.congruence()
    # The frozen universal variables must map to their own images.  The chase
    # may have merged provably-equal frozen variables (an EGD firing followed
    # by the duplicate-binding collapse), so the image of each variable is
    # read off the premise query's output rather than assumed to be itself.
    identity = {
        binding.var: chased.output_path(binding.var) for binding in candidate.universal
    }
    if candidate.is_egd:
        return all(
            closure.equal(
                substitute(condition.left, identity), substitute(condition.right, identity)
            )
            for condition in candidate.conclusion
        )
    extension = find_homomorphism(
        candidate.existential,
        candidate.conclusion,
        chased,
        target_closure=closure,
        initial=identity,
    )
    return extension is not None


__all__ = [
    "ChaseCache",
    "ChaseCacheRegistry",
    "constraint_signature",
    "constraints_digest",
    "contained_under",
    "equivalent_under",
    "implies",
]
