"""Exception hierarchy for the repro (Chase & Backchase) library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific classes are provided for the
major subsystems: the surface language, schema definition, the chase engine,
and the execution engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """Raised when the OQL-like surface syntax cannot be parsed.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when not applicable.
    """

    def __init__(self, message, position=None):
        super().__init__(message)
        self.message = message
        self.position = position

    def __str__(self):
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions.

    Examples: a relation declared twice, an index over a missing attribute,
    or a materialized view whose defining query references an unknown name.
    """


class QueryError(ReproError):
    """Raised when a query is malformed with respect to a schema.

    Examples: a binding over an unknown collection, an output path rooted at
    an unbound variable, or a condition using a variable that is never bound.
    """


class ConstraintError(ReproError):
    """Raised when a dependency (constraint) is malformed.

    Examples: an existential binding that references a variable bound neither
    universally nor earlier in the existential prefix.
    """


class ChaseError(ReproError):
    """Raised when the chase or backchase cannot proceed.

    The most common cause is a non-terminating chase detected via the
    ``max_rounds`` safety bound.
    """


class ChaseTimeout(ReproError):
    """Raised when a chase required by a timeboxed search exceeds its deadline.

    Only raised on paths that cannot report a partial result through a
    ``timed_out`` flag (e.g. :meth:`repro.chase.implication.ChaseCache.chase`
    inside a backchase equivalence check); the top-level
    :func:`repro.chase.chase.chase` returns a :class:`ChaseResult` with
    ``timed_out=True`` instead.
    """


class ExecutionError(ReproError):
    """Raised by the execution engine when a plan cannot be evaluated.

    Examples: a plan referencing a collection that is not populated in the
    database instance, or a dictionary lookup on a key path that cannot be
    resolved.
    """


class ServiceOverloaded(ReproError):
    """Raised when the optimizer service rejects a request at admission.

    A shard whose queue depth (queued + executing requests) has reached its
    ``max_queue_depth`` bound sheds load instead of buffering without bound;
    the socket front end translates this into a typed ``overloaded`` JSONL
    response so clients can back off and retry.

    Attributes
    ----------
    shard:
        The shard that rejected the request.
    queue_depth:
        The depth observed at rejection time.
    """

    def __init__(self, message, shard=None, queue_depth=None):
        super().__init__(message)
        self.shard = shard
        self.queue_depth = queue_depth
