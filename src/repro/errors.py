"""Exception hierarchy for the repro (Chase & Backchase) library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific classes are provided for the
major subsystems: the surface language, schema definition, the chase engine,
and the execution engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """Raised when the OQL-like surface syntax cannot be parsed.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when not applicable.
    """

    def __init__(self, message, position=None):
        super().__init__(message)
        self.message = message
        self.position = position

    def __str__(self):
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions.

    Examples: a relation declared twice, an index over a missing attribute,
    or a materialized view whose defining query references an unknown name.
    """


class QueryError(ReproError):
    """Raised when a query is malformed with respect to a schema.

    Examples: a binding over an unknown collection, an output path rooted at
    an unbound variable, or a condition using a variable that is never bound.
    """


class ConstraintError(ReproError):
    """Raised when a dependency (constraint) is malformed.

    Examples: an existential binding that references a variable bound neither
    universally nor earlier in the existential prefix.
    """


class ChaseError(ReproError):
    """Raised when the chase or backchase cannot proceed.

    The most common cause is a non-terminating chase detected via the
    ``max_rounds`` safety bound.
    """


class ChaseTimeout(ReproError):
    """Raised when a chase required by a timeboxed search exceeds its deadline.

    Only raised on paths that cannot report a partial result through a
    ``timed_out`` flag (e.g. :meth:`repro.chase.implication.ChaseCache.chase`
    inside a backchase equivalence check); the top-level
    :func:`repro.chase.chase.chase` returns a :class:`ChaseResult` with
    ``timed_out=True`` instead.
    """


class ExecutionError(ReproError):
    """Raised by the execution engine when a plan cannot be evaluated.

    Examples: a plan referencing a collection that is not populated in the
    database instance, or a dictionary lookup on a key path that cannot be
    resolved.
    """


class ServiceOverloaded(ReproError):
    """Raised when the optimizer service rejects a request at admission.

    A shard whose queue depth (queued + executing requests) has reached its
    ``max_queue_depth`` bound sheds load instead of buffering without bound;
    the socket front end translates this into a typed ``overloaded`` JSONL
    response so clients can back off and retry.

    Attributes
    ----------
    shard:
        The shard that rejected the request.
    queue_depth:
        The depth observed at rejection time.
    retry_after:
        Optional hint (seconds) for how long a client should back off before
        retrying; surfaced on the ``overloaded`` JSONL record and honoured by
        :class:`~repro.service.client.OptimizerClient`.
    """

    def __init__(self, message, shard=None, queue_depth=None, retry_after=None):
        super().__init__(message)
        self.shard = shard
        self.queue_depth = queue_depth
        self.retry_after = retry_after


class ProtocolError(ReproError):
    """Raised when a JSONL frame on the wire cannot be understood.

    The client's reader thread raises this to every pending future when the
    response stream desynchronises (a malformed or truncated line): once
    framing is lost, no in-flight request on that connection can be matched
    to a response, so the connection is torn down and the caller may retry
    on a fresh one.
    """


class ConnectionLost(ReproError, ConnectionError):
    """Raised to pending futures when the server connection goes away.

    Subclasses :class:`ConnectionError` so callers that treated the untyped
    historical failure (``ConnectionError("connection closed ...")``) keep
    working; the retry layer treats it as transient.
    """


class SnapshotError(ReproError):
    """Raised when a cache snapshot cannot be read or fails validation.

    Covers every way an operator-supplied snapshot file can be unusable:
    missing, truncated, unpicklable, failing its payload checksum, carrying
    an unsupported version, or — per session — a constraint-set signature
    that no longer matches its payload (staleness).  Loaders degrade to a
    cold start instead of crashing the server at boot.

    Attributes
    ----------
    path:
        The snapshot file involved.
    reason:
        Short machine-readable cause (``"missing"``, ``"corrupt"``,
        ``"checksum"``, ``"version"``, ``"stale"``, ``"io"``).
    """

    def __init__(self, message, path=None, reason=None):
        super().__init__(message)
        self.path = path
        self.reason = reason


class RunnerCrash(ReproError):
    """A shard runner thread died while executing a request.

    The shard supervisor resolves the in-flight request's future with this
    error (never a hung future), restarts the runner, and keeps serving.

    Attributes
    ----------
    shard:
        The shard whose runner died.
    request_id:
        The request that was executing when the runner died.
    """

    def __init__(self, message, shard=None, request_id=None):
        super().__init__(message)
        self.shard = shard
        self.request_id = request_id


class InjectedFault(ReproError):
    """A transient failure raised by :class:`~repro.service.faults.FaultInjector`.

    Derives from :class:`Exception`, so ordinary per-request error handling
    (engine failure -> typed ``error`` response) absorbs it; IO sites treat
    it as the corresponding IO failure (dropped connection, failed write).

    Attributes
    ----------
    site:
        The fault-injection site that fired (e.g. ``"server.write"``).
    """

    def __init__(self, message, site=None):
        super().__init__(message)
        self.site = site


class InjectedCrash(BaseException):
    """A fault-injected *crash*: sails through ``except Exception`` handlers.

    Used by the chaos suite to kill a shard runner thread mid-request the
    way a real unhandled executor failure would, exercising the supervisor's
    detect/restart/fail-the-in-flight-request path.  Deliberately not a
    :class:`ReproError` (nor an :class:`Exception`): anything that catches it
    would defeat its purpose.
    """

    def __init__(self, message, site=None):
        super().__init__(message)
        self.site = site
