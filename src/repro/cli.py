"""Command-line entry point for running the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli list
    python -m repro.cli fig5-ec1
    python -m repro.cli plans-table
    python -m repro.cli fig9 --stars 3 --corners 2 --views 1 --size 5000
    python -m repro.cli fig10 --size 10000
    python -m repro.cli parallel-scaling --executor processes --timeout 60
    python -m repro.cli optimize ec2 --stars 2 --corners 3 --views 1 --strategy oqf --workers 4 --executor processes
    python -m repro.cli batch --input requests.jsonl --output results.jsonl --shards 2
    python -m repro.cli serve < requests.jsonl

The ``fig*`` / ``plans-table`` commands print the same rows the corresponding
figures and tables of the paper report; ``optimize`` runs a single optimizer
invocation on one of the experimental configurations and prints the plans.

``batch`` and ``serve`` run the long-lived :mod:`repro.service` optimizer
service over a JSONL stream of requests (see ``_decode_request`` for the
schema, or the README's "Serving mode" section): ``batch`` reads the whole
input, submits everything to the warm sharded service, and writes one result
line per request in input order; ``serve`` streams — each input line is
submitted as it is read and results are emitted as they complete.  With
``--check``, every service response is re-verified against a fresh
single-shot :class:`~repro.chase.optimizer.CBOptimizer` run and the process
exits non-zero on any plan-set mismatch (the ``make serve-smoke`` target).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading

from repro.experiments import figures
from repro.workloads import build_ec1, build_ec2, build_ec3

#: Experiment name -> (driver, keyword arguments it understands).
EXPERIMENTS = {
    "fig5-ec1": (figures.figure5_ec1, ()),
    "fig5-ec2": (figures.figure5_ec2, ()),
    "fig5-ec3": (figures.figure5_ec3, ()),
    "plans-table": (figures.plans_table_ec2, ("timeout",)),
    "fig6-ec1": (figures.figure6_ec1, ("timeout",)),
    "fig6-ec3": (figures.figure6_ec3, ("timeout",)),
    "fig7-ec2": (figures.figure7_ec2, ("timeout",)),
    "fig8": (figures.figure8_granularity, ("timeout",)),
    "fig9": (figures.figure9_plan_detail, ("stars", "corners", "views", "size", "timeout")),
    "fig10": (figures.figure10_time_reduction, ("size", "timeout")),
    "parallel-scaling": (
        figures.parallel_backchase_scaling,
        ("stars", "corners", "views", "timeout", "workers", "executor"),
    ),
    "service-throughput": (
        figures.service_throughput,
        ("timeout", "workers", "shards", "repeats"),
    ),
}


def build_parser():
    """Build the argparse parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'A Chase Too Far?' (SIGMOD 2000)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name, (_, accepted) in EXPERIMENTS.items():
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_common_options(experiment)
        if "workers" in accepted:
            _add_parallel_options(experiment)
        if "shards" in accepted:
            experiment.add_argument(
                "--shards", type=int, default=None, help="service shard count"
            )
            experiment.add_argument(
                "--repeats", type=int, default=None, help="repetitions of the request mix"
            )

    optimize = subparsers.add_parser(
        "optimize", help="run one optimizer invocation on a workload and print the plans"
    )
    optimize.add_argument("workload", choices=["ec1", "ec2", "ec3"])
    optimize.add_argument("--strategy", choices=["fb", "oqf", "ocs"], default="fb")
    _add_common_options(optimize)
    _add_parallel_options(optimize)
    optimize.add_argument("--relations", type=int, default=3, help="EC1: number of relations")
    optimize.add_argument(
        "--secondary-indexes", type=int, default=0, help="EC1: number of secondary indexes"
    )
    optimize.add_argument("--classes", type=int, default=3, help="EC3: number of classes")
    optimize.add_argument("--asrs", type=int, default=0, help="EC3: number of ASRs")

    for name, streaming in (("batch", False), ("serve", True)):
        command = subparsers.add_parser(
            name,
            help=(
                "run a JSONL request stream through the warm optimizer service "
                + ("(streaming)" if streaming else "(collect all, emit in input order)")
            ),
        )
        _add_service_options(command)
    return parser


def _add_common_options(subparser):
    subparser.add_argument("--stars", type=int, default=None, help="EC2: number of stars")
    subparser.add_argument("--corners", type=int, default=None, help="EC2: corners per star")
    subparser.add_argument("--views", type=int, default=None, help="EC2: views per star")
    subparser.add_argument("--size", type=int, default=None, help="tuples per relation")
    subparser.add_argument("--timeout", type=float, default=None, help="backchase timeout (s)")


def _add_parallel_options(subparser):
    """Parallelism knobs, only on the subcommands that honour them."""
    subparser.add_argument(
        "--workers", type=int, default=None, help="worker count for the parallel backchase"
    )
    subparser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="how to fan out the backchase lattice and OQF/OCS stages",
    )


def _add_service_options(subparser):
    subparser.add_argument(
        "--input", default="-", help="JSONL request file ('-' = stdin, the default)"
    )
    subparser.add_argument(
        "--output", default="-", help="JSONL result file ('-' = stdout, the default)"
    )
    subparser.add_argument("--shards", type=int, default=1, help="service shard count")
    subparser.add_argument(
        "--executor",
        choices=["serial", "threads"],
        default="threads",
        help="wave executor of every shard (process pools cannot share warm caches)",
    )
    subparser.add_argument(
        "--workers", type=int, default=None, help="worker threads per shard scheduler"
    )
    subparser.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent requests per shard"
    )
    subparser.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        help="LRU bound per chase cache (default: unbounded)",
    )
    subparser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="LRU bound on warm sessions per shard (default: unbounded)",
    )
    subparser.add_argument(
        "--timeout", type=float, default=None, help="default per-request budget (s)"
    )
    subparser.add_argument(
        "--check",
        action="store_true",
        help="re-verify every response against a fresh single-shot optimize "
        "(exit non-zero on any plan-set mismatch)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="append a final JSONL line with the service-wide stats",
    )


def _experiment_kwargs(args, accepted):
    kwargs = {}
    for name in accepted:
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _run_experiment(name, args, out):
    driver, accepted = EXPERIMENTS[name]
    result = driver(**_experiment_kwargs(args, accepted))
    print(result.render(), file=out)
    return 0


def _build_workload(args):
    if args.workload == "ec1":
        return build_ec1(args.relations, args.secondary_indexes)
    if args.workload == "ec2":
        return build_ec2(args.stars or 2, args.corners or 3, args.views or 1)
    return build_ec3(args.classes, args.asrs)


def _resolve_workers(workers, executor):
    """Resolve the ``--workers`` default for a requested executor.

    ``serial`` always means one worker — also when ``--executor serial`` is
    passed explicitly with ``--workers`` omitted (historically that
    combination fell through to CPU-count semantics).  For the pooled
    executors an omitted ``--workers`` keeps meaning "CPU count" (``None``).
    """
    if workers is not None:
        return workers
    return 1 if executor == "serial" else None


def _run_optimize(args, out):
    workload = _build_workload(args)
    executor = args.executor or "serial"
    workers = _resolve_workers(args.workers, executor)
    optimizer = workload.optimizer(timeout=args.timeout, workers=workers, executor=executor)
    result = optimizer.optimize(workload.query, strategy=args.strategy)
    print(
        f"{args.workload.upper()} {workload.params}: {result.plan_count} plans "
        f"in {result.total_time:.3f}s with {args.strategy.upper()} "
        f"({result.subqueries_explored} subqueries explored, "
        f"executor {result.executor} x{result.workers}"
        f"{', timed out' if result.timed_out else ''})",
        file=out,
    )
    for number, plan in enumerate(result.plans, start=1):
        print(f"--- plan {number}: {plan.describe(workload.catalog)}", file=out)
        print(plan.query, file=out)
    return 0


# ---------------------------------------------------------------------- #
# JSONL serving (the `batch` / `serve` subcommands)
# ---------------------------------------------------------------------- #
#: workload name -> (builder, parameter names accepted in a request's "params")
WORKLOAD_BUILDERS = {
    "ec1": (build_ec1, ("relations", "secondary_indexes")),
    "ec2": (build_ec2, ("stars", "corners", "views")),
    "ec3": (build_ec3, ("classes", "asrs")),
}


def _decode_request(line, default_id):
    """Parse one JSONL request line into ``(request_id, workload, strategy, timeout)``.

    Schema::

        {"id": "r1",                  # optional; defaults to the line number
         "workload": "ec2",           # ec1 | ec2 | ec3
         "params": {"stars": 2, "corners": 3, "views": 1},   # builder kwargs
         "strategy": "fb",            # fb | oqf | ocs (default fb)
         "timeout": 30.0}             # optional per-request budget (s)
    """
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("request line must be a JSON object")
    name = record.get("workload")
    if name not in WORKLOAD_BUILDERS:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOAD_BUILDERS)}"
        )
    builder, accepted = WORKLOAD_BUILDERS[name]
    params = record.get("params") or {}
    unknown = set(params) - set(accepted)
    if unknown:
        raise ValueError(f"unknown {name} params {sorted(unknown)}; accepted: {accepted}")
    workload = builder(**params)
    return (
        record.get("id", default_id),
        workload,
        record.get("strategy", "fb"),
        record.get("timeout"),
    )


def _plan_digest(plans):
    """Stable short digests of a plan set (sorted, whitespace-insensitive)."""
    texts = sorted(" ".join(str(plan.query).split()) for plan in plans)
    return [hashlib.sha256(text.encode("utf-8")).hexdigest()[:16] for text in texts]


def _encode_response(request_id, workload, strategy, response, checked=None):
    """Serialize one service response as a JSONL record."""
    record = {"id": request_id, "workload": workload.name, "strategy": strategy}
    if not response.ok:
        record["status"] = "error"
        record["error"] = response.error
        return record
    result = response.result
    record.update(
        status="ok",
        plan_count=result.plan_count,
        plan_digests=_plan_digest(result.plans),
        total_time_s=round(result.total_time, 6),
        timed_out=result.timed_out,
        shard=response.metrics.shard,
        session=response.metrics.session,
        cache_hits=response.metrics.cache_hits,
        cache_misses=response.metrics.cache_misses,
        latency_s=round(response.metrics.latency, 6),
    )
    if checked is not None:
        record["matches_single_shot"] = checked
    return record


def _check_against_single_shot(workload, strategy, timeout, response):
    """Re-run the request single-shot and compare plan signature sets."""
    if not response.ok:
        return False
    optimizer = workload.optimizer(timeout=timeout)
    fresh = optimizer.optimize(workload.query, strategy=strategy)
    return {plan.signature() for plan in fresh.plans} == {
        plan.signature() for plan in response.result.plans
    }


def _open_maybe(path, mode, fallback):
    if path == "-":
        return fallback, False
    return open(path, mode, encoding="utf-8"), True


def _run_service_stream(args, out, streaming):
    """Drive the optimizer service from a JSONL stream (batch and serve)."""
    from repro.service import OptimizerService

    in_stream, close_in = _open_maybe(args.input, "r", sys.stdin)
    out_stream, close_out = _open_maybe(args.output, "w", out)
    write_lock = threading.Lock()
    failures = []

    def emit(record):
        with write_lock:
            print(json.dumps(record), file=out_stream)
            out_stream.flush()

    def finish(request_id, workload, strategy, timeout, response):
        checked = None
        if args.check:
            checked = _check_against_single_shot(workload, strategy, timeout, response)
            if not checked:
                failures.append(request_id)
        if not response.ok:
            failures.append(request_id)
        emit(_encode_response(request_id, workload, strategy, response, checked))

    service = OptimizerService(
        shards=args.shards,
        executor=args.executor,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_cache_entries=args.max_cache_entries,
        max_sessions=args.max_sessions,
        default_timeout=args.timeout,
    )
    try:
        pending = []
        for number, line in enumerate(in_stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request_id, workload, strategy, timeout = _decode_request(line, number)
            except (ValueError, TypeError) as error:
                failures.append(number)
                emit({"id": number, "status": "error", "error": str(error)})
                continue
            future = service.submit(
                workload.query,
                strategy=strategy,
                catalog=workload.catalog,
                timeout=timeout,
                request_id=request_id,
            )
            if streaming:
                # The completion event guards the shutdown path: a future's
                # waiters wake *before* its done-callbacks run, so waiting on
                # the futures alone would let the main thread emit --stats,
                # compute the exit code and close the streams while a
                # callback is still writing its result line.
                completed = threading.Event()

                def _finish_cb(
                    f,
                    rid=request_id,
                    w=workload,
                    s=strategy,
                    t=timeout,
                    done=completed,
                ):
                    try:
                        finish(rid, w, s, t, f.result())
                    except Exception:  # noqa: BLE001 - never lose the exit code
                        failures.append(rid)
                    finally:
                        done.set()

                future.add_done_callback(_finish_cb)
                pending.append(completed)
            else:
                pending.append((request_id, workload, strategy, timeout, future))
        if streaming:
            for completed in pending:
                completed.wait()
        else:
            for request_id, workload, strategy, timeout, future in pending:
                finish(request_id, workload, strategy, timeout, future.result())
        if args.stats:
            emit({"stats": service.stats().as_dict()})
    finally:
        service.shutdown()
        if close_in:
            in_stream.close()
        if close_out:
            out_stream.close()
    return 1 if failures else 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name, file=out)
        return 0
    if args.command == "optimize":
        return _run_optimize(args, out)
    if args.command in ("batch", "serve"):
        return _run_service_stream(args, out, streaming=args.command == "serve")
    return _run_experiment(args.command, args, out)


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    sys.exit(main())
