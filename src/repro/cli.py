"""Command-line entry point for running the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli list
    python -m repro.cli fig5-ec1
    python -m repro.cli plans-table
    python -m repro.cli fig9 --stars 3 --corners 2 --views 1 --size 5000
    python -m repro.cli fig10 --size 10000
    python -m repro.cli parallel-scaling --executor processes --timeout 60
    python -m repro.cli optimize ec2 --stars 2 --corners 3 --views 1 --strategy oqf --workers 4 --executor processes
    python -m repro.cli batch --input requests.jsonl --output results.jsonl --shards 2
    python -m repro.cli serve < requests.jsonl
    python -m repro.cli serve --port 7411 --max-queue-depth 16 --snapshot warm.pkl
    python -m repro.cli client --port 7411 --input requests.jsonl --check
    python -m repro.cli route --backend 127.0.0.1:7411 --backend 127.0.0.1:7412 \\
        --port 7410 --sync-interval 5

The ``fig*`` / ``plans-table`` commands print the same rows the corresponding
figures and tables of the paper report; ``optimize`` runs a single optimizer
invocation on one of the experimental configurations and prints the plans.

``batch`` and ``serve`` run the long-lived :mod:`repro.service` optimizer
service over a JSONL stream of requests (see
:mod:`repro.service.protocol` for the schema, or the README's "Serving
mode" section): ``batch`` reads the whole input, submits everything to the
warm sharded service, and writes one result line per request in input
order; ``serve`` streams — each input line is submitted as it is read and
results are emitted as they complete.  With ``--port``, ``serve`` instead
binds the TCP front end (:mod:`repro.service.server`) and serves the same
protocol over sockets until SIGTERM/SIGINT (graceful drain; ``--snapshot``
makes it come back warm after a restart); ``client`` pipes a JSONL file
through a running server.  With ``--check``, every response is re-verified
against a fresh single-shot :class:`~repro.chase.optimizer.CBOptimizer` run
and the process exits non-zero on any plan-set mismatch (the
``make serve-smoke`` and ``make serve-net-smoke`` targets).

``route`` runs the fleet front end (:mod:`repro.service.fleet`): it
consistent-hashes every request's structural constraint digest across the
``--backend`` ``serve`` processes, re-routes ``overloaded`` responses to
the next replica with capacity instead of shedding them, and (with
``--sync-interval``) periodically relays each backend's chase-cache and
containment-memo deltas to its peers over the ``sync`` protocol op, so a
replica serves warm hits it never computed locally.  ``serve`` takes
``--snapshot-store DIR`` to boot from (and keep feeding) the fleet's
shared per-session snapshot directory.

Observability: ``--trace`` (or ``--trace-log``) threads a span tree through
every request — responses carry it under ``"trace"``; ``--event-log``
streams structured JSONL lifecycle events; ``serve --port ... --http-port``
additionally binds the HTTP sidecar (``/metrics`` in Prometheus text
format, ``/healthz``, ``/readyz``, ``/stats``, ``/traces``) and
``obs-check`` scrapes a running sidecar and exits non-zero unless every
stats gauge and the stage-latency histograms are exposed (the
``make serve-obs-smoke`` target).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading

from repro.experiments import figures
from repro.service.protocol import (
    WORKLOAD_BUILDERS,
    decode_request as _decode_request,
    encode_response as _encode_response,
    error_record,
    obs_check_record,
    overloaded_record,
    plan_digest as _plan_digest,
    serving_record,
    stats_record,
)
from repro.workloads import build_ec1, build_ec2, build_ec3

#: Experiment name -> (driver, keyword arguments it understands).
EXPERIMENTS = {
    "fig5-ec1": (figures.figure5_ec1, ()),
    "fig5-ec2": (figures.figure5_ec2, ()),
    "fig5-ec3": (figures.figure5_ec3, ()),
    "plans-table": (figures.plans_table_ec2, ("timeout",)),
    "fig6-ec1": (figures.figure6_ec1, ("timeout",)),
    "fig6-ec3": (figures.figure6_ec3, ("timeout",)),
    "fig7-ec2": (figures.figure7_ec2, ("timeout",)),
    "fig8": (figures.figure8_granularity, ("timeout",)),
    "fig9": (figures.figure9_plan_detail, ("stars", "corners", "views", "size", "timeout")),
    "fig10": (figures.figure10_time_reduction, ("size", "timeout")),
    "parallel-scaling": (
        figures.parallel_backchase_scaling,
        ("stars", "corners", "views", "timeout", "workers", "executor"),
    ),
    "service-throughput": (
        figures.service_throughput,
        ("timeout", "workers", "shards", "repeats"),
    ),
    "warm-restart": (
        figures.warm_restart,
        ("timeout", "workers", "shards", "repeats"),
    ),
    "crash-recovery": (
        figures.crash_recovery,
        ("timeout", "workers", "shards", "repeats"),
    ),
    "stage-breakdown": (
        figures.stage_breakdown,
        ("timeout", "shards", "repeats"),
    ),
}


def build_parser():
    """Build the argparse parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'A Chase Too Far?' (SIGMOD 2000)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name, (_, accepted) in EXPERIMENTS.items():
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_common_options(experiment)
        if "workers" in accepted:
            _add_parallel_options(experiment)
        if "shards" in accepted:
            experiment.add_argument(
                "--shards", type=int, default=None, help="service shard count"
            )
            experiment.add_argument(
                "--repeats", type=int, default=None, help="repetitions of the request mix"
            )

    optimize = subparsers.add_parser(
        "optimize", help="run one optimizer invocation on a workload and print the plans"
    )
    optimize.add_argument("workload", choices=["ec1", "ec2", "ec3"])
    optimize.add_argument("--strategy", choices=["fb", "oqf", "ocs"], default="fb")
    _add_common_options(optimize)
    _add_parallel_options(optimize)
    optimize.add_argument("--relations", type=int, default=3, help="EC1: number of relations")
    optimize.add_argument(
        "--secondary-indexes", type=int, default=0, help="EC1: number of secondary indexes"
    )
    optimize.add_argument("--classes", type=int, default=3, help="EC3: number of classes")
    optimize.add_argument("--asrs", type=int, default=0, help="EC3: number of ASRs")

    for name, streaming in (("batch", False), ("serve", True)):
        command = subparsers.add_parser(
            name,
            help=(
                "run a JSONL request stream through the warm optimizer service "
                + ("(streaming; --port binds the TCP front end instead)"
                   if streaming
                   else "(collect all, emit in input order)")
            ),
        )
        _add_service_options(command)
        if streaming:
            command.add_argument(
                "--port",
                type=int,
                default=None,
                help="serve the JSONL protocol over TCP on this port instead of "
                "stdin/stdout (0 = OS-assigned; run until SIGTERM/SIGINT, then drain)",
            )
            command.add_argument(
                "--host", default="127.0.0.1", help="bind address for --port mode"
            )
            command.add_argument(
                "--port-file",
                default=None,
                help="write the bound port to this file once listening "
                "(for scripts using --port 0)",
            )
            command.add_argument(
                "--snapshot-interval",
                type=float,
                default=None,
                help="with --port and --snapshot: background snapshot period "
                "(s) — a kill -9 loses at most this much warm state; SIGUSR1 "
                "triggers one immediately (default: snapshot at drain only)",
            )
            command.add_argument(
                "--http-port",
                type=int,
                default=None,
                help="with --port: also bind the HTTP observability sidecar "
                "(/metrics, /healthz, /readyz, /stats, /traces) on this port "
                "(0 = OS-assigned); implies --trace",
            )
            command.add_argument(
                "--http-port-file",
                default=None,
                help="write the sidecar's bound port to this file once "
                "listening (for scripts using --http-port 0)",
            )

    obs_check = subparsers.add_parser(
        "obs-check",
        help="scrape a running observability sidecar and verify /metrics "
        "covers every stats gauge (plus health/readiness/stats/traces)",
    )
    obs_check.add_argument("--host", default="127.0.0.1", help="sidecar address")
    obs_check.add_argument("--port", type=int, required=True, help="sidecar HTTP port")
    obs_check.add_argument(
        "--timeout", type=float, default=10.0, help="per-endpoint fetch timeout (s)"
    )

    route = subparsers.add_parser(
        "route",
        help="run the fleet router: consistent-hash requests across backend "
        "servers, re-route overloads, periodically exchange warm caches",
    )
    route.add_argument(
        "--backend",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a backend `serve --port` process (repeat once per backend)",
    )
    route.add_argument("--host", default="127.0.0.1", help="bind address")
    route.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 = OS-assigned; run until SIGTERM/SIGINT, then drain)",
    )
    route.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening "
        "(for scripts using --port 0)",
    )
    route.add_argument(
        "--sync-interval",
        type=float,
        default=None,
        help="seconds between cache/memo exchange rounds across the backends "
        "(default: no background exchange)",
    )
    route.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="backend connect timeout (s) before failing over to the next "
        "replica on the ring",
    )
    route.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request backend round-trip budget (s)",
    )
    route.add_argument(
        "--ring-replicas",
        type=int,
        default=64,
        help="virtual points per backend on the consistent-hash ring",
    )
    route.add_argument(
        "--route-workers",
        type=int,
        default=16,
        help="concurrent routing workers (pipelined lines per connection)",
    )
    route.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also bind the HTTP observability sidecar (/metrics, /healthz, "
        "/readyz, /stats) for the router gauges (0 = OS-assigned)",
    )
    route.add_argument(
        "--http-port-file",
        default=None,
        help="write the sidecar's bound port to this file once listening",
    )
    route.add_argument(
        "--event-log",
        default=None,
        help="append structured JSONL routing events (route.reroute, "
        "route.failover, route.shed, sync.round) to this file ('-' = stderr)",
    )
    route.add_argument(
        "--stats",
        action="store_true",
        help="print a final JSONL line with the router's gauges at drain",
    )

    client = subparsers.add_parser(
        "client", help="pipe a JSONL request file through a running TCP server"
    )
    client.add_argument("--host", default="127.0.0.1", help="server address")
    client.add_argument("--port", type=int, required=True, help="server port")
    client.add_argument(
        "--input", default="-", help="JSONL request file ('-' = stdin, the default)"
    )
    client.add_argument(
        "--output", default="-", help="JSONL result file ('-' = stdout, the default)"
    )
    client.add_argument(
        "--timeout", type=float, default=None, help="default per-request budget (s)"
    )
    client.add_argument(
        "--check",
        action="store_true",
        help="re-verify every response against a fresh single-shot optimize "
        "(exit non-zero on any plan-set mismatch, error or overload)",
    )
    client.add_argument(
        "--stats",
        action="store_true",
        help="append a final JSONL line with the server's service-wide stats",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=0,
        help="replays per request on transient failures (connection reset, "
        "torn frames, overload) with capped exponential backoff (default: 0)",
    )
    client.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        help="initial retry backoff in seconds (doubles per attempt)",
    )
    client.add_argument(
        "--backoff-max",
        type=float,
        default=2.0,
        help="backoff cap in seconds",
    )
    client.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="overall wall-clock budget (s) across all attempts of a request",
    )
    return parser


def _add_common_options(subparser):
    subparser.add_argument("--stars", type=int, default=None, help="EC2: number of stars")
    subparser.add_argument("--corners", type=int, default=None, help="EC2: corners per star")
    subparser.add_argument("--views", type=int, default=None, help="EC2: views per star")
    subparser.add_argument("--size", type=int, default=None, help="tuples per relation")
    subparser.add_argument("--timeout", type=float, default=None, help="backchase timeout (s)")


def _add_parallel_options(subparser):
    """Parallelism knobs, only on the subcommands that honour them."""
    subparser.add_argument(
        "--workers", type=int, default=None, help="worker count for the parallel backchase"
    )
    subparser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="how to fan out the backchase lattice and OQF/OCS stages",
    )


def _add_service_options(subparser):
    subparser.add_argument(
        "--input", default="-", help="JSONL request file ('-' = stdin, the default)"
    )
    subparser.add_argument(
        "--output", default="-", help="JSONL result file ('-' = stdout, the default)"
    )
    subparser.add_argument("--shards", type=int, default=1, help="service shard count")
    subparser.add_argument(
        "--executor",
        choices=["serial", "threads"],
        default="threads",
        help="wave executor of every shard (process pools cannot share warm caches)",
    )
    subparser.add_argument(
        "--workers", type=int, default=None, help="worker threads per shard scheduler"
    )
    subparser.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent requests per shard"
    )
    subparser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="admission bound per shard: requests past it get a typed "
        "'overloaded' response instead of queueing (default: unbounded)",
    )
    subparser.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        help="LRU bound per chase cache (default: unbounded)",
    )
    subparser.add_argument(
        "--max-memo-entries",
        type=int,
        default=None,
        help="LRU bound per containment memo (default: unbounded)",
    )
    subparser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="LRU bound on warm sessions per shard (default: unbounded)",
    )
    subparser.add_argument(
        "--snapshot",
        default=None,
        help="cache snapshot file: loaded at startup when it exists (an "
        "unusable or stale snapshot degrades to a cold start, never a "
        "crash), saved at shutdown (warm restarts)",
    )
    subparser.add_argument(
        "--snapshot-store",
        default=None,
        metavar="DIR",
        help="shared fleet snapshot directory (one atomic file per "
        "constraint digest): restored at startup, saved at shutdown — and "
        "with --snapshot-interval, periodically; any fleet member's saves "
        "warm every other member's next boot",
    )
    subparser.add_argument(
        "--overload-retry-after",
        type=float,
        default=None,
        help="backoff hint (s) attached to 'overloaded' responses so "
        "retrying clients wait exactly this long",
    )
    subparser.add_argument(
        "--fault-spec",
        default=None,
        help="fault injection spec 'site:prob[:times],...' (sites: "
        "server.read, server.write, shard.execute, snapshot.write, "
        "snapshot.read; suffix the site with '!' to crash the runner "
        "instead) — chaos testing only",
    )
    subparser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault-injection streams",
    )
    subparser.add_argument(
        "--timeout", type=float, default=None, help="default per-request budget (s)"
    )
    subparser.add_argument(
        "--check",
        action="store_true",
        help="re-verify every response against a fresh single-shot optimize "
        "(exit non-zero on any plan-set mismatch)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="append a final JSONL line with the service-wide stats",
    )
    subparser.add_argument(
        "--trace",
        action="store_true",
        help="thread a span tree through every request (stages: "
        "admission_wait, queue_wait, chase, containment, restrict, "
        "serialize); responses carry it under 'trace'",
    )
    subparser.add_argument(
        "--trace-log",
        default=None,
        help="append every finished span tree to this JSONL file "
        "(implies --trace)",
    )
    subparser.add_argument(
        "--trace-ring",
        type=int,
        default=256,
        help="finished traces kept in memory for /traces (default: 256)",
    )
    subparser.add_argument(
        "--event-log",
        default=None,
        help="append structured JSONL lifecycle events (request "
        "admitted/rejected/completed, runner crash/restart, snapshot "
        "save/load/fail) to this file ('-' = stderr)",
    )


def _experiment_kwargs(args, accepted):
    kwargs = {}
    for name in accepted:
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _run_experiment(name, args, out):
    driver, accepted = EXPERIMENTS[name]
    result = driver(**_experiment_kwargs(args, accepted))
    print(result.render(), file=out)
    return 0


def _build_workload(args):
    if args.workload == "ec1":
        return build_ec1(args.relations, args.secondary_indexes)
    if args.workload == "ec2":
        return build_ec2(args.stars or 2, args.corners or 3, args.views or 1)
    return build_ec3(args.classes, args.asrs)


def _resolve_workers(workers, executor):
    """Resolve the ``--workers`` default for a requested executor.

    ``serial`` always means one worker — also when ``--executor serial`` is
    passed explicitly with ``--workers`` omitted (historically that
    combination fell through to CPU-count semantics).  For the pooled
    executors an omitted ``--workers`` keeps meaning "CPU count" (``None``).
    """
    if workers is not None:
        return workers
    return 1 if executor == "serial" else None


def _run_optimize(args, out):
    workload = _build_workload(args)
    executor = args.executor or "serial"
    workers = _resolve_workers(args.workers, executor)
    optimizer = workload.optimizer(timeout=args.timeout, workers=workers, executor=executor)
    result = optimizer.optimize(workload.query, strategy=args.strategy)
    print(
        f"{args.workload.upper()} {workload.params}: {result.plan_count} plans "
        f"in {result.total_time:.3f}s with {args.strategy.upper()} "
        f"({result.subqueries_explored} subqueries explored, "
        f"executor {result.executor} x{result.workers}"
        f"{', timed out' if result.timed_out else ''})",
        file=out,
    )
    for number, plan in enumerate(result.plans, start=1):
        print(f"--- plan {number}: {plan.describe(workload.catalog)}", file=out)
        print(plan.query, file=out)
    return 0


# ---------------------------------------------------------------------- #
# JSONL serving (the `batch` / `serve` / `client` subcommands; the codec
# itself lives in repro.service.protocol, shared with the socket front end)
# ---------------------------------------------------------------------- #
def _check_against_single_shot(workload, strategy, timeout, response):
    """Re-run the request single-shot and compare plan signature sets."""
    if not response.ok:
        return False
    optimizer = workload.optimizer(timeout=timeout)
    fresh = optimizer.optimize(workload.query, strategy=strategy)
    return {plan.signature() for plan in fresh.plans} == {
        plan.signature() for plan in response.result.plans
    }


def _open_maybe(path, mode, fallback):
    if path == "-":
        return fallback, False
    return open(path, mode, encoding="utf-8"), True


def _build_event_log(args):
    """The ``--event-log`` JSONL stream (``'-'`` = stderr), or ``None``."""
    from repro.service import EventLog

    spec = getattr(args, "event_log", None)
    if not spec:
        return None
    if spec == "-":
        return EventLog(stream=sys.stderr)
    return EventLog(path=spec)


def _build_tracer(args):
    """The request tracer, when any observability flag asks for one."""
    from repro.service import Tracer

    wanted = (
        getattr(args, "trace", False)
        or getattr(args, "trace_log", None)
        or getattr(args, "http_port", None) is not None
    )
    if not wanted:
        return None
    return Tracer(
        ring_size=getattr(args, "trace_ring", 256),
        trace_log=getattr(args, "trace_log", None),
    )


def _close_observability(service):
    """Release the trace-log / event-log streams a CLI run opened."""
    if service.tracer is not None:
        service.tracer.close()
    if service.event_log is not None:
        service.event_log.close()


def _build_service(args):
    """Construct the optimizer service from the shared service flags,
    loading the ``--snapshot`` file when one exists (warm restart).

    Snapshot recovery never crashes the boot: a corrupt, truncated,
    wrong-version or otherwise unusable snapshot is reported as a
    ``snapshot.unusable`` event (on the ``--event-log`` stream when one is
    configured, else stderr) and the service cold-starts (the recovery is
    counted in the stats)."""
    from repro.service import EventLog, FaultInjector, OptimizerService, log_event

    fault_injector = None
    if getattr(args, "fault_spec", None):
        fault_injector = FaultInjector.from_spec(args.fault_spec, seed=args.fault_seed)
    service = OptimizerService(
        shards=args.shards,
        executor=args.executor,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        max_cache_entries=args.max_cache_entries,
        max_memo_entries=args.max_memo_entries,
        max_sessions=args.max_sessions,
        default_timeout=args.timeout,
        overload_retry_after=getattr(args, "overload_retry_after", None),
        fault_injector=fault_injector,
        tracer=_build_tracer(args),
        event_log=_build_event_log(args),
    )
    # The exists() guard keeps a first boot (no snapshot yet) from counting
    # as a recovery; every other load failure degrades to a cold start.
    if args.snapshot and os.path.exists(args.snapshot):
        restored, error = service.recover_caches(args.snapshot)
        if error is not None and service.event_log is None:
            # With --event-log the service itself already emitted
            # snapshot.recovered; without one the warning still must reach
            # the operator, as the same structured record on stderr.
            log_event(
                EventLog(stream=sys.stderr),
                "snapshot.unusable",
                path=args.snapshot,
                error=str(error),
                action="starting cold",
            )
    if getattr(args, "snapshot_store", None):
        from repro.service.fleet import SnapshotStore

        # Per-file degradation inside restore(): a stale or unreadable
        # session file cold-starts that one catalog, never the boot.
        SnapshotStore(args.snapshot_store).restore(service)
    return service


def _save_snapshot(service, args):
    if args.snapshot:
        service.save_caches(args.snapshot)
    if getattr(args, "snapshot_store", None):
        from repro.service.fleet import SnapshotStore, StoreSaver

        store = SnapshotStore(args.snapshot_store)
        StoreSaver(service, store).save_caches(store.root)


class _StreamEmitter:  # repro-lint: ignore[pickle-safety] never pickled — wraps a live output stream for one CLI run
    """Serialised JSONL output + failure accounting for the stream modes.

    Completion callbacks run on shard runner threads concurrently with the
    main submission loop, so the output stream *and* the failure list are
    owned here, behind one lock (previously an ad-hoc ``write_lock`` local
    guarded the stream while the failure list was appended bare — exactly
    the pattern repro-lint's lock-discipline rule now rejects).
    """

    def __init__(self, stream):
        self.stream = stream  # guarded-by: _lock
        self._failures = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def emit(self, record):
        with self._lock:
            print(json.dumps(record), file=self.stream)
            self.stream.flush()

    def record_failure(self, request_id):
        with self._lock:
            self._failures.append(request_id)

    @property
    def failed(self):
        with self._lock:
            return bool(self._failures)


def _run_service_stream(args, out, streaming):
    """Drive the optimizer service from a JSONL stream (batch and serve)."""
    from repro.errors import ServiceOverloaded

    in_stream, close_in = _open_maybe(args.input, "r", sys.stdin)
    out_stream, close_out = _open_maybe(args.output, "w", out)
    emitter = _StreamEmitter(out_stream)

    def finish(request_id, workload, strategy, timeout, response):
        checked = None
        if args.check:
            checked = _check_against_single_shot(workload, strategy, timeout, response)
            if not checked:
                emitter.record_failure(request_id)
        if not response.ok:
            emitter.record_failure(request_id)
        emitter.emit(_encode_response(request_id, workload, strategy, response, checked))

    service = _build_service(args)
    try:
        pending = []
        for number, line in enumerate(in_stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request_id, workload, strategy, timeout = _decode_request(line, number)
            except (ValueError, TypeError) as error:
                emitter.record_failure(number)
                emitter.emit(error_record(number, error))
                continue
            try:
                future = service.submit(
                    workload.query,
                    strategy=strategy,
                    catalog=workload.catalog,
                    timeout=timeout,
                    request_id=request_id,
                )
            except ServiceOverloaded as error:
                # Shed load: a typed response, not a failure — the client is
                # expected to back off and retry (with --check there is no
                # plan set to verify, so it counts against the exit code).
                if args.check:
                    emitter.record_failure(request_id)
                emitter.emit(overloaded_record(request_id, error))
                continue
            if streaming:
                # The completion event guards the shutdown path: a future's
                # waiters wake *before* its done-callbacks run, so waiting on
                # the futures alone would let the main thread emit --stats,
                # compute the exit code and close the streams while a
                # callback is still writing its result line.
                completed = threading.Event()

                def _finish_cb(
                    f,
                    rid=request_id,
                    w=workload,
                    s=strategy,
                    t=timeout,
                    done=completed,
                ):
                    try:
                        finish(rid, w, s, t, f.result())
                    except Exception:  # noqa: BLE001 - never lose the exit code
                        emitter.record_failure(rid)
                    finally:
                        done.set()

                future.add_done_callback(_finish_cb)
                pending.append(completed)
            else:
                pending.append((request_id, workload, strategy, timeout, future))
        if streaming:
            for completed in pending:
                completed.wait()
        else:
            for request_id, workload, strategy, timeout, future in pending:
                finish(request_id, workload, strategy, timeout, future.result())
        if args.stats:
            emitter.emit(stats_record(service.stats().as_dict()))
        _save_snapshot(service, args)
    finally:
        service.shutdown()
        _close_observability(service)
        if close_in:
            in_stream.close()
        if close_out:
            out_stream.close()
    return 1 if emitter.failed else 0


def _run_socket_server(args, out):
    """Bind the TCP front end and serve until SIGTERM/SIGINT, then drain."""
    from repro.service import OptimizerServer

    # These flags belong to the stdin/stdout streaming mode (or the client
    # subcommand); silently ignoring them would let a user believe their
    # requests were processed or verified when nothing happened.
    unsupported = []
    if args.check:
        unsupported.append("--check (use `repro.cli client --check` against the server)")
    if args.input != "-":
        unsupported.append("--input (pipe it through `repro.cli client --input ...`)")
    if args.output != "-":
        unsupported.append("--output (responses go to the sockets)")
    if unsupported:
        print(
            "serve --port does not support: " + "; ".join(unsupported), file=sys.stderr
        )
        return 2

    service = _build_service(args)
    stop = threading.Event()

    def _signal_handler(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _signal_handler)
        except ValueError:  # not the main thread (e.g. under a test runner)
            pass
    managers = []
    if args.snapshot or args.snapshot_store:
        from repro.service import EventLog, SnapshotManager

        # Snapshot failures go to the structured event log (snapshot.failed
        # events) — to the --event-log stream when one is configured, else
        # as the same JSONL records on stderr (replacing the old ad-hoc
        # "warning: snapshot failed" print).
        snapshot_events = service.event_log or EventLog(stream=sys.stderr)
        if args.snapshot:
            managers.append(
                SnapshotManager(
                    service,
                    args.snapshot,
                    interval=args.snapshot_interval,
                    event_log=snapshot_events,
                )
            )
        if args.snapshot_store:
            from repro.service.fleet import SnapshotStore, StoreSaver

            # The StoreSaver facade fans save_caches() out into the shared
            # per-session store, so the manager's periodic loop, SIGUSR1
            # trigger and drain-time save all feed the fleet directory.
            store = SnapshotStore(args.snapshot_store)
            managers.append(
                SnapshotManager(
                    StoreSaver(service, store),
                    store.root,
                    interval=args.snapshot_interval,
                    event_log=snapshot_events,
                )
            )
        managers[0].install_signal_handler()  # SIGUSR1 -> snapshot now
        if len(managers) > 1 and hasattr(signal, "SIGUSR1"):
            # One SIGUSR1 must snapshot *every* target; managers[0] keeps
            # the pre-install handler for restore_signal_handler().
            def _snapshot_all(signum, frame, targets=tuple(managers)):
                for target in targets:
                    target.trigger()

            try:
                signal.signal(signal.SIGUSR1, _snapshot_all)
            except ValueError:  # not the main thread
                pass
        for manager in managers:
            manager.start()  # periodic loop (no-op without --snapshot-interval)
    observability = None
    if args.http_port is not None:
        from repro.service import ObservabilityServer

        observability = ObservabilityServer(
            service, tracer=service.tracer, host=args.host, port=args.http_port
        )
    server = OptimizerServer(service, host=args.host, port=args.port)
    try:
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(str(server.port))
        if observability is not None and args.http_port_file:
            with open(args.http_port_file, "w", encoding="utf-8") as handle:
                handle.write(str(observability.port))
        print(
            json.dumps(serving_record(server.address[0], server.port)),
            file=out,
            flush=True,
        )
        stop.wait()
        server.stop(drain=True)
        for manager in managers:
            manager.stop(final_save=True)  # drain-time snapshot
        if args.stats:
            print(
                json.dumps(stats_record(service.stats().as_dict())),
                file=out,
                flush=True,
            )
    finally:
        server.stop(drain=False)  # idempotent; covers the exception path
        if observability is not None:
            observability.stop()
        for manager in managers:
            manager.stop(final_save=False)  # idempotent; exception path
        if managers:
            managers[0].restore_signal_handler()
        service.shutdown()
        _close_observability(service)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _run_route(args, out):
    """Bind the fleet router and serve until SIGTERM/SIGINT, then drain.

    The router speaks the same JSONL protocol as ``serve --port``, so
    existing clients point at it unchanged; behind it, each request's
    structural constraint digest picks the backend (and the failover
    order) on the consistent-hash ring.
    """
    from repro.service.fleet import FleetRouter

    event_log = _build_event_log(args)
    router = FleetRouter(
        args.backend,
        host=args.host,
        port=args.port,
        connect_timeout=args.connect_timeout,
        request_timeout=args.timeout,
        ring_replicas=args.ring_replicas,
        route_workers=args.route_workers,
        event_log=event_log,
    )
    stop = threading.Event()

    def _signal_handler(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _signal_handler)
        except ValueError:  # not the main thread (e.g. under a test runner)
            pass
    observability = None
    try:
        if args.sync_interval is not None:
            router.attach_exchanger(interval=args.sync_interval)
        if args.http_port is not None:
            from repro.service import ObservabilityServer

            # RouterStats mirrors the as_dict()/shards surface the sidecar
            # scrapes, so /metrics and /stats expose the routing gauges; the
            # readiness override flips /readyz once no backend is healthy.
            observability = ObservabilityServer(
                router,
                host=args.host,
                port=args.http_port,
                readiness=router.readiness,
            )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(str(router.port))
        if observability is not None and args.http_port_file:
            with open(args.http_port_file, "w", encoding="utf-8") as handle:
                handle.write(str(observability.port))
        print(
            json.dumps(serving_record(router.address[0], router.port)),
            file=out,
            flush=True,
        )
        stop.wait()
        router.stop(drain=True)
        if args.stats:
            print(
                json.dumps(stats_record(router.stats().as_dict())),
                file=out,
                flush=True,
            )
    finally:
        router.stop(drain=False)  # idempotent; covers the exception path
        if observability is not None:
            observability.stop()
        if event_log is not None:
            event_log.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _run_client(args, out):
    """Pipe a JSONL request file through a running TCP server.

    Requests are validated (and only with ``--check`` actually *built* —
    the server constructs the workloads anyway, so the client stays cheap),
    pipelined onto one connection, and reported in input order.
    """
    from repro.errors import ProtocolError
    from repro.service import OptimizerClient
    from repro.service.protocol import WORKLOAD_BUILDERS

    transient = (ProtocolError, ConnectionError, OSError)
    in_stream, close_in = _open_maybe(args.input, "r", sys.stdin)
    out_stream, close_out = _open_maybe(args.output, "w", out)
    failures = []
    try:
        with OptimizerClient(
            host=args.host,
            port=args.port,
            retries=args.retries,
            backoff_base=args.backoff_base,
            backoff_max=args.backoff_max,
            deadline=args.deadline,
        ) as client:
            pending = []
            for number, line in enumerate(in_stream, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    record = json.loads(line)
                    request_id, _, strategy, timeout = _decode_request(
                        record, number, build=False
                    )
                except (ValueError, TypeError) as error:
                    failures.append(number)
                    print(json.dumps(error_record(number, error)), file=out_stream)
                    continue
                record.setdefault("id", request_id)
                if timeout is None and args.timeout is not None:
                    record["timeout"] = timeout = args.timeout
                try:
                    future = client.submit(record)
                except transient:
                    if not args.retries:
                        raise
                    future = None  # replay in the gather pass
                pending.append((request_id, record, strategy, timeout, future))
            for request_id, record, strategy, timeout, future in pending:
                if future is None:
                    response = client.request(record)
                else:
                    try:
                        response = future.result()
                    except transient:
                        if not args.retries:
                            raise
                        response = client.request(record)
                if response.get("status") == "overloaded" and args.retries:
                    response = client.request(record)
                status = response.get("status")
                if status == "error":
                    failures.append(request_id)
                elif status == "overloaded" and args.check:
                    failures.append(request_id)
                elif args.check and status == "ok":
                    builder, _ = WORKLOAD_BUILDERS[record["workload"]]
                    workload = builder(**(record.get("params") or {}))
                    fresh = workload.optimizer(timeout=timeout).optimize(
                        workload.query, strategy=strategy
                    )
                    checked = _plan_digest(fresh.plans) == response.get("plan_digests")
                    response["matches_single_shot"] = checked
                    if not checked:
                        failures.append(request_id)
                print(json.dumps(response), file=out_stream)
                out_stream.flush()
            if args.stats:
                print(json.dumps(stats_record(client.stats())), file=out_stream, flush=True)
    finally:
        if close_in:
            in_stream.close()
        if close_out:
            out_stream.close()
    return 1 if failures else 0


def _run_obs_check(args, out):
    """Scrape a running observability sidecar and verify its coverage.

    The check is exhaustive by construction: the expected gauge families
    come from the *live* ``ServiceStats().as_dict()`` mapping, so a field
    added to the stats surface fails the check until ``/metrics`` carries
    it.  Exit code 0 iff every endpoint answers and every family is there.
    """
    import urllib.error
    import urllib.request

    from repro.service.metrics import ServiceStats
    from repro.service.observability.httpd import PROMETHEUS_CONTENT_TYPE

    base = f"http://{args.host}:{args.port}"
    problems = []

    def fetch(path):
        with urllib.request.urlopen(base + path, timeout=args.timeout) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )

    try:
        status, _, body = fetch("/healthz")
        if status != 200 or body.strip() != "ok":
            problems.append(f"/healthz: status {status}, body {body!r}")
        status, _, body = fetch("/readyz")
        ready = json.loads(body)
        if status != 200 or not ready.get("ready"):
            problems.append(f"/readyz: status {status}, body {body!r}")
        expected = ServiceStats().as_dict()
        status, _, body = fetch("/stats")
        stats = json.loads(body)
        missing = sorted(set(expected) - set(stats))
        if status != 200 or missing:
            problems.append(f"/stats: status {status}, missing fields {missing}")
        status, content_type, body = fetch("/metrics")
        if status != 200:
            problems.append(f"/metrics: status {status}")
        if content_type != PROMETHEUS_CONTENT_TYPE:
            problems.append(f"/metrics: content type {content_type!r}")
        for key in expected:
            if f"repro_{key} " not in body:
                problems.append(f"/metrics: gauge repro_{key} missing")
        if "repro_stage_latency_seconds_bucket" not in body:
            problems.append("/metrics: stage latency histograms missing")
        status, _, body = fetch("/traces")
        if status != 200 or not json.loads(body).get("traces"):
            problems.append(f"/traces: status {status}, body {body[:120]!r}")
    except (urllib.error.URLError, OSError, ValueError) as error:
        problems.append(f"scrape failed: {error}")
    for problem in problems:
        print(f"obs-check: {problem}", file=sys.stderr)
    print(json.dumps(obs_check_record(problems)), file=out)
    return 1 if problems else 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name, file=out)
        return 0
    if args.command == "optimize":
        return _run_optimize(args, out)
    if args.command == "route":
        return _run_route(args, out)
    if args.command == "client":
        return _run_client(args, out)
    if args.command == "obs-check":
        return _run_obs_check(args, out)
    if args.command == "serve" and args.port is not None:
        return _run_socket_server(args, out)
    if args.command in ("batch", "serve"):
        return _run_service_stream(args, out, streaming=args.command == "serve")
    return _run_experiment(args.command, args, out)


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    sys.exit(main())
