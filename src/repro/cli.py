"""Command-line entry point for running the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli list
    python -m repro.cli fig5-ec1
    python -m repro.cli plans-table
    python -m repro.cli fig9 --stars 3 --corners 2 --views 1 --size 5000
    python -m repro.cli fig10 --size 10000
    python -m repro.cli parallel-scaling --executor processes --timeout 60
    python -m repro.cli optimize ec2 --stars 2 --corners 3 --views 1 --strategy oqf --workers 4 --executor processes

The ``fig*`` / ``plans-table`` commands print the same rows the corresponding
figures and tables of the paper report; ``optimize`` runs a single optimizer
invocation on one of the experimental configurations and prints the plans.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures
from repro.workloads import build_ec1, build_ec2, build_ec3

#: Experiment name -> (driver, keyword arguments it understands).
EXPERIMENTS = {
    "fig5-ec1": (figures.figure5_ec1, ()),
    "fig5-ec2": (figures.figure5_ec2, ()),
    "fig5-ec3": (figures.figure5_ec3, ()),
    "plans-table": (figures.plans_table_ec2, ("timeout",)),
    "fig6-ec1": (figures.figure6_ec1, ("timeout",)),
    "fig6-ec3": (figures.figure6_ec3, ("timeout",)),
    "fig7-ec2": (figures.figure7_ec2, ("timeout",)),
    "fig8": (figures.figure8_granularity, ("timeout",)),
    "fig9": (figures.figure9_plan_detail, ("stars", "corners", "views", "size", "timeout")),
    "fig10": (figures.figure10_time_reduction, ("size", "timeout")),
    "parallel-scaling": (
        figures.parallel_backchase_scaling,
        ("stars", "corners", "views", "timeout", "workers", "executor"),
    ),
}


def build_parser():
    """Build the argparse parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'A Chase Too Far?' (SIGMOD 2000)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name, (_, accepted) in EXPERIMENTS.items():
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_common_options(experiment)
        if "workers" in accepted:
            _add_parallel_options(experiment)

    optimize = subparsers.add_parser(
        "optimize", help="run one optimizer invocation on a workload and print the plans"
    )
    optimize.add_argument("workload", choices=["ec1", "ec2", "ec3"])
    optimize.add_argument("--strategy", choices=["fb", "oqf", "ocs"], default="fb")
    _add_common_options(optimize)
    _add_parallel_options(optimize)
    optimize.add_argument("--relations", type=int, default=3, help="EC1: number of relations")
    optimize.add_argument(
        "--secondary-indexes", type=int, default=0, help="EC1: number of secondary indexes"
    )
    optimize.add_argument("--classes", type=int, default=3, help="EC3: number of classes")
    optimize.add_argument("--asrs", type=int, default=0, help="EC3: number of ASRs")
    return parser


def _add_common_options(subparser):
    subparser.add_argument("--stars", type=int, default=None, help="EC2: number of stars")
    subparser.add_argument("--corners", type=int, default=None, help="EC2: corners per star")
    subparser.add_argument("--views", type=int, default=None, help="EC2: views per star")
    subparser.add_argument("--size", type=int, default=None, help="tuples per relation")
    subparser.add_argument("--timeout", type=float, default=None, help="backchase timeout (s)")


def _add_parallel_options(subparser):
    """Parallelism knobs, only on the subcommands that honour them."""
    subparser.add_argument(
        "--workers", type=int, default=None, help="worker count for the parallel backchase"
    )
    subparser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="how to fan out the backchase lattice and OQF/OCS stages",
    )


def _experiment_kwargs(args, accepted):
    kwargs = {}
    for name in accepted:
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _run_experiment(name, args, out):
    driver, accepted = EXPERIMENTS[name]
    result = driver(**_experiment_kwargs(args, accepted))
    print(result.render(), file=out)
    return 0


def _build_workload(args):
    if args.workload == "ec1":
        return build_ec1(args.relations, args.secondary_indexes)
    if args.workload == "ec2":
        return build_ec2(args.stars or 2, args.corners or 3, args.views or 1)
    return build_ec3(args.classes, args.asrs)


def _run_optimize(args, out):
    workload = _build_workload(args)
    executor = args.executor or "serial"
    # An omitted --workers means "CPU count" once a pooled executor is
    # requested, and plain single-worker serial otherwise.
    workers = args.workers if args.workers is not None else (None if args.executor else 1)
    optimizer = workload.optimizer(timeout=args.timeout, workers=workers, executor=executor)
    result = optimizer.optimize(workload.query, strategy=args.strategy)
    print(
        f"{args.workload.upper()} {workload.params}: {result.plan_count} plans "
        f"in {result.total_time:.3f}s with {args.strategy.upper()} "
        f"({result.subqueries_explored} subqueries explored, "
        f"executor {result.executor} x{result.workers}"
        f"{', timed out' if result.timed_out else ''})",
        file=out,
    )
    for number, plan in enumerate(result.plans, start=1):
        print(f"--- plan {number}: {plan.describe(workload.catalog)}", file=out)
        print(plan.query, file=out)
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name, file=out)
        return 0
    if args.command == "optimize":
        return _run_optimize(args, out)
    return _run_experiment(args.command, args, out)


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    sys.exit(main())
