"""The catalog: everything the optimizer needs to know about a database.

A :class:`Catalog` bundles the logical schema, the physical schema, the
compiled constraint set and (optionally) statistics.  It is the single object
handed to :class:`repro.chase.optimizer.CBOptimizer` and to the execution
engine's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.compile import compile_logical_constraints, compile_structure
from repro.schema.logical import LogicalSchema
from repro.schema.physical import PhysicalSchema


@dataclass
class Statistics:
    """Simple statistics used by the cost model.

    Attributes
    ----------
    cardinalities:
        Mapping from collection name to number of tuples / dictionary entries.
    distinct_values:
        Mapping from ``(collection, attribute)`` to the number of distinct
        values, used to estimate equi-join selectivities.
    default_cardinality:
        Fallback cardinality for collections without an entry.
    """

    cardinalities: dict = field(default_factory=dict)
    distinct_values: dict = field(default_factory=dict)
    default_cardinality: int = 1000

    def cardinality(self, name):
        """Return the (estimated) cardinality of collection ``name``."""
        return self.cardinalities.get(name, self.default_cardinality)

    def set_cardinality(self, name, value):
        self.cardinalities[name] = int(value)

    def distinct(self, name, attribute):
        """Return the number of distinct values of ``name.attribute``."""
        return self.distinct_values.get((name, attribute), max(1, self.cardinality(name) // 10))

    def set_distinct(self, name, attribute, value):
        self.distinct_values[(name, attribute)] = int(value)

    def selectivity(self, name, attribute):
        """Return the estimated selectivity of an equality on ``name.attribute``."""
        return 1.0 / max(1, self.distinct(name, attribute))


class Catalog:
    """Logical schema + physical schema + constraints + statistics.

    The catalog exposes a small façade so most callers never touch the
    underlying schema objects directly::

        catalog = Catalog()
        catalog.add_relation("R", ["K", "N", "A"], key=["K"])
        catalog.add_key("R", ["K"])
        catalog.add_primary_index("PI_R", "R", ["K"])
        optimizer = CBOptimizer(catalog)
    """

    def __init__(self, logical=None, physical=None, statistics=None):
        self.logical = logical if logical is not None else LogicalSchema()
        self.physical = physical if physical is not None else PhysicalSchema()
        self.statistics = statistics if statistics is not None else Statistics()
        self._custom_constraints = []

    # ------------------------------------------------------------------ #
    # logical schema façade
    # ------------------------------------------------------------------ #
    def add_relation(self, name, attributes, key=()):
        """Declare a relation in the logical schema."""
        return self.logical.add_relation(name, attributes, key)

    def add_class(self, name, attributes=(), set_attributes=()):
        """Declare an OO class (dictionary collection) in the logical schema."""
        return self.logical.add_class(name, attributes, set_attributes)

    def add_key(self, relation_name, attributes):
        """Declare a key constraint."""
        return self.logical.add_key(relation_name, attributes)

    def add_foreign_key(self, relation_name, attributes, target_name, target_attributes):
        """Declare a referential integrity (foreign key) constraint."""
        return self.logical.add_foreign_key(relation_name, attributes, target_name, target_attributes)

    def add_inverse_relationship(self, class_name, forward_attribute, target_class, backward_attribute):
        """Declare an inverse relationship between two classes."""
        return self.logical.add_inverse_relationship(
            class_name, forward_attribute, target_class, backward_attribute
        )

    # ------------------------------------------------------------------ #
    # physical schema façade
    # ------------------------------------------------------------------ #
    def add_primary_index(self, name, relation, attributes):
        """Declare a primary index."""
        self._require_collection(relation)
        return self.physical.add_primary_index(name, relation, attributes)

    def add_secondary_index(self, name, relation, attributes):
        """Declare a secondary index."""
        self._require_collection(relation)
        return self.physical.add_secondary_index(name, relation, attributes)

    def add_materialized_view(self, name, definition):
        """Declare a materialized view defined by a :class:`PCQuery`."""
        return self.physical.add_materialized_view(name, definition)

    def add_access_support_relation(self, name, definition):
        """Declare an access support relation defined by a navigation query."""
        return self.physical.add_access_support_relation(name, definition)

    def add_dependency(self, dependency):
        """Register a hand-written dependency (validated)."""
        self._custom_constraints.append(dependency.validate())
        return dependency

    def _require_collection(self, name):
        if name not in self.logical:
            raise SchemaError(f"unknown collection {name!r}")

    # ------------------------------------------------------------------ #
    # compiled constraint views
    # ------------------------------------------------------------------ #
    def skeletons(self):
        """Return the skeleton (constraint-pair) of every physical structure."""
        result = []
        for structure in self.physical.structures.values():
            skeleton, _ = compile_structure(structure)
            result.append(skeleton)
        return result

    def physical_constraints(self):
        """Return every constraint describing a physical structure."""
        constraints = []
        for structure in self.physical.structures.values():
            skeleton, extras = compile_structure(structure)
            constraints.extend(skeleton.constraints)
            constraints.extend(extras)
        return constraints

    def semantic_constraints(self):
        """Return every semantic integrity constraint (including custom ones)."""
        return compile_logical_constraints(self.logical) + list(self._custom_constraints)

    def constraints(self):
        """Return the full constraint set used by chase and backchase."""
        return tuple(self.semantic_constraints() + self.physical_constraints())

    def constraint(self, name):
        """Return the constraint with the given name.

        Raises
        ------
        SchemaError
            If no constraint has that name.
        """
        for dependency in self.constraints():
            if dependency.name == name:
                return dependency
        raise SchemaError(f"unknown constraint {name!r}")

    # ------------------------------------------------------------------ #
    # naming helpers
    # ------------------------------------------------------------------ #
    def is_physical_name(self, name):
        """Return ``True`` when ``name`` denotes a physical structure."""
        return name in self.physical

    def is_logical_name(self, name):
        """Return ``True`` when ``name`` denotes a logical collection."""
        return name in self.logical

    def collection_names(self):
        """Return every collection name known to the catalog."""
        return tuple(self.logical.collection_names()) + tuple(self.physical.names())


__all__ = ["Catalog", "Statistics"]
