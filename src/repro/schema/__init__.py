"""Schemas, physical structures and constraints.

* :mod:`repro.schema.constraints` -- embedded path-conjunctive dependencies
  (TGDs and EGDs), the single uniform representation the C&B method uses for
  semantic constraints and physical structures alike.
* :mod:`repro.schema.logical` -- logical schema: relations and OO classes
  (dictionaries) with semantic constraints (keys, foreign keys, inverses).
* :mod:`repro.schema.physical` -- physical schema: primary and secondary
  indexes, materialized views, access support relations.
* :mod:`repro.schema.compile` -- compilation of every structure into its pair
  of inclusion constraints (skeletons) and of semantic declarations into
  dependencies.
* :mod:`repro.schema.catalog` -- the catalog handed to the optimizer: logical
  plus physical schema, all constraints, and statistics.
"""

from repro.schema.catalog import Catalog, Statistics
from repro.schema.constraints import Dependency, Skeleton
from repro.schema.logical import ClassDef, LogicalSchema, Relation
from repro.schema.physical import (
    AccessSupportRelation,
    MaterializedView,
    PhysicalSchema,
    PrimaryIndex,
    SecondaryIndex,
)

__all__ = [
    "AccessSupportRelation",
    "Catalog",
    "ClassDef",
    "Dependency",
    "LogicalSchema",
    "MaterializedView",
    "PhysicalSchema",
    "PrimaryIndex",
    "Relation",
    "SecondaryIndex",
    "Skeleton",
    "Statistics",
]
