"""Compilation of schema declarations into embedded dependencies.

This module is the bridge between the declarative schema objects
(:mod:`repro.schema.logical`, :mod:`repro.schema.physical`) and the uniform
constraint representation the C&B optimizer works with:

* semantic declarations (keys, foreign keys, inverse relationships) become
  single dependencies;
* physical structures (indexes, materialized views, ASRs) become *skeletons*
  -- pairs of complementary inclusion constraints, exactly as in Appendix A
  of the paper.
"""

from __future__ import annotations

from repro.lang.ast import Attr, Binding, Dom, Eq, Lookup, SchemaRef, Var
from repro.schema.constraints import Dependency, Skeleton
from repro.schema.physical import (
    AccessSupportRelation,
    MaterializedView,
    PrimaryIndex,
    SecondaryIndex,
)


# ---------------------------------------------------------------------- #
# semantic constraints
# ---------------------------------------------------------------------- #
def key_dependency(relation_name, attributes, name=None):
    """Key constraint: tuples that agree on ``attributes`` are equal (an EGD)."""
    left, right = Var("r"), Var("r2")
    premise = tuple(Eq(Attr(left, attr), Attr(right, attr)) for attr in attributes)
    return Dependency.create(
        name or f"KEY_{relation_name}",
        universal=(
            Binding("r", SchemaRef(relation_name)),
            Binding("r2", SchemaRef(relation_name)),
        ),
        premise=premise,
        conclusion=(Eq(left, right),),
        kind="semantic",
    ).validate()


def foreign_key_dependency(relation_name, attributes, target_name, target_attributes, name=None):
    """Referential integrity constraint (foreign key), a TGD.

    Every tuple of the source relation has a matching tuple in the target
    relation on the given attribute lists (Example 2.1 of the paper).
    """
    source, target = Var("r"), Var("s")
    conclusion = tuple(
        Eq(Attr(source, src_attr), Attr(target, dst_attr))
        for src_attr, dst_attr in zip(attributes, target_attributes)
    )
    return Dependency.create(
        name or f"FK_{relation_name}_{target_name}",
        universal=(Binding("r", SchemaRef(relation_name)),),
        existential=(Binding("s", SchemaRef(target_name)),),
        conclusion=conclusion,
        kind="semantic",
    ).validate()


def inverse_dependencies(class_name, forward_attribute, target_class, backward_attribute, name=None):
    """The two constraints of a many-to-many inverse relationship (EC3).

    ``INV_..._fwd`` says that following a ``forward_attribute`` reference from
    ``class_name`` can be retraced through ``backward_attribute`` of
    ``target_class``; ``INV_..._bwd`` says the converse.
    """
    base = name or f"INV_{class_name}_{target_class}"
    source_dict = SchemaRef(class_name)
    target_dict = SchemaRef(target_class)
    forward = Dependency.create(
        f"{base}_fwd",
        universal=(
            Binding("k", Dom(source_dict)),
            Binding("o", Attr(Lookup(source_dict, Var("k")), forward_attribute)),
        ),
        existential=(
            Binding("k2", Dom(target_dict)),
            Binding("o2", Attr(Lookup(target_dict, Var("k2")), backward_attribute)),
        ),
        conclusion=(Eq(Var("k2"), Var("o")), Eq(Var("o2"), Var("k"))),
        kind="semantic",
    ).validate()
    backward = Dependency.create(
        f"{base}_bwd",
        universal=(
            Binding("k2", Dom(target_dict)),
            Binding("o2", Attr(Lookup(target_dict, Var("k2")), backward_attribute)),
        ),
        existential=(
            Binding("k", Dom(source_dict)),
            Binding("o", Attr(Lookup(source_dict, Var("k")), forward_attribute)),
        ),
        conclusion=(Eq(Var("k2"), Var("o")), Eq(Var("o2"), Var("k"))),
        kind="semantic",
    ).validate()
    return (forward, backward)


# ---------------------------------------------------------------------- #
# physical structures (skeletons)
# ---------------------------------------------------------------------- #
def index_skeleton(index):
    """Compile a primary or secondary index into its skeleton.

    The index is modelled as a dictionary from key values (the value of the
    single indexed attribute, or a key struct for composite indexes) to the
    set of matching tuples.
    """
    index_ref = SchemaRef(index.name)
    relation_ref = SchemaRef(index.relation)
    key_var, entry_var, row_var = Var("k"), Var("t"), Var("r")

    if len(index.attributes) == 1:
        key_paths = [(index.attributes[0], key_var)]
    else:
        key_paths = [(attr, Attr(key_var, attr)) for attr in index.attributes]

    key_equalities_row = tuple(Eq(key_path, Attr(row_var, attr)) for attr, key_path in key_paths)
    key_equalities_entry = tuple(Eq(key_path, Attr(entry_var, attr)) for attr, key_path in key_paths)

    # The skeleton convention (Appendix B) is: the *forward* constraint is the
    # one whose universal prefix ranges over logical collections and whose
    # existential prefix introduces the physical structure.
    forward = Dependency.create(
        f"{index.name}_fwd",
        universal=(Binding("r", relation_ref),),
        existential=(
            Binding("k", Dom(index_ref)),
            Binding("t", Lookup(index_ref, key_var)),
        ),
        conclusion=(Eq(entry_var, row_var),) + key_equalities_row,
        kind="physical",
    ).validate()
    backward = Dependency.create(
        f"{index.name}_bwd",
        universal=(
            Binding("k", Dom(index_ref)),
            Binding("t", Lookup(index_ref, key_var)),
        ),
        existential=(Binding("r", relation_ref),),
        conclusion=(Eq(row_var, entry_var),) + key_equalities_entry,
        kind="physical",
    ).validate()
    return Skeleton(index.name, forward, backward, index)


def index_nonemptiness(index):
    """The extra non-emptiness constraint of a secondary index.

    Every key present in the index domain has at least one entry; the paper
    counts three constraints for secondary indexes for this reason.
    """
    index_ref = SchemaRef(index.name)
    return Dependency.create(
        f"{index.name}_nonempty",
        universal=(Binding("k", Dom(index_ref)),),
        existential=(Binding("t", Lookup(index_ref, Var("k"))),),
        conclusion=(),
        kind="physical",
    ).validate()


def view_skeleton(view, variable="v"):
    """Compile a materialized view (or ASR) into its skeleton.

    The forward constraint states that every match of the view definition has
    a corresponding view tuple; the backward constraint states that every
    view tuple comes from a match of the definition.
    """
    definition = view.definition
    view_ref = SchemaRef(view.name)
    view_var = Var(variable)
    taken = set(definition.variables)
    if variable in taken:
        suffix = 1
        while f"{variable}{suffix}" in taken:
            suffix += 1
        view_var = Var(f"{variable}{suffix}")
    output_equalities = tuple(
        Eq(Attr(view_var, label), path) for label, path in definition.output
    )
    forward = Dependency.create(
        f"{view.name}_fwd",
        universal=definition.bindings,
        premise=definition.conditions,
        existential=(Binding(view_var.name, view_ref),),
        conclusion=output_equalities,
        kind="physical",
    ).validate()
    backward = Dependency.create(
        f"{view.name}_bwd",
        universal=(Binding(view_var.name, view_ref),),
        existential=definition.bindings,
        conclusion=definition.conditions + output_equalities,
        kind="physical",
    ).validate()
    return Skeleton(view.name, forward, backward, view)


def compile_structure(structure):
    """Compile any physical structure into ``(skeleton, extra_constraints)``."""
    if isinstance(structure, (PrimaryIndex, SecondaryIndex)):
        skeleton = index_skeleton(structure)
        extras = (index_nonemptiness(structure),) if isinstance(structure, SecondaryIndex) else ()
        return skeleton, extras
    if isinstance(structure, (MaterializedView, AccessSupportRelation)):
        return view_skeleton(structure), ()
    raise TypeError(f"cannot compile physical structure {structure!r}")


def compile_logical_constraints(logical):
    """Compile every semantic declaration of a logical schema into dependencies."""
    constraints = []
    for relation_name, attributes in logical.keys:
        constraints.append(key_dependency(relation_name, attributes))
    for relation_name, attributes, target_name, target_attributes in logical.foreign_keys:
        constraints.append(
            foreign_key_dependency(relation_name, attributes, target_name, target_attributes)
        )
    for class_name, forward_attr, target_class, backward_attr in logical.inverses:
        constraints.extend(
            inverse_dependencies(class_name, forward_attr, target_class, backward_attr)
        )
    return constraints


__all__ = [
    "compile_logical_constraints",
    "compile_structure",
    "foreign_key_dependency",
    "index_nonemptiness",
    "index_skeleton",
    "inverse_dependencies",
    "key_dependency",
    "view_skeleton",
]
