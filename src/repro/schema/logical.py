"""Logical schema: relations, OO classes, and semantic integrity constraints.

A :class:`LogicalSchema` collects named collections and the semantic
constraints over them.  Two kinds of collections are supported, mirroring the
paper's data model:

* :class:`Relation` -- a set of structs (the relational case);
* :class:`ClassDef` -- an OO class, modelled as a dictionary from object
  identifiers to structs whose attributes may themselves be set-valued
  (e.g. the ``N``/``P`` reference sets of the inverse-relationship example).

Semantic constraints (keys, foreign keys, inverse relationships) are declared
through ``add_*`` methods and compiled into :class:`Dependency` objects by
:mod:`repro.schema.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.lang.types import IntType, SetType, StructType


@dataclass(frozen=True)
class Relation:
    """A relation: a named set of structs.

    Attributes
    ----------
    name:
        The relation name.
    attributes:
        Tuple of attribute names.
    key:
        Optional tuple of attribute names forming the primary key.  The key
        declaration itself does not imply a key *constraint*; call
        :meth:`LogicalSchema.add_key` to add the EGD the optimizer can use.
    """

    name: str
    attributes: tuple
    key: tuple = ()

    def __post_init__(self):
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        missing = set(self.key) - set(self.attributes)
        if missing:
            raise SchemaError(f"relation {self.name!r} key uses unknown attributes {sorted(missing)}")

    def struct_type(self, attribute_types=None):
        """Return the struct type of the tuples (``int`` by default)."""
        types = attribute_types or {}
        return StructType(tuple((attr, types.get(attr, IntType)) for attr in self.attributes))

    def has_attribute(self, name):
        return name in self.attributes


@dataclass(frozen=True)
class ClassDef:
    """An OO class: a dictionary from oids to structs.

    Attributes
    ----------
    name:
        The class (dictionary) name.
    attributes:
        Tuple of scalar attribute names.
    set_attributes:
        Tuple of set-valued attribute names (e.g. ``("N", "P")`` for the
        next/previous reference sets of EC3).
    """

    name: str
    attributes: tuple = ()
    set_attributes: tuple = ()

    def __post_init__(self):
        overlap = set(self.attributes) & set(self.set_attributes)
        if overlap:
            raise SchemaError(
                f"class {self.name!r} declares {sorted(overlap)} as both scalar and set-valued"
            )

    def struct_type(self, attribute_types=None):
        """Return the struct type of the object state."""
        types = attribute_types or {}
        fields = [(attr, types.get(attr, IntType)) for attr in self.attributes]
        fields += [(attr, SetType(IntType)) for attr in self.set_attributes]
        return StructType(tuple(fields))

    def has_attribute(self, name):
        return name in self.attributes or name in self.set_attributes


@dataclass
class LogicalSchema:
    """A named collection of relations, classes and semantic constraint declarations."""

    relations: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    keys: list = field(default_factory=list)
    foreign_keys: list = field(default_factory=list)
    inverses: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # collection declarations
    # ------------------------------------------------------------------ #
    def add_relation(self, name, attributes, key=()):
        """Declare a relation and return it."""
        if name in self.relations or name in self.classes:
            raise SchemaError(f"collection {name!r} declared twice")
        relation = Relation(name, tuple(attributes), tuple(key))
        self.relations[name] = relation
        return relation

    def add_class(self, name, attributes=(), set_attributes=()):
        """Declare an OO class (a dictionary collection) and return it."""
        if name in self.relations or name in self.classes:
            raise SchemaError(f"collection {name!r} declared twice")
        class_def = ClassDef(name, tuple(attributes), tuple(set_attributes))
        self.classes[name] = class_def
        return class_def

    def collection(self, name):
        """Return the relation or class named ``name``.

        Raises
        ------
        SchemaError
            If no such collection exists.
        """
        if name in self.relations:
            return self.relations[name]
        if name in self.classes:
            return self.classes[name]
        raise SchemaError(f"unknown collection {name!r}")

    def collection_names(self):
        return tuple(self.relations) + tuple(self.classes)

    def __contains__(self, name):
        return name in self.relations or name in self.classes

    # ------------------------------------------------------------------ #
    # semantic constraint declarations
    # ------------------------------------------------------------------ #
    def add_key(self, relation_name, attributes):
        """Declare a key constraint: tuples agreeing on ``attributes`` are equal."""
        relation = self._relation(relation_name)
        attributes = tuple(attributes)
        missing = set(attributes) - set(relation.attributes)
        if missing:
            raise SchemaError(f"key on {relation_name!r} uses unknown attributes {sorted(missing)}")
        self.keys.append((relation_name, attributes))
        return (relation_name, attributes)

    def add_foreign_key(self, relation_name, attributes, target_name, target_attributes):
        """Declare a referential integrity constraint (foreign key).

        Every tuple of ``relation_name`` has, for its ``attributes`` values, a
        matching tuple in ``target_name`` on ``target_attributes``.
        """
        source = self._relation(relation_name)
        target = self._relation(target_name)
        attributes = tuple(attributes)
        target_attributes = tuple(target_attributes)
        if len(attributes) != len(target_attributes):
            raise SchemaError("foreign key attribute lists have different lengths")
        missing = set(attributes) - set(source.attributes)
        if missing:
            raise SchemaError(
                f"foreign key on {relation_name!r} uses unknown attributes {sorted(missing)}"
            )
        missing = set(target_attributes) - set(target.attributes)
        if missing:
            raise SchemaError(
                f"foreign key into {target_name!r} uses unknown attributes {sorted(missing)}"
            )
        declaration = (relation_name, attributes, target_name, target_attributes)
        self.foreign_keys.append(declaration)
        return declaration

    def add_inverse_relationship(self, class_name, forward_attribute, target_class, backward_attribute):
        """Declare a many-to-many inverse relationship between two classes.

        Following references in ``forward_attribute`` of ``class_name`` and
        coming back through ``backward_attribute`` of ``target_class`` lands
        on the starting object, and vice versa (the INV constraints of EC3).
        """
        source = self._class(class_name)
        target = self._class(target_class)
        if forward_attribute not in source.set_attributes:
            raise SchemaError(
                f"{class_name!r} has no set-valued attribute {forward_attribute!r}"
            )
        if backward_attribute not in target.set_attributes:
            raise SchemaError(
                f"{target_class!r} has no set-valued attribute {backward_attribute!r}"
            )
        declaration = (class_name, forward_attribute, target_class, backward_attribute)
        self.inverses.append(declaration)
        return declaration

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _relation(self, name):
        if name not in self.relations:
            raise SchemaError(f"unknown relation {name!r}")
        return self.relations[name]

    def _class(self, name):
        if name not in self.classes:
            raise SchemaError(f"unknown class {name!r}")
        return self.classes[name]


__all__ = ["ClassDef", "LogicalSchema", "Relation"]
