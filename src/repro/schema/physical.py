"""Physical schema: indexes, materialized views and access support relations.

Each physical structure is a declarative object; :mod:`repro.schema.compile`
turns it into the pair of inclusion constraints (a *skeleton*) the C&B
optimizer chases and backchases with, and :mod:`repro.engine.database`
materialises it over a data instance so plans that use it can be executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class PrimaryIndex:
    """A primary index: a dictionary from key values to the matching tuples.

    ``name`` is the dictionary's schema name; ``relation`` the indexed
    relation; ``attributes`` the (possibly composite) search key.
    """

    name: str
    relation: str
    attributes: tuple

    kind = "primary_index"

    def __post_init__(self):
        if not self.attributes:
            raise SchemaError(f"index {self.name!r} must have at least one key attribute")


@dataclass(frozen=True)
class SecondaryIndex:
    """A secondary index (same shape as a primary index, on a non-key attribute).

    The paper describes secondary indexes with one additional non-emptiness
    constraint beyond the two inclusion constraints, which
    :mod:`repro.schema.compile` emits.
    """

    name: str
    relation: str
    attributes: tuple

    kind = "secondary_index"

    def __post_init__(self):
        if not self.attributes:
            raise SchemaError(f"index {self.name!r} must have at least one key attribute")


@dataclass(frozen=True)
class MaterializedView:
    """A materialized view defined by a path-conjunctive query.

    The definition's output labels become the view's attributes.
    """

    name: str
    definition: object  # PCQuery

    kind = "materialized_view"

    @property
    def attributes(self):
        return tuple(label for label, _ in self.definition.output)


@dataclass(frozen=True)
class AccessSupportRelation:
    """An access support relation (ASR): a materialized navigation join.

    ASRs are binary tables storing the oids at the two ends of a navigation
    path.  They are described by a path-conjunctive definition exactly like a
    materialized view; the separate class exists because the experiments and
    reports distinguish them.
    """

    name: str
    definition: object  # PCQuery

    kind = "access_support_relation"

    @property
    def attributes(self):
        return tuple(label for label, _ in self.definition.output)


@dataclass
class PhysicalSchema:
    """The collection of physical access structures available to the optimizer."""

    structures: dict = field(default_factory=dict)

    def _add(self, structure):
        if structure.name in self.structures:
            raise SchemaError(f"physical structure {structure.name!r} declared twice")
        self.structures[structure.name] = structure
        return structure

    def add_primary_index(self, name, relation, attributes):
        """Declare a primary index over ``relation`` on ``attributes``."""
        return self._add(PrimaryIndex(name, relation, tuple(attributes)))

    def add_secondary_index(self, name, relation, attributes):
        """Declare a secondary index over ``relation`` on ``attributes``."""
        return self._add(SecondaryIndex(name, relation, tuple(attributes)))

    def add_materialized_view(self, name, definition):
        """Declare a materialized view with a path-conjunctive ``definition``."""
        definition.validate()
        return self._add(MaterializedView(name, definition))

    def add_access_support_relation(self, name, definition):
        """Declare an access support relation with a navigation ``definition``."""
        definition.validate()
        return self._add(AccessSupportRelation(name, definition))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def structure(self, name):
        if name not in self.structures:
            raise SchemaError(f"unknown physical structure {name!r}")
        return self.structures[name]

    def names(self):
        return tuple(self.structures)

    def __contains__(self, name):
        return name in self.structures

    def indexes(self):
        """Return every index (primary and secondary)."""
        return [
            structure
            for structure in self.structures.values()
            if isinstance(structure, (PrimaryIndex, SecondaryIndex))
        ]

    def views(self):
        """Return every materialized view."""
        return [
            structure
            for structure in self.structures.values()
            if isinstance(structure, MaterializedView)
        ]

    def access_support_relations(self):
        """Return every access support relation."""
        return [
            structure
            for structure in self.structures.values()
            if isinstance(structure, AccessSupportRelation)
        ]


__all__ = [
    "AccessSupportRelation",
    "MaterializedView",
    "PhysicalSchema",
    "PrimaryIndex",
    "SecondaryIndex",
]
