"""Embedded path-conjunctive dependencies (the constraint language of C&B).

Every constraint used by the optimizer -- semantic integrity constraints
(keys, foreign keys, inverse relationships) as well as the descriptions of
physical access structures (indexes, materialized views, ASRs) -- is an
embedded dependency of the form::

    forall (x1 in P1) ... (xm in Pm)  [ B1  implies  exists (y1 in Q1) ... (yn in Qn) B2 ]

where ``B1`` and ``B2`` are conjunctions of equalities between paths.  A
dependency with an empty existential prefix and equality conclusions is an
EGD (e.g. a key constraint); one with a non-empty existential prefix is a
TGD (e.g. a referential integrity constraint or one direction of a view
definition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConstraintError
from repro.lang.ast import Binding, Eq, path_variables, schema_names


@dataclass(frozen=True)
class Dependency:
    """A single embedded dependency.

    Attributes
    ----------
    name:
        A unique, human-readable identifier (e.g. ``"V_1_fwd"`` or
        ``"KEY_R1"``); used in reports and for stratification bookkeeping.
    universal:
        Tuple of :class:`Binding` -- the universally quantified prefix.
    premise:
        Tuple of :class:`Eq` -- the condition ``B1`` on the universal prefix.
    existential:
        Tuple of :class:`Binding` -- the existentially quantified prefix
        (empty for EGDs).
    conclusion:
        Tuple of :class:`Eq` -- the condition ``B2``.
    kind:
        Free-form role tag: ``"semantic"`` for integrity constraints,
        ``"physical"`` for constraints describing access structures.
    """

    name: str
    universal: tuple
    premise: tuple
    existential: tuple
    conclusion: tuple
    kind: str = "semantic"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, name, universal, premise=(), existential=(), conclusion=(), kind="semantic"):
        """Build a dependency from iterables, normalising to tuples."""
        return cls(
            name,
            tuple(universal),
            tuple(premise),
            tuple(existential),
            tuple(conclusion),
            kind,
        )

    @classmethod
    def parse(cls, name, source, kind="semantic"):
        """Parse the ``forall ... implies ...`` concrete syntax."""
        from repro.lang.parser import parse_dependency

        universal, premise, existential, conclusion = parse_dependency(source)
        return cls(name, universal, premise, existential, conclusion, kind)

    def __str__(self):
        from repro.lang.pretty import format_dependency

        return f"{self.name}: {format_dependency(self)}"

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    @property
    def is_tgd(self):
        """``True`` when the dependency has an existential prefix."""
        return bool(self.existential)

    @property
    def is_egd(self):
        """``True`` when the dependency only equates universal paths."""
        return not self.existential

    @property
    def universal_variables(self):
        return tuple(binding.var for binding in self.universal)

    @property
    def existential_variables(self):
        return tuple(binding.var for binding in self.existential)

    def collections_used(self):
        """Return all schema collection names mentioned by the dependency."""
        names = set()
        for binding in self.universal + self.existential:
            names |= schema_names(binding.range)
        for condition in self.premise + self.conclusion:
            names |= schema_names(condition.left) | schema_names(condition.right)
        return names

    def tableau(self):
        """Return the tableau ``T(c)``: all bindings plus all conditions.

        Used by the off-line constraint stratification (Algorithm C.1), which
        looks for homomorphisms between a constraint and the tableau of
        another.
        """
        return (self.universal + self.existential, self.premise + self.conclusion)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self):
        """Check well-formedness; raise :class:`ConstraintError` on violations."""
        seen = set()
        for binding in self.universal:
            if binding.var in seen:
                raise ConstraintError(f"{self.name}: variable {binding.var!r} bound twice")
            unknown = path_variables(binding.range) - seen
            if unknown:
                raise ConstraintError(
                    f"{self.name}: range of {binding.var!r} references unknown variables {sorted(unknown)}"
                )
            seen.add(binding.var)
        for condition in self.premise:
            unknown = (path_variables(condition.left) | path_variables(condition.right)) - seen
            if unknown:
                raise ConstraintError(
                    f"{self.name}: premise {condition} references unknown variables {sorted(unknown)}"
                )
        for binding in self.existential:
            if binding.var in seen:
                raise ConstraintError(f"{self.name}: variable {binding.var!r} bound twice")
            unknown = path_variables(binding.range) - seen
            if unknown:
                raise ConstraintError(
                    f"{self.name}: range of {binding.var!r} references unknown variables {sorted(unknown)}"
                )
            seen.add(binding.var)
        for condition in self.conclusion:
            unknown = (path_variables(condition.left) | path_variables(condition.right)) - seen
            if unknown:
                raise ConstraintError(
                    f"{self.name}: conclusion {condition} references unknown variables {sorted(unknown)}"
                )
        if not self.existential and not self.conclusion:
            raise ConstraintError(f"{self.name}: dependency has neither existentials nor conclusions")
        return self

    # ------------------------------------------------------------------ #
    # renaming
    # ------------------------------------------------------------------ #
    def rename_variables(self, mapping):
        """Return a copy with variables renamed according to ``mapping``."""
        from repro.lang.ast import Var, substitute

        path_mapping = {old: Var(new) for old, new in mapping.items()}

        def rename_binding(binding):
            return Binding(
                mapping.get(binding.var, binding.var),
                substitute(binding.range, path_mapping),
            )

        return Dependency(
            self.name,
            tuple(rename_binding(binding) for binding in self.universal),
            tuple(condition.substitute(path_mapping) for condition in self.premise),
            tuple(rename_binding(binding) for binding in self.existential),
            tuple(condition.substitute(path_mapping) for condition in self.conclusion),
            self.kind,
        )


@dataclass(frozen=True)
class Skeleton:
    """A pair of complementary inclusion constraints describing one structure.

    Skeletons are the restricted constraint class for which OQF is complete
    (Theorem 3.2): the forward constraint maps logical collections into the
    physical structure and the backward constraint maps the structure back.
    Indexes, materialized views, ASRs and GMAPs are all skeletons.
    """

    name: str
    forward: Dependency
    backward: Dependency
    structure: object | None = None

    @property
    def constraints(self):
        """Return the two constraints as a tuple (forward, backward)."""
        return (self.forward, self.backward)

    def physical_collections(self):
        """Return the physical collection names introduced by this skeleton."""
        names = set()
        for binding in self.forward.existential:
            names |= schema_names(binding.range)
        return names


def make_equalities(pairs):
    """Convenience: build a tuple of :class:`Eq` from ``(left, right)`` pairs."""
    return tuple(Eq(left, right) for left, right in pairs)


__all__ = ["Dependency", "Skeleton", "make_equalities"]
