"""EC1: relational chain queries with primary and secondary indexes.

The schema has ``n`` relations ``R_i(K, N, C)``; every relation has a primary
index ``PI_i`` on its key ``K`` and the first ``j`` relations additionally
have a secondary index ``SI_i`` on the foreign-key attribute ``N``.  The
query is the chain join ``R_1 ⋈ ... ⋈ R_n`` on ``R_i.N = R_{i+1}.K``
returning all keys (Figure 4 of the paper).

Scaling parameters: ``n`` (relations, equals the number of primary indexes)
and ``j`` (secondary indexes); the total number of indexes is ``m = n + j``.
"""

from __future__ import annotations

from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog
from repro.workloads.base import Workload
from repro.workloads.datagen import populate_ec1


def build_catalog(relations, secondary_indexes=0):
    """Build the EC1 catalog with ``relations`` chain relations."""
    catalog = Catalog()
    for position in range(1, relations + 1):
        name = f"R{position}"
        catalog.add_relation(name, ["K", "N", "C"], key=["K"])
        catalog.add_primary_index(f"PI{position}", name, ["K"])
        if position <= secondary_indexes:
            catalog.add_secondary_index(f"SI{position}", name, ["N"])
    return catalog


def build_query(relations):
    """Build the chain query over ``relations`` relations."""
    froms = ", ".join(f"R{position} r{position}" for position in range(1, relations + 1))
    outputs = ", ".join(f"K{position}: r{position}.K" for position in range(1, relations + 1))
    conditions = " and ".join(
        f"r{position}.N = r{position + 1}.K" for position in range(1, relations)
    )
    text = f"select struct({outputs}) from {froms}"
    if conditions:
        text += f" where {conditions}"
    return PCQuery.parse(text).validate()


def build_ec1(relations=3, secondary_indexes=0):
    """Build a full EC1 workload instance."""
    catalog = build_catalog(relations, secondary_indexes)
    query = build_query(relations)
    relation_names = [f"R{position}" for position in range(1, relations + 1)]

    def populate(database, size=1000, seed=0):
        return populate_ec1(database, relation_names, size=size, seed=seed)

    return Workload(
        name="EC1",
        catalog=catalog,
        query=query,
        params={"relations": relations, "secondary_indexes": secondary_indexes},
        populate=populate,
    )


def expected_plan_count(relations, secondary_indexes=0):
    """Number of plans the complete strategies generate for EC1.

    Each relation can be accessed through a table scan or its primary index;
    relations with a secondary index have a third choice, hence
    ``2^(n-j) * 3^j`` plans (Example 3.1 generalised).
    """
    return (2 ** (relations - secondary_indexes)) * (3 ** secondary_indexes)


__all__ = ["build_catalog", "build_ec1", "build_query", "expected_plan_count"]
