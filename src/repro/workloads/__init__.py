"""The paper's three experimental configurations as reusable workload builders.

* :mod:`repro.workloads.ec1` -- EC1: relational chain queries with primary and
  secondary indexes (Section 5.1, Figure 4).
* :mod:`repro.workloads.ec2` -- EC2: chain-of-stars queries with materialized
  views and key constraints (Figures 1 and 7, Sections 5.3-5.4).
* :mod:`repro.workloads.ec3` -- EC3: OO navigation queries with inverse
  relationships and access support relations (Figure 2).
* :mod:`repro.workloads.datagen` -- synthetic data generation with the
  cardinalities and join selectivities reported in Section 5.4.
"""

from repro.workloads.base import Workload
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3

__all__ = ["Workload", "build_ec1", "build_ec2", "build_ec3"]
