"""Synthetic data generators with the paper's cardinalities and selectivities.

Section 5.4 reports the dataset used for the end-to-end EC2 experiment:

* ``|R_i| = |S_ij| = 5,000`` tuples,
* the join ``R_i ⋈ S_ij`` selects about 4 % of the tuples,
* the join ``R_i ⋈ R_{i+1}`` (on the foreign key ``F``) about 2 %,
* the ``B`` attributes of the corner relations have few distinct values.

The generators below reproduce those shapes at a configurable scale so the
relative execution times of the generated plans (Figures 9 and 10) keep the
same ordering on a pure-Python engine.
"""

from __future__ import annotations

import random

#: Fractions reported in Section 5.4.
CORNER_JOIN_SELECTIVITY = 0.04
HUB_JOIN_SELECTIVITY = 0.02
DISTINCT_B_VALUES = 20


def populate_ec1(database, relations, size=1000, seed=0, match_fraction=0.05):
    """Populate the EC1 chain relations ``R_1 .. R_n``.

    Each relation has attributes ``K`` (the key), ``N`` (the value joined with
    the next relation's key) and ``C`` (payload).  ``match_fraction`` of the
    ``N`` values reference an existing key of the next relation.
    """
    rng = random.Random(seed)
    for position, name in enumerate(relations):
        rows = []
        for key in range(size):
            if rng.random() < match_fraction:
                next_key = rng.randrange(size)
            else:
                next_key = -1 - key
            rows.append({"K": key, "N": next_key, "C": rng.randrange(100)})
        database.add_table(name, rows)
    return database


def populate_ec2(database, stars, corners, size=1000, seed=0):
    """Populate the EC2 chain-of-stars schema.

    Parameters
    ----------
    database:
        The :class:`~repro.engine.database.Database` to fill.
    stars / corners:
        Shape of the configuration: ``stars`` hub relations ``R_i``, each with
        ``corners`` corner relations ``S_ij``.
    size:
        Tuples per relation (the paper uses 5,000).
    seed:
        Random seed for reproducibility.
    """
    rng = random.Random(seed)
    for star in range(1, stars + 1):
        corner_keys = {}
        for corner in range(1, corners + 1):
            rows = []
            for row_id in range(size):
                rows.append(
                    {
                        "A": _corner_value(star, corner, row_id),
                        "B": rng.randrange(DISTINCT_B_VALUES),
                    }
                )
            database.add_table(f"S{star}{corner}", rows)
            corner_keys[corner] = size
        hub_rows = []
        for key in range(size):
            row = {"K": key}
            # Foreign key into the next star's hub: ~2 % of rows match.
            if rng.random() < HUB_JOIN_SELECTIVITY:
                row["F"] = rng.randrange(size)
            else:
                row["F"] = -1 - key
            # Corner joins: ~4 % of hub rows match each corner relation.
            for corner in range(1, corners + 1):
                if rng.random() < CORNER_JOIN_SELECTIVITY:
                    row[f"A{corner}"] = _corner_value(star, corner, rng.randrange(size))
                else:
                    row[f"A{corner}"] = -1 - key
            hub_rows.append(row)
        database.add_table(f"R{star}", hub_rows)
    return database


def _corner_value(star, corner, row_id):
    """A value namespace per (star, corner) so corners never join accidentally."""
    return star * 10_000_000 + corner * 1_000_000 + row_id


def populate_ec3(database, classes, size=200, seed=0, fanout=2):
    """Populate the EC3 class extents ``M_1 .. M_n`` with consistent inverses.

    Every object of class ``M_i`` references ``fanout`` random objects of
    ``M_{i+1}`` through its ``N`` attribute; the ``P`` attribute of ``M_{i+1}``
    objects is computed as the exact inverse, so the INV constraints hold on
    the instance (the optimizer relies on them being true).
    """
    rng = random.Random(seed)
    extents = {name: {oid: {"N": [], "P": []} for oid in range(size)} for name in classes}
    for position in range(len(classes) - 1):
        source = extents[classes[position]]
        target = extents[classes[position + 1]]
        for oid, state in source.items():
            references = sorted(rng.sample(range(size), min(fanout, size)))
            state["N"] = references
            for referenced in references:
                target[referenced]["P"].append(oid)
    for name, extent in extents.items():
        database.add_dictionary(name, extent)
    return database


__all__ = [
    "CORNER_JOIN_SELECTIVITY",
    "DISTINCT_B_VALUES",
    "HUB_JOIN_SELECTIVITY",
    "populate_ec1",
    "populate_ec2",
    "populate_ec3",
]
