"""EC3: OO navigation queries with inverse relationships and ASRs.

The schema has ``n`` classes ``M_1 .. M_n``; consecutive classes are related
by a many-to-many inverse relationship (the ``N``/"next" and ``P``/"previous"
reference sets, Figure 2 of the paper).  The physical schema contains access
support relations: each ASR materialises a backwards navigation across three
classes (two ``P`` steps) as a binary table ``(S, T)`` of oids.

The query is the long navigation from ``M_1`` to ``M_n`` following the ``N``
references; it does not map directly onto the ASRs, so the first (semantic)
optimization phase must flip navigation directions with the inverse
constraints before the second (physical) phase can introduce ASRs.

Scaling parameters: ``classes`` (``n``) and ``asrs`` (``m``).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog
from repro.workloads.base import Workload
from repro.workloads.datagen import populate_ec3


def asr_definition(start_class, middle_class):
    """The defining navigation of an ASR from ``start_class`` back two ``P`` steps.

    The ASR stores pairs ``(S, T)`` where ``S`` is an oid of ``start_class``
    and ``T`` is an oid reachable from it by following ``P`` twice (through
    ``middle_class``).
    """
    return PCQuery.parse(
        f"""
        select struct(S: k2, T: o2)
        from dom {start_class} k2, {start_class}[k2].P o1, dom {middle_class} k1, {middle_class}[k1].P o2
        where o1 = k1
        """
    )


def build_catalog(classes, asrs=0):
    """Build the EC3 catalog: classes, inverse relationships and ASRs."""
    max_asrs = max((classes - 1) // 2, 0)
    if asrs > max_asrs:
        raise SchemaError(f"EC3 with {classes} classes supports at most {max_asrs} ASRs")
    catalog = Catalog()
    for position in range(1, classes + 1):
        catalog.add_class(f"M{position}", attributes=[], set_attributes=["N", "P"])
    for position in range(1, classes):
        catalog.add_inverse_relationship(f"M{position}", "N", f"M{position + 1}", "P")
    for asr in range(1, asrs + 1):
        start = 2 * asr + 1
        catalog.add_access_support_relation(
            f"ASR{asr}", asr_definition(f"M{start}", f"M{start - 1}")
        )
    return catalog


def build_query(classes):
    """Build the N-navigation query from ``M_1`` to ``M_classes``."""
    froms, conditions = [], []
    for position in range(1, classes):
        froms.append(f"dom M{position} k{position}")
        froms.append(f"M{position}[k{position}].N o{position}")
        if position > 1:
            conditions.append(f"o{position - 1} = k{position}")
    text = f"select struct(F: k1, L: o{classes - 1}) from {', '.join(froms)}"
    if conditions:
        text += f" where {' and '.join(conditions)}"
    return PCQuery.parse(text).validate()


def build_ec3(classes=4, asrs=0):
    """Build a full EC3 workload instance."""
    catalog = build_catalog(classes, asrs)
    query = build_query(classes)
    class_names = [f"M{position}" for position in range(1, classes + 1)]

    def populate(database, size=200, seed=0):
        return populate_ec3(database, class_names, size=size, seed=seed)

    return Workload(
        name="EC3",
        catalog=catalog,
        query=query,
        params={"classes": classes, "asrs": asrs},
        populate=populate,
    )


def inverse_constraint_count(classes):
    """The paper's count: 2 constraints per inverse relationship."""
    return 2 * (classes - 1)


def expected_plan_count(classes):
    """Plans from the semantic (inverse) phase: each hop can be flipped."""
    return 2 ** (classes - 1)


__all__ = [
    "asr_definition",
    "build_catalog",
    "build_ec3",
    "build_query",
    "expected_plan_count",
    "inverse_constraint_count",
]
