"""Common container for experimental workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.optimizer import CBOptimizer
from repro.engine.database import Database


@dataclass
class Workload:
    """A ready-to-run experimental configuration.

    Attributes
    ----------
    name:
        Configuration name (``"EC1"``, ``"EC2"``, ``"EC3"``).
    catalog:
        The catalog (schema, physical structures, constraints, statistics).
    query:
        The input query of the experiment.
    params:
        The scaling parameters that produced this instance.
    populate:
        A callable ``populate(database, size, seed)`` that fills a database
        with synthetic data of the configuration's shape, or ``None`` when
        the experiment does not execute plans.
    """

    name: str
    catalog: object
    query: object
    params: dict = field(default_factory=dict)
    populate: object | None = None

    def optimizer(self, timeout=None, workers=1, executor="serial"):
        """Return a :class:`CBOptimizer` over this workload's catalog.

        ``workers`` / ``executor`` configure the parallel backchase and the
        OQF/OCS fragment fan-out (see :class:`CBOptimizer`).
        """
        return CBOptimizer(self.catalog, timeout=timeout, workers=workers, executor=executor)

    def database(self, size=1000, seed=0):
        """Return a populated database (with physical structures materialised).

        Raises
        ------
        ValueError
            If the workload has no populate function.
        """
        if self.populate is None:
            raise ValueError(f"workload {self.name} has no data generator")
        database = Database(self.catalog)
        self.populate(database, size=size, seed=seed)
        database.materialize_physical(self.catalog)
        return database

    def constraint_count(self):
        """Number of constraints the optimizer will use (a paper scaling axis)."""
        return len(self.catalog.constraints())


__all__ = ["Workload"]
