"""EC2: chain-of-stars queries with materialized views and key constraints.

The schema (Figure 1 of the paper, generalising Example 2.2) has ``s`` stars.
Star ``i`` has a hub relation ``R_i(K, F, A_1..A_c)`` and ``c`` corner
relations ``S_ij(A, B)``; the hub joins corner ``j`` on ``A_j = S_ij.A`` and
chains to the next star through the foreign key ``F = R_{i+1}.K``.  The key
``K`` of every hub is declared (the constraint the rewriting with views needs)
and ``v <= c - 1`` materialized views per star are available, view ``V_il``
joining the hub with corners ``l`` and ``l+1`` and exposing ``(K, B_1, B_2)``.

The query returns the ``B`` attribute of every corner relation.  Scaling
parameters: ``stars``, ``corners`` (per star) and ``views`` (per star).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog
from repro.workloads.base import Workload
from repro.workloads.datagen import populate_ec2


def view_definition(star, first_corner):
    """The defining query of view ``V_{star,first_corner}``."""
    return PCQuery.parse(
        f"""
        select struct(K: r.K, B1: s1.B, B2: s2.B)
        from R{star} r, S{star}{first_corner} s1, S{star}{first_corner + 1} s2
        where r.A{first_corner} = s1.A and r.A{first_corner + 1} = s2.A
        """
    )


def build_catalog(stars, corners, views):
    """Build the EC2 catalog: hubs, corners, key constraints and views."""
    if views > max(corners - 1, 0):
        raise SchemaError("EC2 allows at most corners - 1 views per star")
    catalog = Catalog()
    for star in range(1, stars + 1):
        attributes = ["K", "F"] + [f"A{corner}" for corner in range(1, corners + 1)]
        catalog.add_relation(f"R{star}", attributes, key=["K"])
        catalog.add_key(f"R{star}", ["K"])
        for corner in range(1, corners + 1):
            catalog.add_relation(f"S{star}{corner}", ["A", "B"])
        for view in range(1, views + 1):
            catalog.add_materialized_view(f"V{star}{view}", view_definition(star, view))
    return catalog


def build_query(stars, corners):
    """Build the chain-of-stars query returning every corner's ``B`` attribute."""
    froms, conditions, outputs = [], [], []
    for star in range(1, stars + 1):
        froms.append(f"R{star} r{star}")
        for corner in range(1, corners + 1):
            froms.append(f"S{star}{corner} s{star}_{corner}")
            conditions.append(f"r{star}.A{corner} = s{star}_{corner}.A")
            outputs.append(f"B{star}_{corner}: s{star}_{corner}.B")
        if star < stars:
            conditions.append(f"r{star}.F = r{star + 1}.K")
    text = (
        f"select struct({', '.join(outputs)}) from {', '.join(froms)} "
        f"where {' and '.join(conditions)}"
    )
    return PCQuery.parse(text).validate()


def build_ec2(stars=2, corners=3, views=1):
    """Build a full EC2 workload instance."""
    catalog = build_catalog(stars, corners, views)
    query = build_query(stars, corners)

    def populate(database, size=1000, seed=0):
        return populate_ec2(database, stars, corners, size=size, seed=seed)

    return Workload(
        name="EC2",
        catalog=catalog,
        query=query,
        params={"stars": stars, "corners": corners, "views": views},
        populate=populate,
    )


def query_size(stars, corners):
    """The paper's query-size measure for EC2: ``s * (c + 1)`` bindings."""
    return stars * (corners + 1)


def constraint_count(stars, views):
    """The paper's constraint-count measure: ``s * (1 + 2v)``."""
    return stars * (1 + 2 * views)


__all__ = [
    "build_catalog",
    "build_ec2",
    "build_query",
    "constraint_count",
    "query_size",
    "view_definition",
]
