"""Execution substrate: in-memory storage, plan execution and a cost model.

The paper executes the generated plans on IBM DB2 (Section 5.4).  This
sub-package provides the stand-in: an in-memory database with hash-join based
evaluation of path-conjunctive queries, plus a simple cardinality cost model
used to pick the best plan.  Absolute times differ from DB2, but the relative
ordering of plans (the quantity Sections 5.4 and Figure 9/10 care about) is
preserved because it is driven by the same data sizes and join selectivities.
"""

from repro.engine.cost import CostModel
from repro.engine.database import Database
from repro.engine.executor import execute, execute_timed
from repro.engine.storage import Dictionary, Table

__all__ = ["CostModel", "Database", "Dictionary", "Table", "execute", "execute_timed"]
