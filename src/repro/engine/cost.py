"""A simple cardinality-based cost model for ranking generated plans.

The C&B prototype in the paper defers plan ranking to a cost model (and, for
the end-to-end experiment, to DB2 itself).  This module provides a
System-R-flavoured estimate: the plan is "executed" symbolically in the same
greedy order the executor would use, accumulating the estimated sizes of the
intermediate results.  Equality predicates on an attribute contribute a
selectivity of ``1 / distinct values``; dictionary lookups contribute their
average fan-out.
"""

from __future__ import annotations

from repro.lang.ast import Attr, Dom, Lookup, SchemaRef, Var, path_variables


class CostModel:
    """Estimate plan costs from catalog statistics.

    Parameters
    ----------
    catalog:
        The :class:`~repro.schema.catalog.Catalog` whose ``statistics`` are
        consulted.  Populating a :class:`~repro.engine.database.Database` and
        calling :meth:`~repro.engine.database.Database.refresh_statistics`
        keeps these in sync with actual data.
    lookup_fanout:
        Estimated number of elements returned by a set-valued navigation.
    """

    def __init__(self, catalog, lookup_fanout=3.0):
        self.catalog = catalog
        self.lookup_fanout = lookup_fanout

    # ------------------------------------------------------------------ #
    def cost(self, query):
        """Return the estimated cost (sum of intermediate result sizes)."""
        statistics = self.catalog.statistics
        pending = list(query.bindings)
        conditions = list(query.conditions)
        bound = set()
        cardinality = 1.0
        total = 0.0
        while pending:
            index = self._choose(pending, bound)
            binding = pending.pop(index)
            cardinality *= self._binding_cardinality(binding, conditions, bound, statistics)
            cardinality = max(cardinality, 1.0)
            bound.add(binding.var)
            total += cardinality
        return total

    def __call__(self, query):
        return self.cost(query)

    # ------------------------------------------------------------------ #
    def _choose(self, pending, bound):
        """Mirror the executor's greedy choice of the next binding."""
        evaluable = [
            position
            for position, binding in enumerate(pending)
            if path_variables(binding.range) <= bound
        ]
        if not evaluable:
            return 0
        for position in evaluable:
            if not isinstance(pending[position].range, (SchemaRef, Dom)):
                return position
        return evaluable[0]

    def _binding_cardinality(self, binding, conditions, bound, statistics):
        range_path = binding.range
        if isinstance(range_path, SchemaRef):
            base = statistics.cardinality(range_path.name)
            selectivity = self._best_selectivity(binding, conditions, bound, statistics, range_path.name)
            return base * selectivity
        if isinstance(range_path, Dom):
            name = _root_name(range_path)
            return statistics.cardinality(name) if name else statistics.default_cardinality
        # Navigation through a bound variable or a dictionary lookup.
        if isinstance(range_path, Lookup):
            return 1.0
        return self.lookup_fanout

    def _best_selectivity(self, binding, conditions, bound, statistics, collection):
        best = 1.0
        for condition in conditions:
            for this_side, other_side in (
                (condition.left, condition.right),
                (condition.right, condition.left),
            ):
                if (
                    isinstance(this_side, Attr)
                    and isinstance(this_side.base, Var)
                    and this_side.base.name == binding.var
                    and path_variables(other_side) <= bound
                ):
                    best = min(best, statistics.selectivity(collection, this_side.name))
        return best


def _root_name(path):
    while isinstance(path, (Dom, Attr)):
        path = path.base
    if isinstance(path, Lookup):
        return _root_name(path.dictionary)
    if isinstance(path, SchemaRef):
        return path.name
    return None


__all__ = ["CostModel"]
