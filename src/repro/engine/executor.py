"""Evaluation of path-conjunctive queries and plans over a :class:`Database`.

The executor is deliberately simple but not naive: it is a binding-at-a-time
nested-loop evaluator with two optimisations that stand in for what DB2 does
for the paper's workloads:

* **greedy binding ordering** -- at each step it picks an evaluable binding,
  preferring dictionary lookups with a bound key and table scans that can be
  turned into hash-index probes;
* **hash-join probes** -- when an equality condition links an unbound table
  binding to an already-bound value on some attribute, the executor probes a
  (lazily built, cached) hash index instead of scanning the table.

Bag semantics: the result is a list of output rows, one per satisfying
valuation of the from clause, exactly as OQL's ``select struct`` (without
``distinct``).
"""

from __future__ import annotations

import time

from repro.errors import ExecutionError
from repro.engine.storage import Dictionary, Table
from repro.lang.ast import Attr, Const, Dom, Lookup, SchemaRef, Var, path_variables


def execute(query, database):
    """Evaluate ``query`` on ``database`` and return the list of output rows."""
    bindings = list(query.bindings)
    conditions = list(query.conditions)
    output = list(query.output)
    results = []
    _enumerate(bindings, conditions, {}, database, output, results)
    return results


def execute_timed(query, database):
    """Evaluate ``query`` and return ``(rows, elapsed_seconds)``."""
    start = time.perf_counter()
    rows = execute(query, database)
    return rows, time.perf_counter() - start


def evaluate_path(path, env, database):
    """Evaluate a path expression under the variable environment ``env``."""
    if isinstance(path, Var):
        try:
            return env[path.name]
        except KeyError:
            raise ExecutionError(f"variable {path.name!r} is not bound") from None
    if isinstance(path, Const):
        return path.value
    if isinstance(path, SchemaRef):
        return database.collection(path.name)
    if isinstance(path, Attr):
        base = evaluate_path(path.base, env, database)
        return _project(base, path.name)
    if isinstance(path, Lookup):
        dictionary = evaluate_path(path.dictionary, env, database)
        key = evaluate_path(path.key, env, database)
        return _lookup(dictionary, key)
    if isinstance(path, Dom):
        base = evaluate_path(path.base, env, database)
        return _domain(base)
    raise ExecutionError(f"cannot evaluate path {path!r}")


def _project(value, attribute):
    if value is _MISSING:
        return _MISSING
    if isinstance(value, dict):
        try:
            return value[attribute]
        except KeyError:
            raise ExecutionError(f"row has no attribute {attribute!r}") from None
    raise ExecutionError(f"cannot project attribute {attribute!r} of {type(value).__name__}")


def _lookup(dictionary, key):
    if isinstance(dictionary, Dictionary):
        value = dictionary.get(key)
        if value is None:
            return _MISSING
        return value
    if isinstance(dictionary, dict):
        return dictionary.get(key, _MISSING)
    raise ExecutionError(f"cannot look up a key in {type(dictionary).__name__}")


def _domain(value):
    if value is _MISSING:
        return []
    if isinstance(value, Dictionary):
        return value.keys()
    if isinstance(value, dict):
        return list(value)
    raise ExecutionError(f"cannot take dom of {type(value).__name__}")


class _Missing:
    """Sentinel for undefined dictionary lookups (fails every comparison)."""

    def __eq__(self, other):
        return False

    def __iter__(self):
        return iter(())

    def __repr__(self):
        return "<missing>"


_MISSING = _Missing()


def _values_equal(left, right):
    """Value equality used for join/filter conditions (rows compare by content)."""
    if left is _MISSING or right is _MISSING:
        return False
    return left == right


# ---------------------------------------------------------------------- #
# enumeration
# ---------------------------------------------------------------------- #
def _enumerate(pending, conditions, env, database, output, results):
    if not pending:
        results.append(
            {label: evaluate_path(path, env, database) for label, path in output}
        )
        return
    index, probe = _choose_next(pending, conditions, env, database)
    binding = pending[index]
    rest = pending[:index] + pending[index + 1 :]
    candidates = _candidate_values(binding, probe, env, database)
    relevant = [
        condition
        for condition in conditions
        if binding.var in _condition_variables(condition)
        and _condition_variables(condition) <= set(env) | {binding.var}
    ]
    for value in candidates:
        env[binding.var] = value
        if all(
            _values_equal(
                evaluate_path(condition.left, env, database),
                evaluate_path(condition.right, env, database),
            )
            for condition in relevant
        ):
            _enumerate(rest, conditions, env, database, output, results)
        del env[binding.var]


def _condition_variables(condition):
    return path_variables(condition.left) | path_variables(condition.right)


def _choose_next(pending, conditions, env, database):
    """Pick the next binding to enumerate and an optional hash-probe.

    Preference order: a binding whose range is directly evaluable and small
    (dictionary lookup or navigation through bound variables), then a table
    binding that can be probed through a hash index, then the evaluable scan
    over the smallest collection (the classic "smallest outer table" rule),
    then (as a last resort) the first pending binding.
    Returns ``(index into pending, probe or None)`` where ``probe`` is a pair
    ``(attribute, value_path)`` usable with :meth:`Table.lookup`.
    """
    bound = set(env)
    evaluable = [
        (position, binding)
        for position, binding in enumerate(pending)
        if path_variables(binding.range) <= bound
    ]
    if not evaluable:
        return 0, None
    # 1. dependent ranges (lookups / navigations) are the cheapest.
    for position, binding in evaluable:
        if not isinstance(binding.range, SchemaRef) and not isinstance(binding.range, Dom):
            return position, None
    # 2. a table binding with an equality linking it to bound values.
    for position, binding in evaluable:
        if isinstance(binding.range, SchemaRef):
            probe = _find_probe(binding, conditions, bound)
            if probe is not None:
                return position, probe
    # 3. the smallest evaluable scan.
    def scan_size(entry):
        _, binding = entry
        name = _collection_name(binding.range)
        if name is not None and name in database:
            return database.cardinality(name)
        return float("inf")

    position, _ = min(evaluable, key=scan_size)
    return position, None


def _collection_name(range_path):
    if isinstance(range_path, SchemaRef):
        return range_path.name
    if isinstance(range_path, Dom) and isinstance(range_path.base, SchemaRef):
        return range_path.base.name
    return None


def _find_probe(binding, conditions, bound):
    """Find an equality usable as a hash probe for a table binding."""
    for condition in conditions:
        for this_side, other_side in (
            (condition.left, condition.right),
            (condition.right, condition.left),
        ):
            if (
                isinstance(this_side, Attr)
                and isinstance(this_side.base, Var)
                and this_side.base.name == binding.var
                and path_variables(other_side) <= bound
            ):
                return (this_side.name, other_side)
    return None


def _candidate_values(binding, probe, env, database):
    range_value = evaluate_path(binding.range, env, database)
    if isinstance(range_value, Table):
        if probe is not None:
            attribute, value_path = probe
            return range_value.lookup(attribute, evaluate_path(value_path, env, database))
        return range_value.rows
    if isinstance(range_value, Dictionary):
        # Binding directly over a dictionary is not part of the language
        # (dictionaries are iterated through ``dom``), but tolerate it by
        # iterating the entries.
        return [value for _, value in range_value.items()]
    if isinstance(range_value, (list, tuple, set)):
        return list(range_value)
    if range_value is _MISSING:
        return []
    raise ExecutionError(
        f"range of {binding.var!r} evaluated to a non-collection ({type(range_value).__name__})"
    )


__all__ = ["evaluate_path", "execute", "execute_timed"]
