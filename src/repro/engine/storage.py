"""In-memory storage: tables (sets of rows) and dictionaries (finite maps).

Rows are plain ``dict`` objects mapping attribute names to values.  A
:class:`Table` stores a bag of rows; a :class:`Dictionary` stores a finite
partial function from keys to entries, where an entry is either a row (class
extents: oid -> object state) or a list of rows (indexes: key value -> the
matching tuples).
"""

from __future__ import annotations

from repro.errors import ExecutionError


class Table:
    """A named bag of rows."""

    def __init__(self, name, rows=None):
        self.name = name
        self.rows = list(rows) if rows is not None else []
        self._hash_indexes = {}

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def add(self, row):
        """Append one row and invalidate cached hash indexes."""
        self.rows.append(dict(row))
        self._hash_indexes.clear()

    def extend(self, rows):
        """Append many rows and invalidate cached hash indexes."""
        self.rows.extend(dict(row) for row in rows)
        self._hash_indexes.clear()

    def hash_index(self, attribute):
        """Return (building lazily) a hash index ``value -> [rows]`` on ``attribute``."""
        index = self._hash_indexes.get(attribute)
        if index is None:
            index = {}
            for row in self.rows:
                try:
                    key = row[attribute]
                except KeyError:
                    raise ExecutionError(
                        f"table {self.name!r} has a row without attribute {attribute!r}"
                    ) from None
                index.setdefault(_hashable(key), []).append(row)
            self._hash_indexes[attribute] = index
        return index

    def lookup(self, attribute, value):
        """Return the rows whose ``attribute`` equals ``value`` (hash-accelerated)."""
        return self.hash_index(attribute).get(_hashable(value), [])

    def attributes(self):
        """Return the attribute names of the first row (empty table: ``()``)."""
        return tuple(self.rows[0]) if self.rows else ()


class Dictionary:
    """A named finite partial function from keys to entries."""

    def __init__(self, name, entries=None):
        self.name = name
        self.entries = dict(entries) if entries is not None else {}

    def __len__(self):
        return len(self.entries)

    def __contains__(self, key):
        return _hashable(key) in self.entries

    def keys(self):
        return list(self.entries)

    def get(self, key, default=None):
        return self.entries.get(_hashable(key), default)

    def put(self, key, value):
        self.entries[_hashable(key)] = value

    def items(self):
        return self.entries.items()


def _hashable(value):
    """Convert a value into a hashable key (rows become attribute tuples)."""
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    if isinstance(value, (list, set)):
        return tuple(value)
    return value


__all__ = ["Dictionary", "Table"]
