"""A database instance: populated logical collections plus materialised structures.

A :class:`Database` holds the contents of the logical collections (tables for
relations, dictionaries for class extents) and can materialise every physical
structure declared in a catalog -- indexes by grouping rows on the key
attributes, materialized views and ASRs by executing their defining query.
It also refreshes the catalog's statistics so the cost model sees the actual
cardinalities.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.engine.storage import Dictionary, Table
from repro.schema.physical import (
    AccessSupportRelation,
    MaterializedView,
    PrimaryIndex,
    SecondaryIndex,
)


class Database:
    """Named collections (tables and dictionaries) plus materialisation helpers."""

    def __init__(self, catalog=None):
        self.catalog = catalog
        self.collections = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def add_table(self, name, rows=()):
        """Create (or replace) a table with the given rows."""
        table = Table(name, rows)
        self.collections[name] = table
        return table

    def add_dictionary(self, name, entries=None):
        """Create (or replace) a dictionary with the given entries."""
        dictionary = Dictionary(name, entries)
        self.collections[name] = dictionary
        return dictionary

    def collection(self, name):
        """Return the collection named ``name``.

        Raises
        ------
        ExecutionError
            If the collection is not populated.
        """
        try:
            return self.collections[name]
        except KeyError:
            raise ExecutionError(f"collection {name!r} is not populated") from None

    def __contains__(self, name):
        return name in self.collections

    def cardinality(self, name):
        """Return the number of rows/entries in collection ``name``."""
        return len(self.collection(name))

    # ------------------------------------------------------------------ #
    # materialisation of the physical schema
    # ------------------------------------------------------------------ #
    def materialize_physical(self, catalog=None):
        """Materialise every physical structure of the catalog over this instance.

        Indexes become dictionaries from key values to the matching rows;
        materialized views and access support relations are computed by
        executing their defining queries against the current contents.
        """
        catalog = catalog if catalog is not None else self.catalog
        if catalog is None:
            raise ExecutionError("no catalog to materialise from")
        from repro.engine.executor import execute

        for structure in catalog.physical.structures.values():
            if isinstance(structure, (PrimaryIndex, SecondaryIndex)):
                self._materialize_index(structure)
            elif isinstance(structure, (MaterializedView, AccessSupportRelation)):
                rows = execute(structure.definition, self)
                self.add_table(structure.name, rows)
            else:  # pragma: no cover - no other structure kinds exist
                raise ExecutionError(f"cannot materialise {structure!r}")
        self.refresh_statistics(catalog)
        return self

    def _materialize_index(self, index):
        relation = self.collection(index.relation)
        entries = {}
        for row in relation:
            if len(index.attributes) == 1:
                key = row[index.attributes[0]]
            else:
                key = tuple(sorted((attr, row[attr]) for attr in index.attributes))
            entries.setdefault(key, []).append(row)
        self.add_dictionary(index.name, entries)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def refresh_statistics(self, catalog=None):
        """Copy actual cardinalities and distinct counts into the catalog statistics."""
        catalog = catalog if catalog is not None else self.catalog
        if catalog is None:
            return
        statistics = catalog.statistics
        for name, collection in self.collections.items():
            statistics.set_cardinality(name, len(collection))
            if isinstance(collection, Table) and collection.rows:
                for attribute in collection.attributes():
                    values = set()
                    for row in collection.rows:
                        value = row.get(attribute)
                        if isinstance(value, (list, set, dict)):
                            continue
                        values.add(value)
                    if values:
                        statistics.set_distinct(name, attribute, len(values))


__all__ = ["Database"]
