"""An OQL-like concrete syntax for path-conjunctive queries and dependencies.

The grammar covers exactly the fragment used by the paper:

Queries::

    select struct(B11: s11.B, B12: s12.B)
    from R1 r1, S11 s11, S12 s12
    where r1.A1 = s11.A1 and r1.A2 = s12.A2

The ``from`` clause also accepts the ``var in collection`` spelling
(``from r1 in R1, s11 in S11``) and dictionary ranges such as
``dom M1 k1`` and ``M1[k1].N o1``.

Dependencies (embedded path-conjunctive dependencies)::

    forall r in R, s in S where r.A = s.A
    implies exists v in V where v.K = r.K and v.B = s.B

    forall r in R1, r2 in R1 where r.K = r2.K implies r = r2

The first form is a tuple-generating dependency (TGD); the second, with no
``exists`` clause, is an equality-generating dependency (EGD).
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.lang.ast import (
    Attr,
    Binding,
    Const,
    Dom,
    Eq,
    Lookup,
    SchemaRef,
    SelectFromWhere,
    Var,
)

_KEYWORDS = {
    "select",
    "struct",
    "from",
    "where",
    "and",
    "dom",
    "forall",
    "exists",
    "implies",
    "in",
    "distinct",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol>[()\[\].,=:])
    """,
    re.VERBOSE,
)


class _Token:
    """A single lexical token with its kind, text and input position."""

    __slots__ = ("kind", "text", "position")

    def __init__(self, kind, text, position):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return f"_Token({self.kind!r}, {self.text!r}, {self.position})"


def _tokenize(source):
    """Split ``source`` into tokens, raising :class:`ParseError` on garbage."""
    tokens = []
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}", position)
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            continue
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower(), match.start()))
        else:
            tokens.append(_Token(kind, text, match.start()))
    tokens.append(_Token("eof", "", length))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source):
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0
        self.bound_vars = set()

    # ------------------------------------------------------------------ #
    # token-stream helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _check(self, kind, text=None, offset=0):
        token = self._peek(offset)
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind, text=None):
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None):
        token = self._accept(kind, text)
        if token is None:
            found = self._peek()
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r} but found {found.text or found.kind!r}",
                found.position,
            )
        return token

    def _expect_done(self):
        token = self._peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input {token.text!r}", token.position)

    # ------------------------------------------------------------------ #
    # paths and conditions
    # ------------------------------------------------------------------ #
    def parse_path(self):
        """Parse a path expression with attribute and lookup postfixes."""
        path = self._parse_path_primary()
        while True:
            if self._accept("symbol", "."):
                attr = self._expect("ident")
                path = Attr(path, attr.text)
            elif self._accept("symbol", "["):
                key = self.parse_path()
                self._expect("symbol", "]")
                path = Lookup(path, key)
            else:
                return path

    def _parse_path_primary(self):
        if self._accept("keyword", "dom"):
            base = self.parse_path()
            return Dom(base)
        if self._accept("symbol", "("):
            path = self.parse_path()
            self._expect("symbol", ")")
            return path
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Const(int(token.text))
        if token.kind == "float":
            self._advance()
            return Const(float(token.text))
        if token.kind == "string":
            self._advance()
            return Const(_unquote(token.text))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Const(token.text == "true")
        if token.kind == "ident":
            self._advance()
            if token.text in self.bound_vars:
                return Var(token.text)
            return SchemaRef(token.text)
        raise ParseError(f"expected a path but found {token.text or token.kind!r}", token.position)

    def parse_conditions(self):
        """Parse ``eq and eq and ...`` into a list of :class:`Eq`."""
        conditions = [self._parse_equality()]
        while self._accept("keyword", "and"):
            conditions.append(self._parse_equality())
        return conditions

    def _parse_equality(self):
        left = self.parse_path()
        self._expect("symbol", "=")
        right = self.parse_path()
        return Eq(left, right)

    # ------------------------------------------------------------------ #
    # bindings
    # ------------------------------------------------------------------ #
    def parse_binding(self):
        """Parse a single range binding in either spelling.

        ``R r`` (OQL style, range first) and ``r in R`` (comprehension style)
        are both accepted.
        """
        if self._check("ident") and self._check("keyword", "in", offset=1):
            var = self._expect("ident").text
            self._expect("keyword", "in")
            range_path = self.parse_path()
        else:
            range_path = self.parse_path()
            var = self._expect("ident").text
        self.bound_vars.add(var)
        return Binding(var, range_path)

    def parse_binding_list(self):
        bindings = [self.parse_binding()]
        while self._accept("symbol", ","):
            bindings.append(self.parse_binding())
        return bindings

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def parse_query(self):
        """Parse a full select-from-where query."""
        self._expect("keyword", "select")
        self._accept("keyword", "distinct")
        output_tokens_start = self.index
        # The output references variables of the from clause, which has not
        # been parsed yet.  Parse the from/where clauses first by skipping
        # ahead, then come back for the output with the variables in scope.
        self._skip_until_keyword("from")
        self._expect("keyword", "from")
        bindings = self.parse_binding_list()
        conditions = []
        if self._accept("keyword", "where"):
            conditions = self.parse_conditions()
        self._expect_done()
        end_index = self.index
        self.index = output_tokens_start
        output = self._parse_output()
        self._expect("keyword", "from")
        self.index = end_index
        return SelectFromWhere(tuple(output), tuple(bindings), tuple(conditions))

    def _skip_until_keyword(self, keyword):
        depth = 0
        while True:
            token = self._peek()
            if token.kind == "eof":
                raise ParseError(f"expected keyword {keyword!r}", token.position)
            if token.kind == "symbol" and token.text in "([":
                depth += 1
            elif token.kind == "symbol" and token.text in ")]":
                depth -= 1
            elif token.kind == "keyword" and token.text == keyword and depth == 0:
                return
            self._advance()

    def _parse_output(self):
        if self._accept("keyword", "struct"):
            self._expect("symbol", "(")
            fields = [self._parse_output_field()]
            while self._accept("symbol", ","):
                fields.append(self._parse_output_field())
            self._expect("symbol", ")")
            return fields
        # Bare output list: ``select r.A, s.B`` labels the fields positionally.
        fields = []
        path = self.parse_path()
        fields.append((_default_label(path, 0), path))
        while self._accept("symbol", ","):
            path = self.parse_path()
            fields.append((_default_label(path, len(fields)), path))
        return fields

    def _parse_output_field(self):
        label = self._expect("ident").text
        if not (self._accept("symbol", ":") or self._accept("symbol", "=")):
            token = self._peek()
            raise ParseError("expected ':' or '=' in struct field", token.position)
        path = self.parse_path()
        return (label, path)

    # ------------------------------------------------------------------ #
    # dependencies
    # ------------------------------------------------------------------ #
    def parse_dependency(self):
        """Parse an embedded dependency (TGD or EGD).

        Returns a tuple ``(universal, premise, existential, conclusion)`` of
        binding/condition tuples; the schema layer wraps it into a
        :class:`repro.schema.constraints.Dependency`.
        """
        self._expect("keyword", "forall")
        universal = self.parse_binding_list()
        premise = []
        if self._accept("keyword", "where"):
            premise = self.parse_conditions()
        self._expect("keyword", "implies")
        existential = []
        conclusion = []
        if self._accept("keyword", "exists"):
            existential = self.parse_binding_list()
            if self._accept("keyword", "where"):
                conclusion = self.parse_conditions()
        else:
            conclusion = self.parse_conditions()
        self._expect_done()
        return (
            tuple(universal),
            tuple(premise),
            tuple(existential),
            tuple(conclusion),
        )


def _unquote(text):
    """Strip quotes from a string literal and process simple escapes."""
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def _default_label(path, index):
    """Choose a label for an unlabelled output field."""
    if isinstance(path, Attr):
        return path.name
    if isinstance(path, Var):
        return path.name
    return f"field{index}"


def parse_path(source):
    """Parse ``source`` as a path expression (all identifiers become variables).

    Intended for tests and interactive use; inside queries, identifier
    resolution depends on the bound variables of the from clause.
    """
    parser = _Parser(source)
    # Outside any query every identifier is treated as a variable, which is
    # the natural reading for standalone path expressions.
    parser.bound_vars = _AllNames()
    path = parser.parse_path()
    parser._expect_done()
    return path


class _AllNames:
    """A pseudo-set that contains every name (used by :func:`parse_path`)."""

    def __contains__(self, name):
        return True

    def add(self, name):
        """Accept additions silently (bindings register their variables)."""


def parse_query(source):
    """Parse an OQL-like query string into a :class:`SelectFromWhere`."""
    return _Parser(source).parse_query()


def parse_dependency(source):
    """Parse a dependency string into ``(universal, premise, existential, conclusion)``."""
    return _Parser(source).parse_dependency()
