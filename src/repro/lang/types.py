"""A small type system for schemas in the path-conjunctive data model.

The data model of the paper is the ODMG model restricted to the constructs
needed by path-conjunctive queries: base types, record (struct) types, finite
sets, and dictionaries (finite partial functions).  Relations are sets of
structs; OO classes are dictionaries from object identifiers to structs;
indexes are dictionaries from key values to sets of tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class of all types in the data model."""

    def is_collection(self):
        """Return ``True`` when values of this type can be iterated over."""
        return isinstance(self, (SetType, DictType))


@dataclass(frozen=True)
class BaseType(Type):
    """A named scalar type (``int``, ``string``, ...)."""

    name: str

    def __str__(self):
        return self.name


#: Singleton scalar types used throughout schema definitions.
IntType = BaseType("int")
FloatType = BaseType("float")
StringType = BaseType("string")
BoolType = BaseType("bool")
OidType = BaseType("oid")


@dataclass(frozen=True)
class StructType(Type):
    """A record type: an ordered mapping of attribute names to types."""

    fields: tuple = field(default_factory=tuple)

    @classmethod
    def of(cls, **fields):
        """Build a struct type from keyword arguments, preserving order."""
        return cls(tuple(fields.items()))

    @property
    def attribute_names(self):
        """Return the attribute names in declaration order."""
        return tuple(name for name, _ in self.fields)

    def attribute_type(self, name):
        """Return the type of attribute ``name``.

        Raises
        ------
        KeyError
            If the struct has no such attribute.
        """
        for attr, attr_type in self.fields:
            if attr == name:
                return attr_type
        raise KeyError(name)

    def has_attribute(self, name):
        """Return ``True`` when the struct declares attribute ``name``."""
        return any(attr == name for attr, _ in self.fields)

    def __str__(self):
        inner = ", ".join(f"{name}: {ftype}" for name, ftype in self.fields)
        return f"struct{{{inner}}}"


@dataclass(frozen=True)
class SetType(Type):
    """A finite set of elements of a common type."""

    element: Type

    def __str__(self):
        return f"set<{self.element}>"


@dataclass(frozen=True)
class DictType(Type):
    """A dictionary (finite partial function) from keys to entries.

    Dictionaries model both OO class extents (oid -> object state) and
    physical access structures such as indexes (key value -> set of tuples).
    """

    key: Type
    entry: Type

    def __str__(self):
        return f"dict<{self.key}, {self.entry}>"
