"""Pretty printers that render internal forms back into the OQL-like syntax.

The printers are designed so that ``parse_query(format_query(q))`` round-trips
(modulo whitespace), which the tests rely on.
"""

from __future__ import annotations


def format_path(path):
    """Render a path expression."""
    return str(path)


def format_conditions(conditions):
    """Render a conjunction of equalities."""
    return " and ".join(str(condition) for condition in conditions)


def format_bindings(bindings):
    """Render a from-clause binding list in the OQL ``Range var`` style."""
    return ", ".join(f"{binding.range} {binding.var}" for binding in bindings)


def format_query(query, indent=""):
    """Render a :class:`SelectFromWhere` (or any object with the same shape).

    Parameters
    ----------
    query:
        An object with ``output``, ``bindings`` and ``conditions`` attributes.
    indent:
        Prefix prepended to every line, for nested display.
    """
    fields = ", ".join(f"{label}: {path}" for label, path in query.output)
    lines = [f"{indent}select struct({fields})"]
    lines.append(f"{indent}from {format_bindings(query.bindings)}")
    if query.conditions:
        lines.append(f"{indent}where {format_conditions(query.conditions)}")
    return "\n".join(lines)


def format_dependency(dependency, indent=""):
    """Render a dependency in the ``forall ... implies ...`` concrete syntax.

    Accepts either a :class:`repro.schema.constraints.Dependency` or a raw
    ``(universal, premise, existential, conclusion)`` tuple.
    """
    if isinstance(dependency, tuple):
        universal, premise, existential, conclusion = dependency
    else:
        universal = dependency.universal
        premise = dependency.premise
        existential = dependency.existential
        conclusion = dependency.conclusion

    parts = [f"{indent}forall {_format_prefix(universal)}"]
    if premise:
        parts.append(f"where {format_conditions(premise)}")
    parts.append("implies")
    if existential:
        parts.append(f"exists {_format_prefix(existential)}")
        if conclusion:
            parts.append(f"where {format_conditions(conclusion)}")
    else:
        parts.append(format_conditions(conclusion))
    return " ".join(parts)


def _format_prefix(bindings):
    return ", ".join(f"{binding.var} in {binding.range}" for binding in bindings)


def format_plan_summary(query):
    """One-line summary of a plan: the collections it scans, in order.

    Used by the experiment reports (e.g. the Figure 9 table lists for each
    plan the views and corner relations used).
    """
    names = []
    for binding in query.bindings:
        names.append(str(binding.range))
    return " ⨝ ".join(names) if names else "(empty)"


__all__ = [
    "format_bindings",
    "format_conditions",
    "format_dependency",
    "format_path",
    "format_plan_summary",
    "format_query",
]
