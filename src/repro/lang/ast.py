"""Abstract syntax shared by queries, plans and constraints.

The central notion is the *path expression* (:class:`Path`), which denotes a
value computed from variables, schema collections, attribute projection,
dictionary lookup and dictionary domain.  Queries and dependencies are built
out of three ingredients:

* :class:`Binding` -- ``x in P`` binds a variable to the elements of a
  collection-valued path (a relation, ``dom M``, ``M[k]``, or a set-valued
  attribute such as ``M[k].N``).
* :class:`Eq` -- an equality condition between two paths.
* :class:`SelectFromWhere` -- the surface select-from-where form with a
  struct-valued output.

All AST nodes are immutable (frozen dataclasses) and hashable, which the
congruence-closure and memoisation machinery relies on.
"""

from __future__ import annotations

from dataclasses import dataclass


class Path:
    """Base class for path expressions.

    Subclasses: :class:`Var`, :class:`Const`, :class:`SchemaRef`,
    :class:`Attr`, :class:`Lookup`, :class:`Dom`.
    """

    __slots__ = ()

    def attr(self, name):
        """Return the projection of this path on attribute ``name``."""
        return Attr(self, name)

    def lookup(self, key):
        """Return the dictionary lookup ``self[key]``."""
        return Lookup(self, key)

    @property
    def dom(self):
        """Return ``dom self`` (the set of keys of a dictionary path)."""
        return Dom(self)


@dataclass(frozen=True)
class Var(Path):
    """A query or constraint variable."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Const(Path):
    """A literal constant (number, string or boolean)."""

    value: object

    def __str__(self):
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class SchemaRef(Path):
    """A reference to a named schema collection (relation, view, dictionary)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Attr(Path):
    """Attribute projection ``base.attr``."""

    base: Path
    name: str

    def __str__(self):
        return f"{self.base}.{self.name}"


@dataclass(frozen=True)
class Lookup(Path):
    """Dictionary lookup ``dictionary[key]``."""

    dictionary: Path
    key: Path

    def __str__(self):
        return f"{self.dictionary}[{self.key}]"


@dataclass(frozen=True)
class Dom(Path):
    """``dom base``: the set of keys on which a dictionary is defined."""

    base: Path

    def __str__(self):
        return f"dom {self.base}"


@dataclass(frozen=True)
class Eq:
    """An equality condition between two paths."""

    left: Path
    right: Path

    def __str__(self):
        return f"{self.left} = {self.right}"

    def normalized(self):
        """Return an equivalent :class:`Eq` with a canonical side order.

        Useful for deduplicating conditions: ``Eq(a, b)`` and ``Eq(b, a)``
        normalise to the same object.
        """
        left_key = _path_sort_key(self.left)
        right_key = _path_sort_key(self.right)
        if right_key < left_key:
            return Eq(self.right, self.left)
        return self

    def substitute(self, mapping):
        """Return the condition with variables replaced per ``mapping``."""
        return Eq(substitute(self.left, mapping), substitute(self.right, mapping))


@dataclass(frozen=True)
class Binding:
    """A range binding ``var in range_path`` from a from-clause or a prefix."""

    var: str
    range: Path

    def __str__(self):
        return f"{self.range} {self.var}"

    def substitute(self, mapping):
        """Return the binding with variables in the range replaced."""
        return Binding(self.var, substitute(self.range, mapping))


@dataclass(frozen=True)
class SelectFromWhere:
    """The select-from-where surface form of a path-conjunctive query.

    Attributes
    ----------
    output:
        Tuple of ``(label, path)`` pairs -- the ``select struct(...)`` clause.
    bindings:
        Tuple of :class:`Binding` -- the ``from`` clause, in order.
    conditions:
        Tuple of :class:`Eq` -- the conjunctive ``where`` clause.
    """

    output: tuple
    bindings: tuple
    conditions: tuple

    def __str__(self):
        from repro.lang.pretty import format_query

        return format_query(self)


def substitute(path, mapping):
    """Replace variables in ``path`` according to ``mapping``.

    Parameters
    ----------
    path:
        The path expression to rewrite.
    mapping:
        A mapping from variable *names* to replacement :class:`Path` objects.
        Variables absent from the mapping are left untouched.
    """
    if isinstance(path, Var):
        return mapping.get(path.name, path)
    if isinstance(path, (Const, SchemaRef)):
        return path
    if isinstance(path, Attr):
        return Attr(substitute(path.base, mapping), path.name)
    if isinstance(path, Lookup):
        return Lookup(substitute(path.dictionary, mapping), substitute(path.key, mapping))
    if isinstance(path, Dom):
        return Dom(substitute(path.base, mapping))
    raise TypeError(f"not a path expression: {path!r}")


def path_variables(path):
    """Return the set of variable names occurring in ``path``."""
    if isinstance(path, Var):
        return {path.name}
    if isinstance(path, (Const, SchemaRef)):
        return set()
    if isinstance(path, Attr):
        return path_variables(path.base)
    if isinstance(path, Lookup):
        return path_variables(path.dictionary) | path_variables(path.key)
    if isinstance(path, Dom):
        return path_variables(path.base)
    raise TypeError(f"not a path expression: {path!r}")


def path_root(path):
    """Return the root of a left-linear path.

    For ``r.A.B`` this is the variable ``r``; for ``M[k].N`` it is the schema
    reference ``M``.  Lookups contribute their dictionary side only; the key
    side is a separate sub-path.
    """
    if isinstance(path, (Var, Const, SchemaRef)):
        return path
    if isinstance(path, Attr):
        return path_root(path.base)
    if isinstance(path, Lookup):
        return path_root(path.dictionary)
    if isinstance(path, Dom):
        return path_root(path.base)
    raise TypeError(f"not a path expression: {path!r}")


def subpaths(path):
    """Yield ``path`` and every sub-path it contains (post-order)."""
    if isinstance(path, Attr):
        yield from subpaths(path.base)
    elif isinstance(path, Lookup):
        yield from subpaths(path.dictionary)
        yield from subpaths(path.key)
    elif isinstance(path, Dom):
        yield from subpaths(path.base)
    yield path


def schema_names(path):
    """Return the set of schema collection names referenced by ``path``."""
    return {p.name for p in subpaths(path) if isinstance(p, SchemaRef)}


def _path_sort_key(path):
    """A total order on paths used only to canonicalise condition sides."""
    return (path.__class__.__name__, str(path))
