"""Surface language for path-conjunctive queries and constraints.

The sub-package contains:

* :mod:`repro.lang.ast` -- path expressions, equality conditions, bindings and
  the select-from-where query form shared by the whole library.
* :mod:`repro.lang.types` -- a small type system (base, struct, set and
  dictionary types) used to describe logical and physical schemas.
* :mod:`repro.lang.parser` -- an OQL-like concrete syntax for queries and
  embedded dependencies.
* :mod:`repro.lang.pretty` -- pretty printers that render the internal forms
  back into the concrete syntax.
"""

from repro.lang.ast import (
    Attr,
    Binding,
    Const,
    Dom,
    Eq,
    Lookup,
    Path,
    SchemaRef,
    SelectFromWhere,
    Var,
    path_root,
    path_variables,
    substitute,
)
from repro.lang.parser import parse_dependency, parse_path, parse_query
from repro.lang.pretty import format_dependency, format_path, format_query
from repro.lang.types import (
    BoolType,
    DictType,
    FloatType,
    IntType,
    SetType,
    StringType,
    StructType,
    Type,
)

__all__ = [
    "Attr",
    "Binding",
    "BoolType",
    "Const",
    "DictType",
    "Dom",
    "Eq",
    "FloatType",
    "IntType",
    "Lookup",
    "Path",
    "SchemaRef",
    "SelectFromWhere",
    "SetType",
    "StringType",
    "StructType",
    "Type",
    "Var",
    "format_dependency",
    "format_path",
    "format_query",
    "parse_dependency",
    "parse_path",
    "parse_query",
    "path_root",
    "path_variables",
    "substitute",
]
