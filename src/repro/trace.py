"""Request tracing primitives: per-stage span accumulation with zero deps.

The serving tier (:mod:`repro.service`) wants a per-request breakdown of
where time goes — admission wait vs. shard queue vs. chase fixpoints vs.
containment checks vs. plan serialization.  The engine layers
(:mod:`repro.chase`, :mod:`repro.cq`) cannot import the service package
(layering), so the tracing core lives here at the package root and is pure
stdlib: monotonic clocks, a lock, a ``threading.local``.

Design:

* :class:`RequestTrace` is one request's span tree: a root span (created at
  ``submit``, finished when the response resolves) plus one *aggregate*
  child span per stage.  Stages are aggregates, not individual spans,
  because a single request triggers thousands of ``restrict_to`` calls —
  recording each as its own span would cost more than the work measured.
  Each stage accumulates ``(seconds, count)`` plus free-form attributes
  (cache/memo attribution).
* Stage attribution is *ambient*: :func:`activate` installs a trace as the
  current thread's collector and :func:`traced_stage` decorates engine
  entry points.  A plain ``threading.local`` (not ``contextvars``) is
  deliberate — context vars do not propagate into pool worker threads, so
  the scheduler re-activates the trace explicitly on each worker (the
  trace object rides inside the wave payload; service executors are
  threads/serial only, so nothing here ever crosses a pickle boundary).
* Accounting is **outermost-only** per thread: when a traced stage calls
  another traced stage (``ChaseCache.chase_result`` → ``chase``,
  containment minimization → ``restrict_to``), only the outermost frame
  records.  This keeps per-thread stage times non-overlapping, so on a
  serial executor the stage durations sum to at most the request latency.
  On a thread pool the stages accumulate *CPU-seconds across workers*,
  which may legitimately exceed wall-clock latency — that is attribution,
  not a bug, and the service docs say so.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager

#: Canonical stage names, in pipeline order.  ``as_dict`` orders known
#: stages this way; unknown stages (future instrumentation) sort after.
STAGES = (
    "admission_wait",
    "queue_wait",
    "chase",
    "containment",
    "restrict",
    "serialize",
)


class RequestTrace:  # repro-lint: ignore[pickle-safety] never pickled — rides only thread-pool payloads
    """One request's span tree: root duration + per-stage aggregates.

    Thread-safe: stages are recorded concurrently from pool workers.  The
    ``observer`` (when given) is any object with an
    ``observe_stage(stage, seconds)`` method — the service tracer uses it
    to feed the Prometheus histograms at record time, so histogram data is
    live even before the trace finishes.
    """

    def __init__(self, request_id=None, observer=None):
        self.request_id = request_id
        self.observer = observer  # write-once in __init__, read-only after
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._stages = {}  # guarded-by: _lock
        self._attrs = {}  # guarded-by: _lock
        self._duration = None  # guarded-by: _lock
        self._status = "pending"  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, stage, seconds, count=1):
        """Add ``seconds`` (and ``count`` calls) to ``stage``'s aggregate."""
        with self._lock:
            entry = self._stages.setdefault(stage, [0.0, 0])
            entry[0] += seconds
            entry[1] += count
        observer = self.observer
        if observer is not None:
            observer.observe_stage(stage, seconds)

    def annotate(self, stage, **attrs):
        """Attach attributes (cache hits, memo hits, ...) to a stage span."""
        with self._lock:
            self._attrs.setdefault(stage, {}).update(attrs)

    def finish(self, status="ok"):
        """Seal the root span (idempotent — the first finish wins)."""
        elapsed = time.perf_counter() - self._t0
        with self._lock:
            if self._duration is None:
                self._duration = elapsed
                self._status = status
        return self

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def duration(self):
        """Root-span seconds, or ``None`` while the request is in flight."""
        with self._lock:
            return self._duration

    @property
    def status(self):
        with self._lock:
            return self._status

    def stage_seconds(self):
        """``{stage: seconds}`` snapshot of the aggregates so far."""
        with self._lock:
            return {name: entry[0] for name, entry in self._stages.items()}

    def as_dict(self):
        """Span tree as plain JSON-able data (the wire/trace-log format)."""
        order = {name: index for index, name in enumerate(STAGES)}
        with self._lock:
            names = sorted(
                self._stages, key=lambda name: (order.get(name, len(order)), name)
            )
            spans = []
            for name in names:
                seconds, count = self._stages[name]
                span = {
                    "stage": name,
                    "seconds": round(seconds, 9),
                    "count": count,
                }
                attrs = self._attrs.get(name)
                if attrs:
                    span["attrs"] = dict(attrs)
                spans.append(span)
            duration = self._duration
            status = self._status
        record = {
            "request_id": self.request_id,
            "status": status,
            "started_at": round(self.started_at, 6),
            "stages": spans,
        }
        if duration is not None:
            record["duration_s"] = round(duration, 9)
        return record


# ---------------------------------------------------------------------- #
# ambient activation
# ---------------------------------------------------------------------- #
_local = threading.local()


def active_trace():
    """The trace installed on this thread by :func:`activate`, or ``None``."""
    return _local.__dict__.get("trace")


@contextmanager
def activate(trace):
    """Install ``trace`` as this thread's ambient stage collector.

    ``activate(None)`` is a no-op context manager, so call sites do not
    branch on whether tracing is enabled.  Nesting restores the previous
    trace on exit (pool workers swap traces per payload).
    """
    if trace is None:
        yield None
        return
    state = _local.__dict__
    previous = state.get("trace")
    previous_depth = state.get("in_stage", False)
    state["trace"] = trace
    state["in_stage"] = False
    try:
        yield trace
    finally:
        state["trace"] = previous
        state["in_stage"] = previous_depth


def traced_stage(stage):
    """Decorate an engine entry point to bill its wall time to ``stage``.

    Outermost-only: when a traced function calls another traced function on
    the same thread, the inner frame does not record — the outer stage owns
    the whole interval.  The no-trace fast path is one dict lookup, so
    decorated hot paths (``restrict_to``) stay cheap when tracing is off.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def traced(*args, **kwargs):
            state = _local.__dict__
            trace = state.get("trace")
            if trace is None or state.get("in_stage"):
                return fn(*args, **kwargs)
            state["in_stage"] = True
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                state["in_stage"] = False
                trace.record(stage, time.perf_counter() - start)

        return traced

    return decorate


__all__ = [
    "STAGES",
    "RequestTrace",
    "activate",
    "active_trace",
    "traced_stage",
]
