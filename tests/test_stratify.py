"""Unit tests for OQF query fragmentation and OCS constraint stratification."""

from repro.chase.stratify import (
    assemble_plan,
    constraints_interact,
    decompose_query,
    stratify_constraints,
)
from repro.cq.containment import is_equivalent
from repro.schema.compile import inverse_dependencies, key_dependency
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3


class TestDecomposition:
    def test_ec1_fragments_one_per_relation(self):
        workload = build_ec1(relations=3)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        assert decomposition.fragment_count == 3
        assert all(len(fragment.variables) == 1 for fragment in decomposition.fragments)

    def test_ec2_two_stars_two_fragments_plus_leftover(self):
        workload = build_ec2(stars=2, corners=3, views=1)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        # One fragment per star (covered by its view) plus the uncovered
        # corners pooled into a single leftover fragment.
        assert decomposition.fragment_count == 3
        covered = [frag for frag in decomposition.fragments if frag.skeletons]
        assert len(covered) == 2

    def test_overlapping_views_collapse_to_one_fragment(self):
        workload = build_ec2(stars=1, corners=3, views=2)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        covered = [frag for frag in decomposition.fragments if frag.skeletons]
        assert len(covered) == 1
        assert len(covered[0].skeletons) == 2

    def test_cross_fragment_conditions_become_links(self):
        workload = build_ec2(stars=2, corners=3, views=1)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        assert decomposition.cross_conditions
        for left_frag, left_label, right_frag, right_label in decomposition.cross_conditions:
            assert left_frag != right_frag
            left = decomposition.fragments[left_frag].query
            right = decomposition.fragments[right_frag].query
            assert left.output_path(left_label) is not None
            assert right.output_path(right_label) is not None

    def test_fragment_outputs_cover_original_outputs(self):
        workload = build_ec2(stars=2, corners=3, views=1)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        for label, _ in workload.query.output:
            assert decomposition.fragment_of_output(label) is not None

    def test_assembling_identity_fragments_recovers_query(self):
        workload = build_ec2(stars=2, corners=2, views=1)
        decomposition = decompose_query(workload.query, workload.catalog.skeletons())
        assembled = assemble_plan(
            decomposition, [fragment.query for fragment in decomposition.fragments]
        )
        assert is_equivalent(assembled, workload.query)


class TestConstraintStratification:
    def test_inverse_pair_interacts(self):
        forward, backward = inverse_dependencies("M1", "N", "M2", "P")
        assert constraints_interact(forward, backward)

    def test_different_relationships_do_not_interact(self):
        first, _ = inverse_dependencies("M1", "N", "M2", "P")
        second, _ = inverse_dependencies("M2", "N", "M3", "P")
        assert not constraints_interact(first, second)

    def test_key_does_not_merge_view_strata(self):
        workload = build_ec2(stars=1, corners=3, views=2)
        strata = stratify_constraints(workload.catalog.constraints())
        # One stratum per view; the key EGD is appended to both.
        assert len(strata) == 2
        for stratum in strata:
            assert any(dep.is_egd for dep in stratum)

    def test_ec3_one_stratum_per_relationship(self):
        workload = build_ec3(classes=4)
        strata = stratify_constraints(workload.catalog.constraints())
        assert len(strata) == 3

    def test_egds_can_be_stratified_structurally(self):
        key = key_dependency("R1", ["K"])
        strata = stratify_constraints([key], egd_in_every_stratum=False)
        assert strata == [[key]]

    def test_empty_constraint_set(self):
        assert stratify_constraints([]) == []

    def test_only_egds(self):
        key = key_dependency("R1", ["K"])
        strata = stratify_constraints([key])
        assert strata == [[key]]

    def test_secondary_index_nonemptiness_joins_its_skeleton(self):
        workload = build_ec1(relations=2, secondary_indexes=1)
        strata = stratify_constraints(workload.catalog.constraints())
        # PI1, PI2 and SI1 each form their own stratum; SI1's non-emptiness
        # constraint lands in SI1's stratum.
        assert len(strata) == 3
        si_stratum = [s for s in strata if any("SI1" in dep.name for dep in s)]
        assert len(si_stratum) == 1
        assert sum(1 for dep in si_stratum[0] if "SI1" in dep.name) == 3
