"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.chase.backchase import FullBackchase
from repro.chase.chase import chase
from repro.chase.implication import equivalent_under
from repro.cq.congruence import CongruenceClosure
from repro.cq.containment import find_containment_mapping, is_equivalent
from repro.cq.homomorphism import find_homomorphisms
from repro.cq.memo import ContainmentMemo
from repro.cq.query import PCQuery
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.lang.ast import Attr, Binding, Const, Eq, SchemaRef, Var
from repro.lang.parser import parse_query
from repro.lang.pretty import format_query
from repro.schema.catalog import Catalog


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
variables = st.sampled_from(["x", "y", "z", "u", "v"])
attributes = st.sampled_from(["A", "B", "K"])


@st.composite
def simple_paths(draw):
    var = Var(draw(variables))
    if draw(st.booleans()):
        return Attr(var, draw(attributes))
    return var


@st.composite
def equalities(draw):
    left = draw(simple_paths())
    if draw(st.booleans()):
        right = draw(simple_paths())
    else:
        right = Const(draw(st.integers(min_value=0, max_value=3)))
    return Eq(left, right)


@st.composite
def random_chain_queries(draw):
    """Random conjunctive queries over a fixed 3-relation schema."""
    relations = ["T1", "T2", "T3"]
    size = draw(st.integers(min_value=1, max_value=3))
    bindings = []
    for position in range(size):
        bindings.append(Binding(f"b{position}", SchemaRef(draw(st.sampled_from(relations)))))
    conditions = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        first = draw(st.integers(min_value=0, max_value=size - 1))
        second = draw(st.integers(min_value=0, max_value=size - 1))
        conditions.append(
            Eq(
                Attr(Var(f"b{first}"), draw(attributes)),
                Attr(Var(f"b{second}"), draw(attributes)),
            )
        )
    output = [("O0", Attr(Var("b0"), "A"))]
    return PCQuery.create(output, bindings, conditions).validate()


# ---------------------------------------------------------------------- #
# congruence closure
# ---------------------------------------------------------------------- #
@given(st.lists(equalities(), max_size=8), simple_paths(), simple_paths(), simple_paths())
@settings(max_examples=60, deadline=None)
def test_congruence_is_an_equivalence_relation(eqs, a, b, c):
    closure = CongruenceClosure(eqs)
    assert closure.equal(a, a)
    if closure.equal(a, b):
        assert closure.equal(b, a)
    if closure.equal(a, b) and closure.equal(b, c):
        assert closure.equal(a, c)


@given(st.lists(equalities(), max_size=8), simple_paths(), simple_paths())
@settings(max_examples=60, deadline=None)
def test_congruence_propagates_to_attributes(eqs, a, b):
    closure = CongruenceClosure(eqs)
    if closure.equal(a, b):
        assert closure.equal(Attr(a, "Z"), Attr(b, "Z"))


@given(st.lists(equalities(), max_size=8))
@settings(max_examples=60, deadline=None)
def test_congruence_classes_partition_terms(eqs):
    closure = CongruenceClosure(eqs)
    classes = closure.classes()
    seen = []
    for cls in classes:
        seen.extend(id(term) for term in cls)
    assert len(seen) == len(closure.terms())


@given(st.lists(equalities(), max_size=8), simple_paths(), simple_paths())
@settings(max_examples=60, deadline=None)
def test_asserted_equalities_hold(eqs, a, b):
    closure = CongruenceClosure(eqs)
    for equality in eqs:
        assert closure.equal(equality.left, equality.right)
    # Merging two arbitrary terms makes them equal.
    closure.merge(a, b)
    assert closure.equal(a, b)


# ---------------------------------------------------------------------- #
# queries: round-trips and restriction
# ---------------------------------------------------------------------- #
@given(random_chain_queries())
@settings(max_examples=50, deadline=None)
def test_query_text_round_trip(query):
    assert PCQuery.from_sfw(parse_query(format_query(query))) == query


@given(random_chain_queries())
@settings(max_examples=40, deadline=None)
def test_restriction_yields_contained_subquery(query):
    # Every restriction that succeeds is a superset (as a query result) of the
    # original: the original is contained in the subquery.
    from repro.cq.containment import is_contained_in

    for var in query.variables:
        restricted = query.restrict_to(query.variable_set - {var})
        if restricted is not None:
            restricted.validate()
            assert is_contained_in(query, restricted)


@given(random_chain_queries())
@settings(max_examples=40, deadline=None)
def test_homomorphism_identity_always_exists(query):
    mappings = list(find_homomorphisms(query.bindings, query.conditions, query))
    assert {var: Var(var) for var in query.variables} in mappings


@given(random_chain_queries())
@settings(max_examples=30, deadline=None)
def test_backchase_without_constraints_minimizes(query):
    result = FullBackchase(query, []).run(query)
    assert result.plan_count >= 1
    for plan in result.plans:
        assert is_equivalent(plan.query, query)
        assert plan.query.size() <= query.size()


# ---------------------------------------------------------------------- #
# containment memo soundness (the serving layer's cross-request reuse)
# ---------------------------------------------------------------------- #
def _fresh_verdict(source, target):
    """The reference semantics a memoised verdict must always reproduce."""
    return find_containment_mapping(source, target) is not None


@given(
    st.lists(
        st.tuples(random_chain_queries(), random_chain_queries()), min_size=1, max_size=10
    )
)
@settings(max_examples=40, deadline=None)
def test_memoised_verdict_equals_fresh_verdict(pairs):
    # A tiny LRU bound forces evictions mid-sequence: verdicts answered from
    # the memo, recomputed after eviction, and recomputed-then-rememoised must
    # all equal the fresh find_containment_mapping verdict.
    memo = ContainmentMemo(max_entries=3)
    for source, target in pairs:
        fresh = _fresh_verdict(source, target)
        assert memo.check(source, target) == fresh
        # Immediate re-query: answered from the memo (or rememoised), same verdict.
        assert memo.check(source, target) == fresh
    stats = memo.stats()
    assert stats["hits"] + stats["misses"] == 2 * len(pairs)
    assert stats["entries"] <= 3


@given(st.lists(random_chain_queries(), min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_memo_stays_sound_across_eviction_boundaries(queries):
    # Re-deciding the full pair matrix three times over a 2-entry memo makes
    # every key cross the eviction boundary repeatedly; soundness must hold on
    # every round (a stale or cross-wired entry would flip some verdict).
    memo = ContainmentMemo(max_entries=2)
    expected = {
        (i, j): _fresh_verdict(source, target)
        for i, source in enumerate(queries)
        for j, target in enumerate(queries)
    }
    for _ in range(3):
        for i, source in enumerate(queries):
            for j, target in enumerate(queries):
                assert memo.check(source, target) == expected[(i, j)]
    distinct_keys = {
        ContainmentMemo.key(source, target) for source in queries for target in queries
    }
    if len(distinct_keys) > 2:
        assert memo.stats()["evictions"] > 0


@given(random_chain_queries())
@settings(max_examples=25, deadline=None)
def test_backchase_with_memo_produces_identical_plans(query):
    # The memo must be invisible to the engine: same plans, memo or not —
    # including a warm second run answered largely from the memo.
    baseline = FullBackchase(query, []).run(query)
    memo = ContainmentMemo(max_entries=8)
    first = FullBackchase(query, [], containment_memo=memo).run(query)
    second = FullBackchase(query, [], containment_memo=memo).run(query)
    reference = {plan.signature() for plan in baseline.plans}
    assert {plan.signature() for plan in first.plans} == reference
    assert {plan.signature() for plan in second.plans} == reference


@given(random_chain_queries(), random_chain_queries())
@settings(max_examples=40, deadline=None)
def test_memo_key_is_structural(query, other):
    # Two structurally identical queries (same signature) must share one memo
    # entry; distinct signatures must not collide.
    memo = ContainmentMemo()
    memo.check(query, other)
    assert memo.lookup(query, other) == _fresh_verdict(query, other)
    if query.signature() == other.signature():
        # Same canonical pair key: the reversed lookup answers from the same
        # entry (and the verdict is symmetric for identical signatures).
        assert memo.lookup(other, query) == memo.lookup(query, other)


# ---------------------------------------------------------------------- #
# chase soundness and executor agreement on random instances
# ---------------------------------------------------------------------- #
def _simple_catalog():
    catalog = Catalog()
    catalog.add_relation("T1", ["A", "B", "K"])
    catalog.add_relation("T2", ["A", "B", "K"])
    catalog.add_relation("T3", ["A", "B", "K"])
    catalog.add_foreign_key("T1", ["A"], "T2", ["A"])
    catalog.add_key("T1", ["K"])
    return catalog


@given(random_chain_queries())
@settings(max_examples=25, deadline=None)
def test_chase_preserves_equivalence_under_constraints(query):
    constraints = _simple_catalog().constraints()
    chased = chase(query, constraints).query
    assert equivalent_under(chased, query, constraints)


@given(
    random_chain_queries(),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=0,
        max_size=12,
    ),
)
@settings(max_examples=25, deadline=None)
def test_minimized_plans_agree_with_original_on_random_data(query, row_specs):
    database = Database()
    rows = {"T1": [], "T2": [], "T3": []}
    for index, (a, b, k) in enumerate(row_specs):
        rows[["T1", "T2", "T3"][index % 3]].append({"A": a, "B": b, "K": k})
    for name, table_rows in rows.items():
        database.add_table(name, table_rows)
    # C&B equivalence is set-based (path-conjunctive queries under set
    # semantics), so the comparison ignores multiplicities.
    reference = {tuple(sorted(row.items())) for row in execute(query, database)}
    result = FullBackchase(query, []).run(query)
    for plan in result.plans:
        produced = {tuple(sorted(row.items())) for row in execute(plan.query, database)}
        assert produced == reference
