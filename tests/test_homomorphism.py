"""Unit tests for homomorphism search and containment mappings."""

from repro.cq.containment import (
    find_containment_mapping,
    is_contained_in,
    is_equivalent,
    is_minimal,
    minimize,
    outputs_match,
)
from repro.cq.homomorphism import (
    SearchStats,
    count_homomorphisms,
    find_homomorphism,
    find_homomorphisms,
    query_homomorphisms,
)
from repro.cq.query import PCQuery
from repro.lang.ast import Const, Eq, Var


def q(text):
    return PCQuery.parse(text).validate()


class TestHomomorphisms:
    def test_identity_homomorphism_exists(self, star_query):
        mappings = list(query_homomorphisms(star_query, star_query))
        assert {var: Var(var) for var in star_query.variables} in mappings

    def test_range_names_must_match(self):
        source = q("select struct(X: r.A) from R r")
        target = q("select struct(X: s.A) from S s")
        assert find_homomorphism(source.bindings, source.conditions, target) is None

    def test_conditions_must_be_implied(self):
        source = q("select struct(X: r.A) from R r where r.A = 1")
        target_without = q("select struct(X: r.A) from R r")
        target_with = q("select struct(X: r.A) from R r where r.A = 1")
        assert find_homomorphism(source.bindings, source.conditions, target_without) is None
        assert find_homomorphism(source.bindings, source.conditions, target_with) is not None

    def test_homomorphism_can_collapse_variables(self):
        source = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        target = q("select struct(X: r.A) from R r")
        mapping = find_homomorphism(source.bindings, source.conditions, target)
        assert mapping == {"r1": Var("r"), "r2": Var("r")}

    def test_injective_mode_forbids_collapsing(self):
        source = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        target = q("select struct(X: r.A) from R r")
        assert (
            find_homomorphism(source.bindings, source.conditions, target, injective=True) is None
        )

    def test_count_homomorphisms(self):
        source = q("select struct(X: r.A) from R r")
        target = q("select struct(X: r1.A) from R r1, R r2")
        assert count_homomorphisms(source.bindings, source.conditions, target) == 2

    def test_initial_mapping_is_respected(self):
        source = q("select struct(X: r.A) from R r")
        target = q("select struct(X: r1.A) from R r1, R r2")
        mappings = list(
            find_homomorphisms(
                source.bindings, source.conditions, target, initial={"r": Var("r2")}
            )
        )
        assert mappings == [{"r": Var("r2")}]

    def test_initial_mapping_with_wrong_range_rejected(self):
        source = q("select struct(X: r.A) from R r")
        target = q("select struct(X: s.A) from S s, R r1")
        mappings = list(
            find_homomorphisms(
                source.bindings, source.conditions, target, initial={"r": Var("s")}
            )
        )
        assert mappings == []

    def test_dependent_ranges_follow_the_mapping(self):
        source = q("select struct(O: o) from dom M k, M[k].N o")
        target = q("select struct(O: o2) from dom M k2, M[k2].N o2")
        mapping = find_homomorphism(source.bindings, source.conditions, target)
        assert mapping == {"k": Var("k2"), "o": Var("o2")}

    def test_pruning_matches_naive_search(self, star_query):
        source = q("select struct(B1: s.B) from R1 r, S11 s where r.A1 = s.A")
        pruned = count_homomorphisms(source.bindings, source.conditions, star_query)
        naive = count_homomorphisms(
            source.bindings, source.conditions, star_query, prune_early=False
        )
        assert pruned == naive == 1

    def test_zero_bindings_checks_preassigned_conditions(self):
        # Regression test: with every source variable pre-assigned via
        # ``initial`` there is no binding to process, and the slot-0
        # conditions used to be skipped entirely, yielding an invalid mapping.
        target = q("select struct(A: r.A) from R r")
        failing = [Eq(Var("x").attr("A"), Const(99))]
        assert (
            find_homomorphism([], failing, target, initial={"x": Var("r")}) is None
        )
        assert (
            find_homomorphism([], failing, target, initial={"x": Var("r")}, prune_early=False)
            is None
        )
        holding = [Eq(Var("x").attr("A"), Var("r").attr("A"))]
        assert find_homomorphism([], holding, target, initial={"x": Var("r")}) == {
            "x": Var("r")
        }
        assert find_homomorphism([], [], target, initial={"x": Var("r")}) == {"x": Var("r")}

    def test_indexed_and_scan_lookup_agree(self, star_query):
        # The candidate index is a pure optimization: same mappings, same order.
        source = q(
            "select struct(B1: s1.B, B2: s2.B) from R1 r, S11 s1, S12 s2 "
            "where r.A1 = s1.A and r.A2 = s2.A"
        )
        indexed = list(
            find_homomorphisms(source.bindings, source.conditions, star_query, use_index=True)
        )
        scanned = list(
            find_homomorphisms(source.bindings, source.conditions, star_query, use_index=False)
        )
        assert indexed == scanned
        assert len(indexed) >= 1

    def test_search_stats_count_less_work_with_index(self, star_query):
        source = q("select struct(B1: s.B) from R1 r, S11 s where r.A1 = s.A")
        indexed_stats, scan_stats = SearchStats(), SearchStats()
        count_homomorphisms(
            source.bindings, source.conditions, star_query, stats=indexed_stats, use_index=True
        )
        count_homomorphisms(
            source.bindings, source.conditions, star_query, stats=scan_stats, use_index=False
        )
        assert indexed_stats.closure_queries > 0
        assert indexed_stats.closure_queries < scan_stats.closure_queries
        assert indexed_stats.candidates_tried <= scan_stats.candidates_tried

    def test_equality_modulo_where_clause(self):
        # The source range is S, the target binds s over S and t with t = s;
        # mapping onto t is allowed because the ranges are equal modulo the
        # where clause of the target.
        target = q("select struct(X: s.A) from S s, S t where s = t")
        source = q("select struct(X: a.A) from S a, S b where a.A = b.A")
        assert count_homomorphisms(source.bindings, source.conditions, target) == 4


class TestContainment:
    def test_equivalent_queries_with_renamed_variables(self):
        first = q("select struct(X: r.A) from R r, S s where r.A = s.A")
        second = q("select struct(X: a.A) from R a, S b where a.A = b.A")
        assert is_equivalent(first, second)

    def test_containment_is_directional(self):
        smaller = q("select struct(X: r.A) from R r where r.A = 1")
        larger = q("select struct(X: r.A) from R r")
        assert is_contained_in(smaller, larger)
        assert not is_contained_in(larger, smaller)

    def test_outputs_must_match(self):
        first = q("select struct(X: r.A) from R r")
        second = q("select struct(X: r.B) from R r")
        assert not is_equivalent(first, second)

    def test_output_labels_must_match(self):
        first = q("select struct(X: r.A) from R r")
        second = q("select struct(Y: r.A) from R r")
        assert not is_equivalent(first, second)
        assert not outputs_match(first, second, {"r": Var("r")})

    def test_redundant_join_is_contained(self):
        redundant = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        minimal = q("select struct(X: r.A) from R r")
        assert is_equivalent(redundant, minimal)

    def test_find_containment_mapping_returns_mapping(self):
        first = q("select struct(X: r.A) from R r")
        second = q("select struct(X: a.A) from R a")
        assert find_containment_mapping(first, second) == {"r": Var("a")}

    def test_is_minimal_detects_redundancy(self):
        redundant = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        assert not is_minimal(redundant)
        assert is_minimal(q("select struct(X: r.A) from R r"))

    def test_minimize_removes_redundant_bindings(self):
        redundant = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        minimal = minimize(redundant)
        assert minimal.size() == 1
        assert is_equivalent(minimal, redundant)

    def test_chain_query_is_minimal(self, chain_query):
        assert is_minimal(chain_query)
