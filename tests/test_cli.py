"""Tests for the command-line experiment runner."""

import io
import json

import pytest

from repro.cli import EXPERIMENTS, _resolve_workers, build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_optimize_arguments(self):
        args = build_parser().parse_args(
            ["optimize", "ec2", "--stars", "2", "--corners", "3", "--views", "1", "--strategy", "oqf"]
        )
        assert args.workload == "ec2"
        assert args.strategy == "oqf"
        assert (args.stars, args.corners, args.views) == (2, 3, 1)

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_arguments(self):
        args = build_parser().parse_args(
            [
                "route",
                "--backend", "127.0.0.1:7411",
                "--backend", ":7412",
                "--port", "0",
                "--sync-interval", "5",
            ]
        )
        assert args.command == "route"
        assert args.backend == ["127.0.0.1:7411", ":7412"]
        assert args.sync_interval == 5.0
        assert args.ring_replicas == 64  # the ring default rides the parser

    def test_route_requires_a_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--port", "0"])

    def test_serve_accepts_a_snapshot_store(self):
        args = build_parser().parse_args(["serve", "--snapshot-store", "fleet-store"])
        assert args.snapshot_store == "fleet-store"
        assert build_parser().parse_args(["batch"]).snapshot_store is None


class TestMain:
    def test_list_command(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        listed = out.getvalue().split()
        assert "fig9" in listed and "plans-table" in listed

    def test_optimize_ec1(self):
        out = io.StringIO()
        assert main(["optimize", "ec1", "--relations", "2"], out=out) == 0
        text = out.getvalue()
        assert "4 plans" in text
        assert "PI1" in text

    def test_optimize_ec3_with_strategy(self):
        out = io.StringIO()
        assert main(["optimize", "ec3", "--classes", "3", "--strategy", "ocs"], out=out) == 0
        assert "4 plans" in out.getvalue()

    def test_fig5_ec3_small(self):
        out = io.StringIO()
        # The driver accepts no CLI-tunable knobs, so this runs its default
        # (small) parameterisation; just check a table is printed.
        assert main(["fig5-ec3"], out=out) == 0
        assert "time to chase" in out.getvalue()

    def test_fig9_with_small_size(self):
        out = io.StringIO()
        assert (
            main(
                ["fig9", "--stars", "2", "--corners", "2", "--views", "1", "--size", "200"],
                out=out,
            )
            == 0
        )
        assert "plans for EC2" in out.getvalue()


class TestWorkersResolution:
    """Regression: `--executor serial` with an omitted `--workers` used to
    fall through to CPU-count semantics (workers=None); serial always means
    exactly one worker."""

    def test_serial_defaults_to_one_worker(self):
        assert _resolve_workers(None, "serial") == 1

    def test_pooled_executors_default_to_cpu_count(self):
        assert _resolve_workers(None, "threads") is None
        assert _resolve_workers(None, "processes") is None

    def test_explicit_workers_win(self):
        assert _resolve_workers(3, "serial") == 3
        assert _resolve_workers(5, "processes") == 5

    def test_optimize_with_explicit_serial_reports_one_worker(self):
        out = io.StringIO()
        assert (
            main(
                ["optimize", "ec1", "--relations", "2", "--executor", "serial"],
                out=out,
            )
            == 0
        )
        assert "executor serial x1" in out.getvalue()


class TestServiceCommands:
    """The JSONL serving commands (`batch` / `serve`)."""

    REQUESTS = [
        {"id": "a", "workload": "ec1", "params": {"relations": 2}, "strategy": "fb"},
        {"id": "b", "workload": "ec2", "params": {"stars": 1, "corners": 3, "views": 1}},
        {"id": "a2", "workload": "ec1", "params": {"relations": 2}, "strategy": "fb"},
    ]

    def _write_requests(self, tmp_path, requests=None):
        path = tmp_path / "requests.jsonl"
        lines = [json.dumps(record) for record in (requests or self.REQUESTS)]
        path.write_text("# comment line\n" + "\n".join(lines) + "\n", encoding="utf-8")
        return path

    def _read_results(self, path):
        return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]

    def test_batch_roundtrip_preserves_input_order(self, tmp_path):
        requests = self._write_requests(tmp_path)
        results = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "--input", str(requests),
                "--output", str(results),
                "--shards", "2",
                # one request at a time per shard, so the repeat of "a" runs
                # against a fully warm cache and the assertion is exact
                "--max-inflight", "1",
            ],
        )
        assert code == 0
        records = self._read_results(results)
        assert [record["id"] for record in records] == ["a", "b", "a2"]
        assert all(record["status"] == "ok" for record in records)
        # identical requests produce identical plan digests, warm or cold
        assert records[0]["plan_digests"] == records[2]["plan_digests"]
        assert records[2]["cache_misses"] == 0

    def test_batch_check_asserts_single_shot_equivalence(self, tmp_path):
        requests = self._write_requests(tmp_path)
        results = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--input", str(requests), "--output", str(results), "--check", "--stats"],
        )
        assert code == 0
        records = self._read_results(results)
        assert all(record.get("matches_single_shot") for record in records[:-1])
        assert records[-1]["stats"]["requests"] == 3

    def test_batch_reports_bad_requests_and_exits_nonzero(self, tmp_path):
        requests = self._write_requests(
            tmp_path,
            [
                {"id": "good", "workload": "ec1", "params": {"relations": 2}},
                {"id": "bad", "workload": "nope"},
            ],
        )
        results = tmp_path / "results.jsonl"
        code = main(["batch", "--input", str(requests), "--output", str(results)])
        assert code == 1
        records = self._read_results(results)
        statuses = {record["id"]: record["status"] for record in records}
        assert statuses["good"] == "ok"
        assert [record for record in records if record["status"] == "error"]

    def test_serve_streams_results(self, tmp_path):
        requests = self._write_requests(tmp_path)
        results = tmp_path / "results.jsonl"
        code = main(["serve", "--input", str(requests), "--output", str(results)])
        assert code == 0
        records = self._read_results(results)
        # streaming emits in completion order; all three must arrive
        assert {record["id"] for record in records} == {"a", "b", "a2"}
        assert all(record["status"] == "ok" for record in records)
