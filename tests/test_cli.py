"""Tests for the command-line experiment runner."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_optimize_arguments(self):
        args = build_parser().parse_args(
            ["optimize", "ec2", "--stars", "2", "--corners", "3", "--views", "1", "--strategy", "oqf"]
        )
        assert args.workload == "ec2"
        assert args.strategy == "oqf"
        assert (args.stars, args.corners, args.views) == (2, 3, 1)

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_command(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        listed = out.getvalue().split()
        assert "fig9" in listed and "plans-table" in listed

    def test_optimize_ec1(self):
        out = io.StringIO()
        assert main(["optimize", "ec1", "--relations", "2"], out=out) == 0
        text = out.getvalue()
        assert "4 plans" in text
        assert "PI1" in text

    def test_optimize_ec3_with_strategy(self):
        out = io.StringIO()
        assert main(["optimize", "ec3", "--classes", "3", "--strategy", "ocs"], out=out) == 0
        assert "4 plans" in out.getvalue()

    def test_fig5_ec3_small(self):
        out = io.StringIO()
        # The driver accepts no CLI-tunable knobs, so this runs its default
        # (small) parameterisation; just check a table is printed.
        assert main(["fig5-ec3"], out=out) == 0
        assert "time to chase" in out.getvalue()

    def test_fig9_with_small_size(self):
        out = io.StringIO()
        assert (
            main(
                ["fig9", "--stars", "2", "--corners", "2", "--views", "1", "--size", "200"],
                out=out,
            )
            == 0
        )
        assert "plans for EC2" in out.getvalue()
