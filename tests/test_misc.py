"""Tests for the remaining public surface: pretty printer, canonical DB, plans, errors, package API."""

import pytest

import repro
from repro.cq.canonical import CanonicalDatabase
from repro.cq.query import PCQuery
from repro.chase.plans import Plan, dedupe_plans
from repro.errors import ChaseError, ExecutionError, ParseError, QueryError, ReproError, SchemaError
from repro.lang.parser import parse_path
from repro.lang.pretty import (
    format_bindings,
    format_conditions,
    format_dependency,
    format_plan_summary,
    format_query,
)
from repro.schema.compile import key_dependency


def q(text):
    return PCQuery.parse(text).validate()


class TestPrettyPrinter:
    def test_format_query_round_trips(self, star_query):
        assert PCQuery.parse(format_query(star_query)) == star_query

    def test_format_query_without_conditions(self):
        query = q("select struct(A: r.A) from R r")
        assert "where" not in format_query(query)

    def test_format_bindings_and_conditions(self, star_query):
        assert "R1 r" in format_bindings(star_query.bindings)
        assert " and " in format_conditions(star_query.conditions)

    def test_format_dependency_tgd_and_egd(self):
        egd = key_dependency("R", ["K"])
        assert "implies r = r2" in format_dependency(egd)
        tgd = ("forall", "premise", "exists", "conclusion")
        rendered = format_dependency(
            (
                q("select struct(X: r.A) from R r").bindings,
                (),
                q("select struct(X: s.A) from S s").bindings,
                q("select struct(X: s.A) from S s, R r where r.A = s.A").conditions,
            )
        )
        assert rendered.startswith("forall r in R")
        assert "exists s in S" in rendered
        assert tgd  # silence unused warning

    def test_format_plan_summary(self, star_query):
        assert "R1" in format_plan_summary(star_query)


class TestCanonicalDatabase:
    def test_equalities_and_classes(self, star_query):
        canonical = CanonicalDatabase.of(star_query)
        assert canonical.equal(parse_path("r.A1"), parse_path("s1.A"))
        assert canonical.node_count() >= 1
        assert parse_path("s1.A") in canonical.class_of(parse_path("r.A1"))

    def test_variables_equal_to(self):
        query = q("select struct(X: a.A) from R a, R b where a = b")
        canonical = CanonicalDatabase.of(query)
        assert set(canonical.variables_equal_to(parse_path("a"))) == {"a", "b"}

    def test_unsaturated_variant(self, star_query):
        canonical = CanonicalDatabase.of(star_query, saturated=False)
        assert canonical.equal(parse_path("r.A1"), parse_path("s1.A"))


class TestPlans:
    def test_plan_bookkeeping(self, star_catalog, star_query):
        plan = Plan(star_query, strategy="fb")
        assert plan.size() == 4
        assert plan.logical_collections_used(star_catalog) == ["R1", "S11", "S12", "S13"]
        assert plan.physical_structures_used(star_catalog) == []
        assert "scans" in plan.describe(star_catalog)
        assert plan.describe() != ""

    def test_dedupe_plans(self, star_query):
        plans = [Plan(star_query), Plan(star_query), Plan(star_query.with_output(star_query.output[:1]))]
        assert len(dedupe_plans(plans)) == 2


class TestErrorsAndPackage:
    def test_error_hierarchy(self):
        for error in (ParseError, SchemaError, QueryError, ChaseError, ExecutionError):
            assert issubclass(error, ReproError)

    def test_parse_error_position_rendering(self):
        error = ParseError("bad token", position=7)
        assert "position 7" in str(error)
        assert str(ParseError("oops")) == "oops"

    def test_package_exports(self):
        assert repro.__version__
        assert repro.PCQuery is PCQuery
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_quickstart_from_module_docstring(self):
        catalog = repro.Catalog()
        catalog.add_relation("R", ["A", "B", "C", "E"])
        catalog.add_relation("S", ["A"])
        catalog.add_foreign_key("R", ["A"], "S", ["A"])
        query = repro.PCQuery.parse(
            "select struct(A: r.A, E: r.E) from R r where r.B = 1 and r.C = 2"
        )
        result = repro.CBOptimizer(catalog).optimize(query, strategy="fb")
        assert result.plan_count >= 1


class TestTypes:
    def test_struct_type_accessors(self):
        from repro.lang.types import IntType, SetType, StructType, DictType

        struct = StructType.of(A=IntType, N=SetType(IntType))
        assert struct.attribute_names == ("A", "N")
        assert struct.attribute_type("A") is IntType
        assert struct.has_attribute("N")
        with pytest.raises(KeyError):
            struct.attribute_type("Z")
        assert str(DictType(IntType, struct)).startswith("dict<")
        assert SetType(IntType).is_collection()
        assert not IntType.is_collection()

    def test_relation_and_class_struct_types(self):
        from repro.schema.logical import ClassDef, Relation

        relation = Relation("R", ("A", "B"), key=("A",))
        assert relation.struct_type().attribute_names == ("A", "B")
        assert relation.has_attribute("A")
        class_def = ClassDef("M", attributes=("X",), set_attributes=("N",))
        assert class_def.struct_type().has_attribute("N")
        assert class_def.has_attribute("X")
