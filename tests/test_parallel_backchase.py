"""The wave-parallel backchase: executor plumbing and serial equivalence.

The load-bearing property is that :class:`ParallelBackchase` — under every
executor kind — produces plan sets *signature-identical* to the sequential
:class:`FullBackchase` on the paper's workloads (the fig5/EC2 instances and
EC1), with identical exploration counters.  The remaining tests cover the
executor abstraction and the mergeable :class:`ChaseCache`.
"""

import pytest

from repro.chase.backchase import (
    EXECUTORS,
    FullBackchase,
    ParallelBackchase,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    size_ordered_chunks,
)
from repro.chase.chase import chase
from repro.chase.implication import ChaseCache
from repro.cq.query import PCQuery
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2


def _signatures(result):
    return {plan.signature() for plan in result.plans}


def _chased(workload):
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query
    return constraints, universal


class TestSerialEquivalence:
    """Plan sets and counters match the sequential engine exactly."""

    @pytest.mark.parametrize(
        "executor,workers",
        [("serial", 1), ("threads", 2), ("threads", 4), ("processes", 2)],
    )
    @pytest.mark.parametrize(
        "build,args",
        [(build_ec2, (1, 3, 2)), (build_ec2, (2, 2, 1)), (build_ec1, (2, 1))],
    )
    def test_plan_sets_match(self, build, args, executor, workers):
        workload = build(*args)
        constraints, universal = _chased(workload)
        serial = FullBackchase(workload.query, constraints).run(universal)
        parallel = ParallelBackchase(
            workload.query, constraints, executor=executor, workers=workers
        ).run(universal)
        assert _signatures(parallel) == _signatures(serial)
        assert parallel.plan_count == serial.plan_count
        assert parallel.subqueries_explored == serial.subqueries_explored
        assert parallel.equivalence_checks == serial.equivalence_checks
        assert not parallel.timed_out

    def test_result_records_executor_and_workers(self):
        workload = build_ec2(1, 3, 1)
        constraints, universal = _chased(workload)
        result = ParallelBackchase(
            workload.query, constraints, executor="threads", workers=3
        ).run(universal)
        assert result.executor == "threads"
        assert result.workers == 3
        assert result.waves >= 1

    def test_optimizer_fb_matches_across_executors(self):
        workload = build_ec2(1, 3, 2)
        baseline = workload.optimizer().optimize(workload.query, strategy="fb")
        for executor in ("threads", "processes"):
            result = workload.optimizer(workers=2, executor=executor).optimize(
                workload.query, strategy="fb"
            )
            assert _signatures(result) == _signatures(baseline)
            assert result.executor == executor

    @pytest.mark.parametrize("strategy", ["oqf", "ocs"])
    def test_optimizer_stage_fanout_matches(self, strategy):
        workload = build_ec2(2, 2, 1)
        baseline = workload.optimizer().optimize(workload.query, strategy=strategy)
        pooled = workload.optimizer(workers=2, executor="processes").optimize(
            workload.query, strategy=strategy
        )
        assert _signatures(pooled) == _signatures(baseline)


class TestSizeOrderedChunking:
    """Waves are split by estimated chase size (LPT), not round-robin."""

    def test_chunks_are_size_balanced_and_deterministic(self):
        keys = [
            frozenset({"a", "b", "c", "d"}),
            frozenset({"e"}),
            frozenset({"f", "g", "h"}),
            frozenset({"i", "j"}),
            frozenset({"k", "l", "m", "n", "o"}),
        ]
        chunks = size_ordered_chunks(keys, 2)
        assert chunks == size_ordered_chunks(list(reversed(keys)), 2)
        # largest subsets are dealt first, round-robin over the buckets
        assert chunks[0][0] == frozenset({"k", "l", "m", "n", "o"})
        assert chunks[1][0] == frozenset({"a", "b", "c", "d"})
        flattened = [key for chunk in chunks for key in chunk]
        assert sorted(flattened, key=sorted) == sorted(keys, key=sorted)

    def test_never_more_chunks_than_buckets_or_items(self):
        keys = [frozenset({"a"}), frozenset({"b"})]
        assert len(size_ordered_chunks(keys, 8)) == 2
        assert size_ordered_chunks([], 4) == []

    def test_chunk_policy_recorded_on_result(self):
        workload = build_ec2(1, 3, 1)
        constraints, universal = _chased(workload)
        threaded = ParallelBackchase(
            workload.query, constraints, executor="threads", workers=2
        ).run(universal)
        assert threaded.chunk_policy == "size-ordered"
        inline = ParallelBackchase(workload.query, constraints).run(universal)
        assert inline.chunk_policy == "inline"


class TestSharedChaseCache:
    def test_warm_cache_reuse_preserves_plan_sets(self):
        """A second run over a warm shared cache chases nothing and matches."""
        workload = build_ec2(1, 3, 2)
        constraints, universal = _chased(workload)
        shared = ChaseCache(constraints)
        cold = FullBackchase(workload.query, constraints, chase_cache=shared).run(universal)
        assert cold.cache_misses > 0
        warm = FullBackchase(workload.query, constraints, chase_cache=shared).run(universal)
        assert _signatures(warm) == _signatures(cold)
        assert warm.cache_misses == 0
        wave = ParallelBackchase(
            workload.query, constraints, executor="threads", workers=2, chase_cache=shared
        ).run(universal)
        assert _signatures(wave) == _signatures(cold)
        assert wave.cache_misses == 0

    def test_external_pool_is_not_closed(self):
        workload = build_ec2(1, 3, 1)
        constraints, universal = _chased(workload)
        pool = make_executor("threads", workers=2)
        try:
            first = ParallelBackchase(workload.query, constraints, pool=pool).run(universal)
            # the pool survives the run and can serve another engine
            second = ParallelBackchase(workload.query, constraints, pool=pool).run(universal)
        finally:
            pool.close()
        assert _signatures(first) == _signatures(second)
        assert first.executor == "threads"


class TestExecutors:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("threads", workers=2), ThreadExecutor)
        assert isinstance(make_executor("processes", workers=2), ProcessExecutor)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            make_executor("gpu")
        with pytest.raises(ValueError):
            ParallelBackchase(None, [], executor="gpu")
        with pytest.raises(ValueError):
            build_ec2(1, 3, 1).optimizer(executor="gpu")

    def test_serial_executor_is_single_worker(self):
        assert make_executor("serial", workers=8).workers == 1
        assert "serial" in EXECUTORS

    def test_pool_map_preserves_order(self):
        pool = make_executor("threads", workers=2)
        try:
            assert pool.map(len, ["a", "bb", "ccc"]) == [1, 2, 3]
        finally:
            pool.close()


class TestChaseCacheMerging:
    def _cache_with_entries(self, workload):
        constraints = workload.catalog.constraints()
        cache = ChaseCache(constraints)
        universal = chase(workload.query, constraints).query
        for var in sorted(universal.variable_set):
            subquery = universal.restrict_to(universal.variable_set - {var})
            if subquery is not None:
                cache.chase(subquery)
        return cache

    def test_export_since_and_merge(self):
        workload = build_ec2(1, 3, 1)
        cache = self._cache_with_entries(workload)
        assert len(cache) > 0
        marker = cache.snapshot()
        assert cache.export_since(marker) == {}
        assert len(cache.export_since(0)) == len(cache)

        fresh = ChaseCache(workload.catalog.constraints())
        fresh.merge(cache)
        assert len(fresh) == len(cache)
        assert fresh.misses == cache.misses
        assert fresh.counters.closure_queries == cache.counters.closure_queries

    def test_merged_entries_hit(self):
        workload = build_ec2(1, 3, 1)
        cache = self._cache_with_entries(workload)
        fresh = ChaseCache(workload.catalog.constraints())
        fresh.merge_exported(cache.export_since(0))
        universal = chase(workload.query, workload.catalog.constraints()).query
        first_var = sorted(universal.variable_set)[0]
        subquery = universal.restrict_to(universal.variable_set - {first_var})
        if subquery is not None:
            before = fresh.misses
            fresh.chase(subquery)
            assert fresh.misses == before  # served from the merged entries

    def test_cache_is_picklable(self):
        import pickle

        workload = build_ec2(1, 3, 1)
        cache = self._cache_with_entries(workload)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache)
        assert clone.hits == cache.hits

    def test_merge_does_not_overwrite(self):
        query = PCQuery.parse("select struct(A: r.A) from R r").validate()
        left = ChaseCache([])
        chased = left.chase(query)
        right = ChaseCache([])
        right.merge_exported({query.signature(): None})
        right.merge_exported({query.signature(): chased})
        # setdefault semantics: the first stored value wins.
        assert right.export_since(0)[query.signature()] is None
