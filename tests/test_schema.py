"""Unit tests for logical/physical schemas, constraint compilation and the catalog."""

import pytest

from repro.errors import ConstraintError, SchemaError
from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog, Statistics
from repro.schema.compile import (
    foreign_key_dependency,
    index_nonemptiness,
    index_skeleton,
    inverse_dependencies,
    key_dependency,
    view_skeleton,
)
from repro.schema.constraints import Dependency
from repro.schema.logical import LogicalSchema
from repro.schema.physical import PhysicalSchema, PrimaryIndex, SecondaryIndex


class TestLogicalSchema:
    def test_add_relation_and_lookup(self):
        schema = LogicalSchema()
        schema.add_relation("R", ["A", "B"], key=["A"])
        assert schema.collection("R").attributes == ("A", "B")
        assert "R" in schema

    def test_duplicate_relation_rejected(self):
        schema = LogicalSchema()
        schema.add_relation("R", ["A"])
        with pytest.raises(SchemaError):
            schema.add_relation("R", ["B"])

    def test_duplicate_attribute_rejected(self):
        schema = LogicalSchema()
        with pytest.raises(SchemaError):
            schema.add_relation("R", ["A", "A"])

    def test_key_over_unknown_attribute_rejected(self):
        schema = LogicalSchema()
        schema.add_relation("R", ["A"])
        with pytest.raises(SchemaError):
            schema.add_key("R", ["Z"])

    def test_foreign_key_validation(self):
        schema = LogicalSchema()
        schema.add_relation("R", ["A"])
        schema.add_relation("S", ["A"])
        schema.add_foreign_key("R", ["A"], "S", ["A"])
        with pytest.raises(SchemaError):
            schema.add_foreign_key("R", ["Z"], "S", ["A"])
        with pytest.raises(SchemaError):
            schema.add_foreign_key("R", ["A"], "S", ["A", "B"])

    def test_class_declaration(self):
        schema = LogicalSchema()
        schema.add_class("M", set_attributes=["N", "P"])
        assert schema.collection("M").set_attributes == ("N", "P")

    def test_inverse_relationship_requires_set_attributes(self):
        schema = LogicalSchema()
        schema.add_class("M1", set_attributes=["N"])
        schema.add_class("M2", set_attributes=["P"])
        schema.add_inverse_relationship("M1", "N", "M2", "P")
        with pytest.raises(SchemaError):
            schema.add_inverse_relationship("M1", "P", "M2", "N")

    def test_unknown_collection_raises(self):
        schema = LogicalSchema()
        with pytest.raises(SchemaError):
            schema.collection("missing")


class TestPhysicalSchema:
    def test_indexes_and_views_are_listed_by_kind(self):
        physical = PhysicalSchema()
        physical.add_primary_index("PI", "R", ["K"])
        physical.add_secondary_index("SI", "R", ["N"])
        view = PCQuery.parse("select struct(A: r.A) from R r")
        physical.add_materialized_view("V", view)
        physical.add_access_support_relation("ASR", view)
        assert {index.name for index in physical.indexes()} == {"PI", "SI"}
        assert [v.name for v in physical.views()] == ["V"]
        assert [a.name for a in physical.access_support_relations()] == ["ASR"]

    def test_duplicate_structure_rejected(self):
        physical = PhysicalSchema()
        physical.add_primary_index("PI", "R", ["K"])
        with pytest.raises(SchemaError):
            physical.add_secondary_index("PI", "R", ["N"])

    def test_empty_index_key_rejected(self):
        with pytest.raises(SchemaError):
            PrimaryIndex("PI", "R", ())

    def test_view_attributes_come_from_definition(self):
        physical = PhysicalSchema()
        view = physical.add_materialized_view(
            "V", PCQuery.parse("select struct(K: r.K, B: r.B) from R r")
        )
        assert view.attributes == ("K", "B")


class TestDependency:
    def test_key_is_egd(self):
        dependency = key_dependency("R", ["K"])
        assert dependency.is_egd and not dependency.is_tgd

    def test_foreign_key_is_tgd(self):
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        assert dependency.is_tgd

    def test_parse_round_trip(self):
        dependency = Dependency.parse(
            "FK", "forall r in R implies exists s in S where r.A = s.A"
        )
        assert dependency.validate().is_tgd
        assert "forall r in R" in str(dependency)

    def test_validation_rejects_unknown_variable(self):
        from repro.lang.ast import Attr, Eq, Var

        broken = key_dependency("R", ["K"])
        broken = Dependency.create(
            "BAD",
            universal=broken.universal,
            conclusion=(Eq(Attr(Var("r"), "A"), Attr(Var("z"), "A")),),
        )
        with pytest.raises(ConstraintError):
            broken.validate()

    def test_validation_rejects_empty_dependency(self):
        with pytest.raises(ConstraintError):
            Dependency.create("EMPTY", universal=key_dependency("R", ["K"]).universal).validate()

    def test_tableau_merges_prefixes(self):
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        bindings, conditions = dependency.tableau()
        assert [binding.var for binding in bindings] == ["r", "s"]
        assert len(conditions) == 1

    def test_collections_used(self):
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        assert dependency.collections_used() == {"R", "S"}

    def test_rename_variables(self):
        dependency = key_dependency("R", ["K"]).rename_variables({"r": "x"})
        assert dependency.universal[0].var == "x"

    def test_inverse_dependencies_shapes(self):
        forward, backward = inverse_dependencies("M1", "N", "M2", "P")
        assert forward.is_tgd and backward.is_tgd
        assert forward.collections_used() == {"M1", "M2"}


class TestCompilation:
    def test_index_skeleton_direction(self):
        skeleton = index_skeleton(PrimaryIndex("PI", "R", ("K",)))
        # forward: universal over the relation, existential over the index.
        assert skeleton.forward.universal[0].range.name == "R"
        assert skeleton.physical_collections() == {"PI"}

    def test_composite_index_uses_key_struct(self):
        skeleton = index_skeleton(PrimaryIndex("I", "R", ("A", "B", "C")))
        conclusion_text = " and ".join(str(c) for c in skeleton.forward.conclusion)
        assert "k.A" in conclusion_text and "k.C" in conclusion_text

    def test_secondary_index_nonemptiness(self):
        extra = index_nonemptiness(SecondaryIndex("SI", "R", ("N",)))
        assert extra.is_tgd and not extra.premise

    def test_view_skeleton_pair(self, star_catalog):
        view = star_catalog.physical.structure("V11")
        skeleton = view_skeleton(view)
        assert skeleton.forward.existential[0].range.name == "V11"
        assert skeleton.backward.universal[0].range.name == "V11"
        assert len(skeleton.forward.conclusion) == 3

    def test_view_skeleton_avoids_variable_capture(self):
        definition = PCQuery.parse("select struct(A: v.A) from R v")
        skeleton = view_skeleton(type("View", (), {"name": "V", "definition": definition})())
        assert skeleton.forward.existential[0].var != "v"


class TestCatalog:
    def test_constraint_counts_match_paper_accounting(self):
        # EC2 accounting: 2 constraints per view + 1 per key.
        catalog = Catalog()
        catalog.add_relation("R1", ["K", "A1", "A2"], key=["K"])
        catalog.add_key("R1", ["K"])
        catalog.add_relation("S11", ["A", "B"])
        catalog.add_relation("S12", ["A", "B"])
        catalog.add_materialized_view(
            "V11",
            PCQuery.parse(
                "select struct(K: r.K, B1: s1.B, B2: s2.B) from R1 r, S11 s1, S12 s2 "
                "where r.A1 = s1.A and r.A2 = s2.A"
            ),
        )
        assert len(catalog.constraints()) == 3
        assert len(catalog.skeletons()) == 1

    def test_secondary_index_counts_three_constraints(self):
        catalog = Catalog()
        catalog.add_relation("R", ["K", "N"], key=["K"])
        catalog.add_secondary_index("SI", "R", ["N"])
        assert len(catalog.physical_constraints()) == 3

    def test_constraint_lookup_by_name(self, star_catalog):
        assert star_catalog.constraint("KEY_R1").is_egd
        with pytest.raises(SchemaError):
            star_catalog.constraint("missing")

    def test_custom_dependency(self, simple_catalog):
        dependency = Dependency.parse(
            "EXTRA", "forall r in R implies exists s in S where r.A = s.A", kind="semantic"
        )
        simple_catalog.add_dependency(dependency)
        assert any(dep.name == "EXTRA" for dep in simple_catalog.constraints())

    def test_physical_vs_logical_names(self, star_catalog):
        assert star_catalog.is_physical_name("V11")
        assert star_catalog.is_logical_name("R1")
        assert not star_catalog.is_physical_name("R1")
        assert "V11" in star_catalog.collection_names()

    def test_index_over_unknown_relation_rejected(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.add_primary_index("PI", "R", ["K"])

    def test_statistics_defaults_and_overrides(self):
        statistics = Statistics(default_cardinality=50)
        assert statistics.cardinality("R") == 50
        statistics.set_cardinality("R", 200)
        statistics.set_distinct("R", "A", 10)
        assert statistics.cardinality("R") == 200
        assert statistics.selectivity("R", "A") == pytest.approx(0.1)
