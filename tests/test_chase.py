"""Unit tests for the chase, dependency implication and the backchase."""

import pytest

from repro.errors import ChaseError
from repro.chase.backchase import FullBackchase
from repro.chase.chase import chase, chase_step, collapse_duplicate_bindings
from repro.chase.implication import contained_under, equivalent_under, implies
from repro.cq.containment import is_equivalent
from repro.cq.query import PCQuery
from repro.schema.compile import foreign_key_dependency, key_dependency
from repro.schema.constraints import Dependency


def q(text):
    return PCQuery.parse(text).validate()


class TestChaseStep:
    def test_tgd_step_adds_bindings(self):
        query = q("select struct(A: r.A) from R r")
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        chased, step = chase_step(query, dependency)
        assert chased.size() == 2
        assert step.dependency == dependency.name
        assert chased.collections_used() == {"R", "S"}

    def test_satisfied_tgd_does_not_fire(self):
        query = q("select struct(A: r.A) from R r, S s where r.A = s.A")
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        assert chase_step(query, dependency) is None

    def test_egd_step_adds_equality(self):
        query = q("select struct(K: r1.K) from R r1, R r2 where r1.K = r2.K")
        dependency = key_dependency("R", ["K"])
        chased, _ = chase_step(query, dependency)
        assert chased.implies_equality(
            PCQuery.parse("select struct(X: r1.A) from R r1").output_path("X").base,
            PCQuery.parse("select struct(X: r2.A) from R r2").output_path("X").base,
        )

    def test_satisfied_egd_does_not_fire(self):
        query = q("select struct(K: r1.K) from R r1, R r2 where r1 = r2")
        dependency = key_dependency("R", ["K"])
        assert chase_step(query, dependency) is None

    def test_fresh_variables_avoid_collisions(self):
        query = q("select struct(A: r.A, B: s.A) from R r, S s")
        dependency = foreign_key_dependency("R", ["A"], "S", ["A"])
        chased, step = chase_step(query, dependency)
        assert len(set(chased.variables)) == chased.size()
        assert step.added_variables[0] not in ("r", "s")


class TestChaseFixpoint:
    def test_chase_is_idempotent(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        first = chase(star_query, constraints).query
        second = chase(first, constraints).query
        assert first.signature() == second.signature()

    def test_chase_result_is_equivalent_under_constraints(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        assert equivalent_under(universal, star_query, constraints)

    def test_universal_plan_mentions_applicable_views(self, star_catalog, star_query):
        universal = chase(star_query, star_catalog.constraints()).query
        assert "V11" in universal.collections_used()

    def test_inapplicable_view_is_not_added(self, star_catalog):
        query = q("select struct(B3: s3.B) from R1 r, S13 s3 where r.A3 = s3.A")
        universal = chase(query, star_catalog.constraints()).query
        assert "V11" not in universal.collections_used()

    def test_chase_records_steps_and_rounds(self, star_catalog, star_query):
        result = chase(star_query, star_catalog.constraints())
        assert result.applied >= 1
        assert result.rounds >= 1
        assert result.elapsed >= 0

    def test_divergent_chase_is_stopped(self):
        # R(A) with a constraint forcing an infinite chain of fresh S tuples.
        growing = Dependency.parse(
            "GROW", "forall s in S implies exists t in S where t.A = s.B"
        )
        seed = Dependency.parse("SEED", "forall r in R implies exists s in S where s.A = r.A")
        query = q("select struct(A: r.A) from R r")
        with pytest.raises(ChaseError):
            chase(query, [seed, growing], max_rounds=5, max_size=30)

    def test_collapse_merges_duplicate_bindings(self):
        query = q(
            "select struct(A: r1.A) from R r1, R r2 where r1 = r2 and r1.A = r2.A"
        )
        collapsed = collapse_duplicate_bindings(query)
        assert collapsed.size() == 1

    def test_collapse_keeps_distinct_bindings(self, chain_query):
        assert collapse_duplicate_bindings(chain_query).size() == chain_query.size()


class TestImplication:
    def test_key_implies_itself(self):
        key = key_dependency("R", ["K"])
        assert implies([key], key)

    def test_fk_does_not_imply_key(self):
        key = key_dependency("R", ["K"])
        fk = foreign_key_dependency("R", ["A"], "S", ["A"])
        assert not implies([fk], key)

    def test_transitive_foreign_keys(self):
        first = foreign_key_dependency("R", ["A"], "S", ["A"], name="FK1")
        second = foreign_key_dependency("S", ["A"], "T", ["A"], name="FK2")
        composed = foreign_key_dependency("R", ["A"], "T", ["A"], name="FK3")
        assert implies([first, second], composed)
        assert not implies([first], composed)

    def test_contained_under_with_foreign_key(self, simple_catalog):
        # Example 2.1: Q' (with the extra join against S) is equivalent to Q
        # only because of the foreign key R.A -> S.A.
        original = q("select struct(A: r.A, E: r.E) from R r where r.B = 1 and r.C = 2")
        rewritten = q(
            "select struct(A: r.A, E: r.E) from R r, S s "
            "where r.B = 1 and r.C = 2 and r.A = s.A"
        )
        constraints = simple_catalog.constraints()
        assert equivalent_under(original, rewritten, constraints)
        assert not is_equivalent(original, rewritten)
        assert not equivalent_under(original, rewritten, [])

    def test_contained_under_is_directional(self):
        larger = q("select struct(A: r.A) from R r")
        smaller = q("select struct(A: r.A) from R r where r.A = 1")
        assert contained_under(smaller, larger, [])
        assert not contained_under(larger, smaller, [])


class TestBackchase:
    def test_no_constraints_returns_minimized_original(self):
        redundant = q("select struct(X: r1.A) from R r1, R r2 where r1.A = r2.A")
        backchaser = FullBackchase(redundant, [])
        result = backchaser.run(redundant)
        # Tableau minimization: the redundant self-join collapses to a single
        # scan (isomorphic duplicates reached through either copy are merged).
        assert result.plan_count == 1
        assert result.plans[0].query.size() == 1

    def test_minimal_query_is_its_own_plan(self, chain_query):
        backchaser = FullBackchase(chain_query, [])
        result = backchaser.run(chain_query)
        assert result.plan_count == 1
        assert result.plans[0].query.size() == 2

    def test_every_plan_is_equivalent_to_the_original(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        result = FullBackchase(star_query, constraints).run(universal)
        assert result.plan_count == 2
        for plan in result.plans:
            assert equivalent_under(plan.query, star_query, constraints)

    def test_plans_are_minimal(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        result = FullBackchase(star_query, constraints).run(universal)
        for plan in result.plans:
            variables = plan.query.variable_set
            for var in variables:
                subquery = universal.restrict_to(variables - {var})
                if subquery is None:
                    continue
                assert not equivalent_under(subquery, star_query, constraints)

    def test_timeout_returns_partial_results(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        result = FullBackchase(star_query, constraints, timeout=0.0).run(universal)
        assert result.timed_out

    def test_counters_are_populated(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        result = FullBackchase(star_query, constraints).run(universal)
        assert result.subqueries_explored > 0
        assert result.equivalence_checks > 0
        assert result.elapsed > 0
        assert result.time_per_plan() > 0


class TestIncrementalEngine:
    """The semi-naive engine is a pure optimization of the restart engine."""

    def _assert_identical(self, query, constraints):
        incremental = chase(query, constraints, incremental=True)
        restart = chase(query, constraints, incremental=False, use_index=False)
        assert incremental.query == restart.query
        assert [
            (step.dependency, step.added_variables, step.added_conditions)
            for step in incremental.steps
        ] == [
            (step.dependency, step.added_variables, step.added_conditions)
            for step in restart.steps
        ]
        assert incremental.counters.trigger_misses == 0
        return incremental, restart

    def test_star_workload_bit_identical(self, star_catalog, star_query):
        self._assert_identical(star_query, star_catalog.constraints())

    def test_simple_foreign_key_bit_identical(self, simple_catalog):
        query = q("select struct(A: r.A, E: r.E) from R r where r.B = 1")
        self._assert_identical(query, simple_catalog.constraints())

    def test_egd_merges_bit_identical(self):
        query = q("select struct(K: r1.K) from R r1, R r2 where r1.K = r2.K")
        self._assert_identical(query, [key_dependency("R", ["K"])])

    def test_trigger_index_skips_dependencies(self, star_catalog, star_query):
        result = chase(star_query, star_catalog.constraints())
        assert result.counters.deps_checked > 0
        assert result.counters.deps_skipped > 0

    def test_incremental_engine_does_less_closure_work(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        incremental = chase(star_query, constraints, incremental=True)
        restart = chase(star_query, constraints, incremental=False, use_index=False)
        assert (
            incremental.counters.closure_queries < restart.counters.closure_queries
        )

    def test_divergent_chase_is_stopped_incrementally(self):
        growing = Dependency.parse(
            "GROW", "forall s in S implies exists t in S where t.A = s.B"
        )
        seed = Dependency.parse("SEED", "forall r in R implies exists s in S where s.A = r.A")
        query = q("select struct(A: r.A) from R r")
        with pytest.raises(ChaseError):
            chase(query, [seed, growing], max_rounds=5, max_size=30, incremental=True)


class TestChaseCounters:
    def test_counters_are_deterministic(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        first = chase(star_query, constraints).counters
        second = chase(star_query, constraints).counters
        assert first == second

    def test_counters_are_populated(self, star_catalog, star_query):
        counters = chase(star_query, star_catalog.constraints()).counters
        assert counters.closure_queries > 0
        assert counters.candidates_tried > 0
        assert counters.conditions_checked > 0
        assert counters.deps_checked > 0
        assert counters.trigger_misses == 0

    def test_satisfied_set_needs_one_quiet_pass(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        rechase = chase(universal, constraints)
        assert rechase.applied == 0
        # Every dependency is checked exactly once and nothing is re-verified.
        assert rechase.counters.deps_checked == len(constraints)
        assert rechase.rounds == 1


class TestChaseCacheAccounting:
    def test_hits_and_misses(self, star_catalog, star_query):
        from repro.chase.implication import ChaseCache

        constraints = star_catalog.constraints()
        cache = ChaseCache(constraints)
        cache.chase(star_query)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.chase(star_query)
        assert (cache.hits, cache.misses) == (1, 1)
        # The aggregated counters reflect only the single cache-miss chase.
        direct = chase(star_query, constraints).counters
        assert cache.counters == direct

    def test_renamed_duplicate_is_a_miss(self, star_catalog, star_query):
        from repro.chase.implication import ChaseCache

        cache = ChaseCache(star_catalog.constraints())
        cache.chase(star_query)
        renamed = star_query.rename_variables({"r": "other"})
        cache.chase(renamed)
        assert (cache.hits, cache.misses) == (0, 2)


class TestBackchaseCounters:
    def test_backchase_counters_are_populated(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        result = FullBackchase(star_query, constraints).run(universal)
        assert result.cache_misses > 0
        assert result.cache_hits >= 0
        assert result.closure_queries > 0
        assert result.candidates_tried > 0

    def test_backchase_counters_are_deterministic(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        first = FullBackchase(star_query, constraints).run(universal)
        second = FullBackchase(star_query, constraints).run(universal)
        fields = (
            "subqueries_explored",
            "equivalence_checks",
            "cache_hits",
            "cache_misses",
            "closure_queries",
            "candidates_tried",
        )
        assert {name: getattr(first, name) for name in fields} == {
            name: getattr(second, name) for name in fields
        }

    def test_repeated_run_reuses_the_instance_cache(self, star_catalog, star_query):
        constraints = star_catalog.constraints()
        universal = chase(star_query, constraints).query
        backchaser = FullBackchase(star_query, constraints)
        first = backchaser.run(universal)
        second = backchaser.run(universal)
        # Per-run accounting: the second run hits the warm chase cache.
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_hits + first.cache_misses

    def test_optimizer_surfaces_engine_counters(self, star_catalog, star_query):
        from repro.chase.optimizer import CBOptimizer

        result = CBOptimizer(star_catalog).optimize(star_query, strategy="fb")
        assert result.closure_queries > 0
        assert result.cache_misses > 0
