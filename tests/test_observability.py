"""First-class observability: tracing, Prometheus/health HTTP, event logs.

The tentpole invariant is the **span-tree bound**: on the serial executor a
traced request's stage seconds are disjoint wall-clock slices, so
``sum(stages) <= duration`` per trace.  Around it: the tracing core's
outermost-only accounting, the Tracer ring/JSONL log, exhaustive
``/metrics`` coverage of the stats surface, health/readiness semantics,
the structured event stream, and the three-way stats parity (socket op vs.
in-process call vs. HTTP endpoint).
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    EventLog,
    FaultInjector,
    ObservabilityServer,
    OptimizerClient,
    OptimizerServer,
    OptimizerService,
    ServiceOverloaded,
    StageHistograms,
    Tracer,
    log_event,
    render_metrics,
)
from repro.service.metrics import STAGE_LATENCY_BUCKETS, ServiceStats
from repro.service.observability.httpd import PROMETHEUS_CONTENT_TYPE
from repro.trace import STAGES, RequestTrace, activate, active_trace, traced_stage
from repro.workloads import build_ec1, build_ec2

JOIN_TIMEOUT = 120.0


def _get(port, path):
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read().decode()


def _submit_one(service, workload=None, strategy="fb"):
    workload = workload if workload is not None else build_ec2(1, 2, 1)
    return service.submit(
        workload.query, strategy=strategy, catalog=workload.catalog
    ).result(timeout=JOIN_TIMEOUT)


# ---------------------------------------------------------------------- #
# The tracing core (repro.trace)
# ---------------------------------------------------------------------- #
class TestTraceCore:
    def test_record_and_as_dict(self):
        trace = RequestTrace("r1")
        trace.record("chase", 0.25)
        trace.record("chase", 0.25)
        trace.annotate("chase", cache_hits=3)
        record = trace.finish("ok").as_dict()
        assert record["request_id"] == "r1"
        assert record["status"] == "ok"
        (span,) = record["stages"]
        assert span["stage"] == "chase"
        assert span["count"] == 2
        assert span["seconds"] == pytest.approx(0.5)
        assert span["attrs"] == {"cache_hits": 3}

    def test_traced_stage_bills_the_active_trace(self):
        @traced_stage("restrict")
        def work():
            time.sleep(0.01)
            return 42

        trace = RequestTrace("r2")
        with activate(trace):
            assert work() == 42
        assert trace.stage_seconds()["restrict"] > 0

    def test_traced_stage_outermost_only(self):
        """Nested same-thread stage calls must not double-bill wall time."""

        @traced_stage("containment")
        def inner():
            time.sleep(0.01)

        @traced_stage("containment")
        def outer():
            inner()
            inner()

        trace = RequestTrace("r3")
        with activate(trace):
            outer()
        record = trace.finish("ok").as_dict()
        (span,) = record["stages"]
        # Only the outermost frame records: one span covering both inner
        # sleeps, not three overlapping intervals summing to ~2x the wall.
        assert span["count"] == 1
        assert 0.02 <= span["seconds"] < 0.05

    def test_no_active_trace_is_free(self):
        @traced_stage("chase")
        def work():
            return "plain"

        assert active_trace() is None
        assert work() == "plain"

    def test_activate_none_is_a_no_op(self):
        with activate(None):
            assert active_trace() is None

    def test_observer_receives_stage_observations(self):
        histograms = StageHistograms()
        trace = RequestTrace("r4", observer=histograms)
        trace.record("serialize", 0.002)
        snapshot = histograms.snapshot()
        assert snapshot["serialize"]["count"] == 1
        assert snapshot["serialize"]["sum"] == pytest.approx(0.002)


# ---------------------------------------------------------------------- #
# The span tree through the full service pipeline (the tentpole)
# ---------------------------------------------------------------------- #
class TestServiceTracing:
    def test_response_carries_a_complete_span_tree(self):
        tracer = Tracer()
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            response = _submit_one(service)
        assert response.ok
        record = response.trace.as_dict()
        assert record["status"] == "ok"
        assert {span["stage"] for span in record["stages"]} == set(STAGES)

    def test_stage_seconds_sum_within_request_latency(self):
        """On the serial executor every stage is a disjoint wall-clock slice
        of its request, so the billed seconds sum to at most the duration."""
        tracer = Tracer()
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            responses = [
                _submit_one(service, build_ec2(1, 2, 1)),
                _submit_one(service, build_ec1(2, 1), strategy="ocs"),
                _submit_one(service, build_ec2(1, 3, 2), strategy="oqf"),
            ]
        for response in responses:
            record = response.trace.as_dict()
            billed = sum(span["seconds"] for span in record["stages"])
            assert billed <= record["duration_s"]
            assert billed > 0

    def test_trace_attributes_match_request_metrics(self):
        tracer = Tracer()
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            response = _submit_one(service)
        spans = {span["stage"]: span for span in response.trace.as_dict()["stages"]}
        assert spans["chase"]["attrs"]["cache_hits"] == response.metrics.cache_hits
        assert spans["chase"]["attrs"]["cache_misses"] == response.metrics.cache_misses
        assert spans["containment"]["attrs"]["memo_hits"] == response.metrics.memo_hits
        assert spans["containment"]["attrs"]["memo_misses"] == response.metrics.memo_misses

    def test_untraced_service_attaches_no_trace(self):
        with OptimizerService(shards=1, executor="serial") as service:
            response = _submit_one(service)
        assert response.trace is None
        assert response.plan_digests is None

    def test_rejected_request_exports_a_rejected_trace(self):
        tracer = Tracer()
        events = []

        class _Recorder:
            def emit(self, event, **fields):
                events.append((event, fields))

        workload = build_ec2(1, 2, 1)
        with OptimizerService(
            shards=1,
            executor="serial",
            max_inflight=1,
            max_queue_depth=1,
            tracer=tracer,
            event_log=_Recorder(),
        ) as service:
            futures, rejected = [], 0
            for _ in range(16):
                try:
                    futures.append(
                        service.submit(workload.query, catalog=workload.catalog)
                    )
                except ServiceOverloaded:
                    rejected += 1
            for future in futures:
                future.result(timeout=JOIN_TIMEOUT)
        assert rejected > 0
        statuses = [record["status"] for record in tracer.recent()]
        assert statuses.count("rejected") == rejected
        assert sum(1 for name, _ in events if name == "request.rejected") == rejected

    def test_tracer_ring_is_bounded_and_counts(self):
        tracer = Tracer(ring_size=2)
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            for _ in range(4):
                _submit_one(service)
        assert len(tracer.recent()) == 2
        assert tracer.counters() == (4, 4)

    def test_trace_log_is_jsonl(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(trace_log=str(path))
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            _submit_one(service)
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert {span["stage"] for span in records[0]["stages"]} == set(STAGES)

    def test_traced_response_encodes_trace_on_the_wire(self):
        from repro.service.protocol import encode_response

        tracer = Tracer()
        workload = build_ec2(1, 2, 1)
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            response = _submit_one(service, workload)
        record = encode_response("r1", workload, "fb", response)
        assert record["status"] == "ok"
        assert {span["stage"] for span in record["trace"]["stages"]} == set(STAGES)
        # The serialize span already digested the plans; the codec reuses it.
        assert record["plan_digests"] == response.plan_digests


# ---------------------------------------------------------------------- #
# Stage histograms + Prometheus rendering
# ---------------------------------------------------------------------- #
class TestPrometheusRendering:
    def test_histogram_buckets_are_cumulative(self):
        histograms = StageHistograms(buckets=(0.01, 0.1))
        histograms.observe_stage("chase", 0.005)
        histograms.observe_stage("chase", 0.05)
        histograms.observe_stage("chase", 5.0)
        series = histograms.snapshot()["chase"]
        assert series["buckets"] == [(0.01, 1), (0.1, 2), ("+Inf", 3)]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(5.055)

    def test_default_buckets_are_sorted(self):
        assert list(STAGE_LATENCY_BUCKETS) == sorted(STAGE_LATENCY_BUCKETS)

    def test_every_stats_field_becomes_a_gauge(self):
        """Exhaustive by construction: iterate the live as_dict mapping."""
        with OptimizerService(shards=2, executor="serial") as service:
            _submit_one(service)
            stats = service.stats()
        text = render_metrics(stats)
        for key in stats.as_dict():
            assert f"# TYPE repro_{key} gauge" in text, key
            assert f"\nrepro_{key} " in "\n" + text, key

    def test_shard_gauges_are_labelled(self):
        with OptimizerService(shards=2, executor="serial") as service:
            _submit_one(service)
            stats = service.stats()
        text = render_metrics(stats)
        assert 'repro_shard_requests{shard="0"}' in text
        assert 'repro_shard_requests{shard="1"}' in text

    def test_histogram_family_renders(self):
        histograms = StageHistograms(buckets=(0.01,))
        histograms.observe_stage("chase", 0.5)
        stats = ServiceStats()
        text = render_metrics(stats, histograms=histograms)
        assert "# TYPE repro_stage_latency_seconds histogram" in text
        assert 'repro_stage_latency_seconds_bucket{stage="chase",le="0.01"} 0' in text
        assert 'repro_stage_latency_seconds_bucket{stage="chase",le="+Inf"} 1' in text
        assert 'repro_stage_latency_seconds_count{stage="chase"} 1' in text

    def test_exposition_shape(self):
        """Every sample line belongs to a family with HELP and TYPE headers."""
        histograms = StageHistograms()
        histograms.observe_stage("chase", 0.01)
        text = render_metrics(ServiceStats(), histograms=histograms)
        typed = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in typed:
                    base = name[: -len(suffix)]
            assert base in typed, line


# ---------------------------------------------------------------------- #
# The HTTP sidecar
# ---------------------------------------------------------------------- #
class TestObservabilityServer:
    def test_health_ready_metrics_traces(self):
        tracer = Tracer()
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            _submit_one(service)
            with ObservabilityServer(service, tracer=tracer) as obs:
                status, _, body = _get(obs.port, "/healthz")
                assert (status, body) == (200, "ok\n")
                status, _, body = _get(obs.port, "/readyz")
                assert status == 200 and json.loads(body)["ready"] is True
                status, content_type, body = _get(obs.port, "/metrics")
                assert status == 200
                assert content_type == PROMETHEUS_CONTENT_TYPE
                assert "repro_stage_latency_seconds_bucket" in body
                status, _, body = _get(obs.port, "/traces?limit=1")
                traces = json.loads(body)["traces"]
                assert len(traces) == 1
                assert {s["stage"] for s in traces[0]["stages"]} == set(STAGES)

    def test_readyz_turns_503_when_service_unready(self):
        service = OptimizerService(shards=1, executor="serial")
        with ObservabilityServer(service) as obs:
            status, _, _ = _get(obs.port, "/readyz")
            assert status == 200
            service.shutdown()
            status, _, body = _get(obs.port, "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False

    def test_broken_readiness_probe_reads_as_503(self):
        with OptimizerService(shards=1, executor="serial") as service:
            def probe():
                raise RuntimeError("probe exploded")

            with ObservabilityServer(service, readiness=probe) as obs:
                status, _, body = _get(obs.port, "/readyz")
        assert status == 503
        assert "probe exploded" in json.loads(body)["detail"]["error"]

    def test_unknown_route_is_404_and_traces_without_tracer_too(self):
        with OptimizerService(shards=1, executor="serial") as service:
            with ObservabilityServer(service) as obs:
                status, _, _ = _get(obs.port, "/nope")
                assert status == 404
                status, _, body = _get(obs.port, "/traces")
                assert status == 404
                assert "not enabled" in json.loads(body)["error"]

    def test_stop_is_idempotent(self):
        with OptimizerService(shards=1, executor="serial") as service:
            obs = ObservabilityServer(service)
            obs.stop()
            obs.stop()


# ---------------------------------------------------------------------- #
# Stats parity: socket op vs. in-process call vs. HTTP endpoint (satellite)
# ---------------------------------------------------------------------- #
class TestStatsParity:
    def test_three_surfaces_agree_field_for_field(self):
        with OptimizerService(shards=2, executor="serial") as service:
            with OptimizerServer(service=service) as server:
                with OptimizerClient(port=server.port) as client:
                    client.request(
                        {"workload": "ec2", "params": {"stars": 1, "corners": 2, "views": 1}},
                        timeout=JOIN_TIMEOUT,
                    )
                    with ObservabilityServer(service) as obs:
                        socket_stats = client.stats()
                        local_stats = service.stats().as_dict()
                        _, _, body = _get(obs.port, "/stats")
                        http_stats = json.loads(body)
        assert socket_stats == local_stats == http_stats
        assert local_stats["requests"] == 1


# ---------------------------------------------------------------------- #
# Structured event logs
# ---------------------------------------------------------------------- #
class TestEventLog:
    def test_emit_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=str(path)) as log:
            log.emit("request.admitted", request_id="r1", shard=0)
            log_event(log, "request.completed", request_id="r1", status="ok")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["request.admitted", "request.completed"]
        assert all("ts" in r for r in records)
        assert log.emitted == 2 and log.dropped == 0

    def test_log_event_none_is_a_no_op(self):
        assert log_event(None, "anything") is None

    def test_emit_never_raises_on_a_dead_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        log.close()
        log.emit("after.close")
        assert log.dropped == 1

    def test_stream_and_path_are_exclusive(self, tmp_path):
        import io

        with pytest.raises(ValueError):
            EventLog(stream=io.StringIO(), path=str(tmp_path / "x"))

    def test_request_lifecycle_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=str(path)) as log:
            with OptimizerService(shards=1, executor="serial", event_log=log) as service:
                _submit_one(service)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        names = [r["event"] for r in records]
        assert names == ["request.admitted", "request.completed"]
        assert records[1]["status"] == "ok"
        assert records[1]["latency_s"] > 0

    def test_runner_crash_and_restart_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        faults = FaultInjector().rule("shard.execute", times=1, crash=True)
        with EventLog(path=str(path)) as log:
            with OptimizerService(
                shards=1, executor="serial", fault_injector=faults, event_log=log
            ) as service:
                crashed = _submit_one(service)
                healed = _submit_one(service)
        assert not crashed.ok and healed.ok
        names = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert "runner.crashed" in names
        assert "runner.restarted" in names

    def test_snapshot_events(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        snapshot_path = tmp_path / "caches.pkl"
        with EventLog(path=str(events_path)) as log:
            with OptimizerService(shards=1, executor="serial", event_log=log) as service:
                _submit_one(service)
                service.save_caches(str(snapshot_path))
            with OptimizerService(shards=1, executor="serial", event_log=log) as warm:
                warm.load_caches(str(snapshot_path))
        records = [json.loads(line) for line in events_path.read_text().splitlines()]
        loaded = [r for r in records if r["event"] == "snapshot.loaded"]
        assert len(loaded) == 1
        assert loaded[0]["sessions_restored"] >= 1


# ---------------------------------------------------------------------- #
# The stats-surface satellites
# ---------------------------------------------------------------------- #
class TestStatsSatellites:
    def test_sessions_restored_is_tracked_and_exported(self, tmp_path):
        """record_snapshot_load used to drop its ``sessions`` argument."""
        snapshot_path = tmp_path / "caches.pkl"
        with OptimizerService(shards=1, executor="serial") as service:
            _submit_one(service)
            service.save_caches(str(snapshot_path))
        with OptimizerService(shards=1, executor="serial") as warm:
            restored = warm.load_caches(str(snapshot_path))
            stats = warm.stats()
        assert restored >= 1
        assert stats.sessions_restored == restored
        assert stats.as_dict()["sessions_restored"] == restored
        assert stats.snapshots_loaded == 1

    def test_p99_latency_property_and_export(self):
        stats = ServiceStats(latencies=[float(i) for i in range(1, 101)])
        assert stats.p99_latency == pytest.approx(100.0, abs=1.0)
        assert stats.p99_latency >= stats.p95_latency >= stats.p50_latency
        assert stats.as_dict()["p99_latency_s"] == round(stats.p99_latency, 6)

    def test_readiness_probe(self):
        service = OptimizerService(shards=1, executor="serial")
        ready, detail = service.readiness()
        assert ready and detail == {"shards": 1}
        service.shutdown()
        ready, detail = service.readiness()
        assert not ready and "shut down" in detail["reason"]


# ---------------------------------------------------------------------- #
# The obs-check CLI (drives the same scrape make serve-obs-smoke runs)
# ---------------------------------------------------------------------- #
class TestObsCheckCli:
    def test_obs_check_passes_against_a_live_sidecar(self, capsys):
        from repro.cli import main

        tracer = Tracer()
        with OptimizerService(shards=1, executor="serial", tracer=tracer) as service:
            _submit_one(service)
            with ObservabilityServer(service, tracer=tracer) as obs:
                code = main(["obs-check", "--port", str(obs.port)])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["obs_check"] == "ok"

    def test_obs_check_fails_without_traces(self, capsys):
        from repro.cli import main

        with OptimizerService(shards=1, executor="serial") as service:
            with ObservabilityServer(service) as obs:
                code = main(["obs-check", "--port", str(obs.port)])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["obs_check"] == "failed"
