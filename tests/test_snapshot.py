"""Cache persistence: registry/service snapshots and warm restarts.

Covers the persistence layer the serving mode's ``--snapshot`` flag drives:

* :meth:`ChaseCacheRegistry.save` / :meth:`ChaseCacheRegistry.load` — the
  low-level pickle round-trip (entries survive, bounds can be re-imposed);
* :meth:`OptimizerService.save_caches` / :meth:`load_caches` — whole warm
  sessions (chase caches + containment memos + the restriction tables
  riding on pickled universal plans) re-routed by constraint signature,
  also across a *different* shard count;
* restart semantics — a loaded service serves entirely from warm state
  (hit rates 1.0, counters zeroed to the new life) and produces plan sets
  identical to the saving life's.
"""

import pickle

from repro.chase.implication import ChaseCacheRegistry
from repro.cq.memo import ContainmentMemo
from repro.service import OptimizerService
from repro.service.protocol import plan_digest
from repro.service.snapshots import read_snapshot
from repro.workloads import build_ec1, build_ec2


class TestRegistrySnapshot:
    def test_save_load_round_trip(self, tmp_path):
        workload = build_ec2(1, 3, 1)
        constraints = workload.catalog.constraints()
        registry = ChaseCacheRegistry()
        cache = registry.for_constraints(constraints)
        chased = cache.chase(workload.query)
        path = tmp_path / "registry.pkl"
        registry.save(path)

        loaded = ChaseCacheRegistry.load(path)
        assert len(loaded) == 1
        warm = loaded.for_constraints(constraints)
        assert len(warm) == len(cache)
        # The loaded fixpoint answers without re-chasing.
        result = warm.chase_result(workload.query)
        assert result.query == chased
        assert warm.hits == cache.hits + 1

    def test_load_reimposes_bound(self, tmp_path):
        workload = build_ec2(1, 3, 1)
        constraints = workload.catalog.constraints()
        registry = ChaseCacheRegistry()  # unbounded while saving
        cache = registry.for_constraints(constraints)
        cache.chase(workload.query)
        path = tmp_path / "registry.pkl"
        registry.save(path)

        bounded = ChaseCacheRegistry.load(path, max_entries=1)
        assert bounded.max_entries == 1
        assert bounded.for_constraints(constraints).max_entries == 1

    def test_memo_pickle_round_trip(self):
        first = build_ec2(1, 3, 1).query
        second = build_ec1(2, 1).query
        memo = ContainmentMemo(max_entries=8)
        expected = memo.check(first, first), memo.check(second, first)
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.lookup(first, first) == expected[0]
        assert clone.lookup(second, first) == expected[1]
        assert len(clone) == len(memo)


class TestServiceSnapshot:
    MIX = [
        (build_ec2(1, 3, 1), "fb"),
        (build_ec2(1, 3, 2), "oqf"),
        (build_ec1(2, 1), "ocs"),
    ]

    def _run(self, service):
        digests = []
        for workload, strategy in self.MIX * 2:  # two rounds: warm in-life too
            response = service.submit(
                workload.query, strategy=strategy, catalog=workload.catalog
            ).result()
            response.raise_for_error()
            digests.append(plan_digest(response.result.plans))
        return digests

    def test_restarted_service_is_fully_warm_and_identical(self, tmp_path):
        path = tmp_path / "sessions.pkl"
        with OptimizerService(shards=2, workers=1) as saving:
            reference = self._run(saving)
            saved = saving.save_caches(path)
        assert saved == len(self.MIX)  # one session per distinct catalog

        with OptimizerService(shards=2, workers=1) as restarted:
            assert restarted.load_caches(path) == saved
            assert self._run(restarted) == reference
            stats = restarted.stats()
        # The new life serves entirely from persisted state, and its
        # counters describe only this life (zeroed on load).
        assert stats.cache_misses == 0
        assert stats.memo_misses == 0
        assert stats.cache_hits > 0
        assert stats.memo_hits > 0

    def test_snapshot_reroutes_across_different_shard_count(self, tmp_path):
        path = tmp_path / "sessions.pkl"
        with OptimizerService(shards=3, workers=1) as saving:
            reference = self._run(saving)
            saving.save_caches(path)

        with OptimizerService(shards=1, workers=1) as restarted:
            restarted.load_caches(path)
            assert self._run(restarted) == reference
            stats = restarted.stats()
        assert stats.cache_misses == 0

    def test_restrictions_travel_with_the_snapshot(self, tmp_path):
        """The pickled universal plans carry their restriction memo tables."""
        path = tmp_path / "sessions.pkl"
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=1) as saving:
            saving.submit(workload.query, catalog=workload.catalog).result().raise_for_error()
            saving.save_caches(path)

        _, entries = read_snapshot(path)
        tables = 0
        for entry, stale in entries:
            assert not stale
            for cache in entry["registry"]._caches.values():
                for fixpoint in cache._cache.values():
                    tables += len(fixpoint.__dict__.get("_restrictions") or ())
        assert tables > 0  # the backchase's restrictions were persisted
