"""Unit tests for the internal path-conjunctive query representation."""

import pytest

from repro.errors import QueryError
from repro.cq.query import PCQuery, fresh_name
from repro.lang.ast import Attr, Var
from repro.lang.parser import parse_path


class TestConstructionAndAccessors:
    def test_parse_and_validate(self, star_query):
        assert star_query.size() == 4
        assert star_query.variables == ("r", "s1", "s2", "s3")

    def test_output_labels_and_paths(self, star_query):
        assert star_query.output_labels == ("B1", "B2", "B3")
        assert star_query.output_path("B1") == Attr(Var("s1"), "B")

    def test_unknown_output_label_raises(self, star_query):
        with pytest.raises(QueryError):
            star_query.output_path("missing")

    def test_binding_for(self, star_query):
        assert star_query.binding_for("r").range.name == "R1"

    def test_binding_for_unknown_raises(self, star_query):
        with pytest.raises(QueryError):
            star_query.binding_for("zz")

    def test_collections_used(self, star_query):
        assert star_query.collections_used() == {"R1", "S11", "S12", "S13"}

    def test_round_trip_through_text(self, star_query):
        assert PCQuery.parse(str(star_query)) == star_query

    def test_signature_is_order_insensitive_in_conditions(self):
        first = PCQuery.parse("select struct(X: r.A) from R r, S s where r.A = s.A and r.B = 1")
        second = PCQuery.parse("select struct(X: r.A) from R r, S s where r.B = 1 and s.A = r.A")
        assert first.signature() == second.signature()


class TestValidation:
    def test_duplicate_variable_rejected(self):
        query = PCQuery.parse("select struct(X: r.A) from R r, S r")
        with pytest.raises(QueryError):
            query.validate()

    def test_condition_over_unbound_variable_rejected(self):
        from repro.lang.ast import Eq

        query = PCQuery.create(
            output=[("X", parse_path("r.A"))],
            bindings=PCQuery.parse("select struct(X: r.A) from R r").bindings,
            conditions=[Eq(parse_path("z.A"), parse_path("r.A"))],
        )
        with pytest.raises(QueryError):
            query.validate()

    def test_output_over_unbound_variable_rejected(self):
        query = PCQuery.create(
            output=[("X", parse_path("z.A"))],
            bindings=PCQuery.parse("select struct(X: r.A) from R r").bindings,
        )
        with pytest.raises(QueryError):
            query.validate()

    def test_range_referencing_later_variable_rejected(self):
        from repro.lang.ast import Attr, Binding, Dom, Lookup, SchemaRef

        dictionary = SchemaRef("M")
        query = PCQuery.create(
            output=[("O", Var("o"))],
            bindings=[
                Binding("o", Attr(Lookup(dictionary, Var("k")), "N")),
                Binding("k", Dom(dictionary)),
            ],
        )
        with pytest.raises(QueryError):
            query.validate()


class TestEqualityReasoning:
    def test_implies_equality_from_where_clause(self, star_query):
        assert star_query.implies_equality(parse_path("r.A1"), parse_path("s1.A"))

    def test_implies_equality_transitive(self):
        query = PCQuery.parse(
            "select struct(X: r.A) from R r, S s, T t where r.A = s.A and s.A = t.A"
        )
        assert query.implies_equality(parse_path("r.A"), parse_path("t.A"))

    def test_does_not_imply_unrelated_equality(self, star_query):
        assert not star_query.implies_equality(parse_path("s1.B"), parse_path("s2.B"))

    def test_saturated_congruence_derives_attribute_paths(self):
        query = PCQuery.parse(
            "select struct(K: r.K) from R r, I t where t = r and r.K = 5"
        )
        closure = query.saturated_congruence()
        assert closure.equal(parse_path("t.K"), parse_path("r.K"))


class TestRewriting:
    def test_rename_variables(self, star_query):
        renamed = star_query.rename_variables({"r": "hub"})
        assert "hub" in renamed.variables
        assert renamed.conditions[0].left == Attr(Var("hub"), "A1")

    def test_freshen_avoids_collisions(self, star_query):
        renamed, mapping = star_query.freshen({"r", "s1"})
        assert set(mapping) == {"r", "s1"}
        assert not ({"r", "s1"} & set(renamed.variables))

    def test_freshen_noop_without_collisions(self, star_query):
        renamed, mapping = star_query.freshen({"zzz"})
        assert renamed == star_query
        assert mapping == {}

    def test_add_bindings_and_conditions(self, star_query):
        extended = star_query.add(
            bindings=PCQuery.parse("select struct(X: v.K) from V11 v").bindings,
            conditions=PCQuery.parse(
                "select struct(X: v.K) from V11 v, R1 r where v.K = r.K"
            ).conditions,
        )
        assert extended.size() == star_query.size() + 1
        assert len(extended.conditions) == len(star_query.conditions) + 1

    def test_with_output_replaces_output(self, star_query):
        reduced = star_query.with_output([("B1", star_query.output_path("B1"))])
        assert reduced.output_labels == ("B1",)

    def test_fresh_name(self):
        assert fresh_name("v", set()) == "v"
        assert fresh_name("v", {"v"}) == "v_1"
        assert fresh_name("v", {"v", "v_1"}) == "v_2"


class TestRestriction:
    def test_restrict_keeps_expressible_outputs(self):
        query = PCQuery.parse(
            "select struct(A: r.A, E: r.E) from R r, S s where r.B = 5 and r.A = s.A"
        )
        restricted = query.restrict_to({"r"})
        assert restricted is not None
        assert restricted.variables == ("r",)
        assert restricted.output_path("A") == parse_path("r.A")

    def test_restrict_fails_when_output_is_lost(self, star_query):
        assert star_query.restrict_to({"r", "s1", "s2"}) is None

    def test_restrict_fails_when_range_depends_on_removed_variable(self):
        query = PCQuery.parse(
            "select struct(O: o) from dom M k, M[k].N o"
        ).validate()
        assert query.restrict_to({"o"}) is None

    def test_restrict_keeps_transitive_equalities(self):
        query = PCQuery.parse(
            "select struct(X: r.A) from R r, S s, T t where r.A = s.A and s.A = t.A"
        )
        restricted = query.restrict_to({"r", "t"})
        assert restricted is not None
        assert restricted.implies_equality(parse_path("r.A"), parse_path("t.A"))

    def test_restrict_rewrites_output_through_equal_path(self):
        query = PCQuery.parse(
            "select struct(B: s.B) from R r, S s, V v where r.A = s.A and v.B1 = s.B"
        )
        restricted = query.restrict_to({"r", "v"})
        assert restricted is not None
        assert restricted.output_path("B") == parse_path("v.B1")

    def test_restrict_to_unknown_variable_raises(self, star_query):
        with pytest.raises(QueryError):
            star_query.restrict_to({"nope"})

    def test_restrict_with_extra_output(self, star_query):
        restricted = star_query.restrict_to(
            {"r", "s1", "s2"},
            extra_output=[("link", parse_path("r.A3"))],
        )
        # The original outputs include s3.B which is lost, so restriction fails;
        # dropping that output first makes the fragment expressible.
        assert restricted is None
        fragment = star_query.with_output(
            [("B1", parse_path("s1.B")), ("B2", parse_path("s2.B"))]
        ).restrict_to({"r", "s1", "s2"}, extra_output=[("link", parse_path("r.A3"))])
        assert fragment is not None
        assert fragment.output_path("link") == parse_path("r.A3")
