"""Tests for the EC1/EC2/EC3 workload builders and the data generators."""

import pytest

from repro.errors import SchemaError
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.workloads.datagen import populate_ec2, populate_ec3
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2, constraint_count, query_size
from repro.workloads.ec3 import build_ec3, inverse_constraint_count


class TestEC1:
    def test_schema_shape(self):
        workload = build_ec1(relations=4, secondary_indexes=2)
        assert len(workload.catalog.physical.indexes()) == 6
        assert workload.query.size() == 4
        assert workload.params == {"relations": 4, "secondary_indexes": 2}

    def test_query_joins_consecutive_relations(self):
        workload = build_ec1(relations=3)
        assert len(workload.query.conditions) == 2

    def test_populate_and_execute(self):
        workload = build_ec1(relations=2)
        database = workload.database(size=50, seed=1)
        rows = execute(workload.query, database)
        for row in rows:
            assert set(row) == {"K1", "K2"}

    def test_constraint_count(self):
        workload = build_ec1(relations=3, secondary_indexes=1)
        # 2 constraints per primary index, 3 per secondary index.
        assert workload.constraint_count() == 3 * 2 + 3


class TestEC2:
    def test_schema_shape(self):
        workload = build_ec2(stars=2, corners=3, views=2)
        assert query_size(2, 3) == workload.query.size() == 8
        assert constraint_count(2, 2) == workload.constraint_count() == 10

    def test_too_many_views_rejected(self):
        with pytest.raises(SchemaError):
            build_ec2(stars=1, corners=2, views=2)

    def test_views_cover_consecutive_corners(self):
        workload = build_ec2(stars=1, corners=3, views=2)
        view = workload.catalog.physical.structure("V12")
        assert view.definition.collections_used() == {"R1", "S12", "S13"}

    def test_populate_selectivities(self):
        database = Database()
        populate_ec2(database, stars=1, corners=2, size=1000, seed=3)
        hub = database.collection("R1")
        corner = database.collection("S11")
        matching = sum(1 for row in hub if any(row["A1"] == s["A"] for s in corner.lookup("A", row["A1"])))
        assert 10 <= matching <= 90  # ~4% of 1000 with random noise

    def test_generated_plans_return_original_answer(self):
        workload = build_ec2(stars=1, corners=3, views=1)
        database = workload.database(size=300, seed=7)
        reference = execute(workload.query, database)
        reference_key = sorted(tuple(sorted(row.items())) for row in reference)
        result = workload.optimizer().optimize(workload.query, "fb")
        assert result.plan_count == 2
        for plan in result.plans:
            rows = execute(plan.query, database)
            assert sorted(tuple(sorted(row.items())) for row in rows) == reference_key


class TestEC3:
    def test_schema_shape(self):
        workload = build_ec3(classes=5, asrs=2)
        assert len(workload.catalog.physical.access_support_relations()) == 2
        assert inverse_constraint_count(5) == 8
        assert workload.query.size() == 8

    def test_too_many_asrs_rejected(self):
        with pytest.raises(SchemaError):
            build_ec3(classes=3, asrs=2)

    def test_populate_satisfies_inverse_constraints(self):
        database = Database()
        populate_ec3(database, ["M1", "M2", "M3"], size=30, seed=5)
        m1 = database.collection("M1")
        m2 = database.collection("M2")
        for oid, state in m1.items():
            for referenced in state["N"]:
                assert oid in m2.get(referenced)["P"]

    def test_flipped_plan_returns_same_answer(self):
        workload = build_ec3(classes=3)
        database = workload.database(size=40, seed=11)
        reference = execute(workload.query, database)
        reference_key = sorted(tuple(sorted(row.items())) for row in reference)
        result = workload.optimizer().optimize(workload.query, "fb")
        assert result.plan_count == 4
        for plan in result.plans:
            rows = execute(plan.query, database)
            assert sorted(tuple(sorted(row.items())) for row in rows) == reference_key

    def test_asr_contents_match_navigation(self):
        workload = build_ec3(classes=3, asrs=1)
        database = workload.database(size=30, seed=2)
        asr = database.collection("ASR1")
        m3 = database.collection("M3")
        m2 = database.collection("M2")
        expected = set()
        for oid, state in m3.items():
            for mid in state["P"]:
                for end in m2.get(mid)["P"]:
                    expected.add((oid, end))
        assert {(row["S"], row["T"]) for row in asr} == expected


class TestWorkloadContainer:
    def test_optimizer_construction(self):
        workload = build_ec1(relations=2)
        assert workload.optimizer(timeout=5).timeout == 5

    def test_database_requires_populate(self):
        workload = build_ec1(relations=2)
        workload.populate = None
        with pytest.raises(ValueError):
            workload.database()
